"""Shared test/benchmark infrastructure.

One home for the seeding and configuration helpers that were previously
duplicated between ``tests/conftest.py`` and ``benchmarks/conftest.py``:
the deterministic RNG seed, the hypothesis profile, environment-driven
width overrides, and the nightly gate.  Both conftests (and any future
harness) import from here so a seed or profile change happens in exactly
one place.
"""

from __future__ import annotations

import os
import random
from typing import Sequence, Tuple

__all__ = [
    "TEST_SEED",
    "env_widths",
    "make_rng",
    "nightly_enabled",
    "register_hypothesis_profile",
]

#: Root seed for every deterministic test RNG.
TEST_SEED = 0xC0FFEE

#: Environment variable that unlocks the long nightly-only tests
#: (full exhaustive grids, million-vector fuzz runs).
NIGHTLY_ENV = "REPRO_NIGHTLY"


def make_rng(salt: int = 0) -> random.Random:
    """Deterministic ``random.Random`` rooted at :data:`TEST_SEED`."""
    return random.Random(TEST_SEED ^ salt)


def env_widths(var: str, default: Sequence[int]) -> Tuple[int, ...]:
    """Bitwidth list override via environment (e.g. quick CI runs)."""
    spec = os.environ.get(var)
    if not spec:
        return tuple(default)
    return tuple(int(tok) for tok in spec.split(",") if tok)


def nightly_enabled() -> bool:
    """Whether the long nightly-only tests should run (``REPRO_NIGHTLY``)."""
    return os.environ.get(NIGHTLY_ENV, "") not in ("", "0")


def register_hypothesis_profile() -> None:
    """Register and load the shared conservative hypothesis profile.

    Deterministic, no deadline (STA on larger circuits can take a while
    on CI boxes), modest example counts.  Safe to call more than once.
    """
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "repro",
        deadline=None,
        max_examples=60,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("repro")
