"""ASCII line charts for delay/area-vs-bitwidth figures.

The paper's Fig. 8 plots several series against input bitwidth; this
module renders the same data as a terminal chart so the benchmark output
is self-contained.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&"


def ascii_chart(title: str, x_labels: Sequence[str],
                series: Dict[str, Sequence[float]],
                height: int = 14, y_label: str = "") -> str:
    """Render multiple series sharing categorical x positions.

    Args:
        title: Chart title.
        x_labels: Label per x position (e.g. bitwidths).
        series: Mapping series name -> y values (same length as labels).
        height: Plot rows.
        y_label: Unit note appended to the legend.

    Returns:
        Multi-line chart text with a legend.
    """
    num_x = len(x_labels)
    for name, ys in series.items():
        if len(ys) != num_x:
            raise ValueError(f"series {name!r} length mismatch")
    all_vals = [y for ys in series.values() for y in ys]
    if not all_vals:
        return f"{title}\n(no data)"
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0

    col_width = max(7, max(len(x) for x in x_labels) + 2)
    grid = [[" "] * (num_x * col_width) for _ in range(height)]
    marks = {}
    for idx, (name, ys) in enumerate(sorted(series.items())):
        mark = _MARKS[idx % len(_MARKS)]
        marks[name] = mark
        for xi, y in enumerate(ys):
            row = height - 1 - int(round((y - lo) / (hi - lo) * (height - 1)))
            col = xi * col_width + col_width // 2
            grid[row][col] = mark

    lines = [title]
    for r, row in enumerate(grid):
        y_val = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{y_val:9.3g} |{''.join(row)}")
    axis = "-" * (num_x * col_width)
    lines.append(" " * 10 + "+" + axis)
    lines.append(" " * 11 +
                 "".join(x.center(col_width) for x in x_labels))
    legend = "  ".join(f"{m}={n}" for n, m in sorted(marks.items(),
                                                     key=lambda kv: kv[0]))
    lines.append(f"legend: {legend}" + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)
