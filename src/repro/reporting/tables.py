"""Plain-text tables for experiment reports.

All paper tables/figures are regenerated as fixed-width text (and CSV for
machine consumption): this keeps the benchmark harness dependency-free and
diff-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled table with headers and uniform rows.

    Example::

        t = Table("Table 1", ["n", "99%", "99.99%"])
        t.add_row(64, 12, 19)
        print(t.render())
    """

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    note: Optional[str] = None
    #: Run-context snapshot (seed, backend, counters, phase timings) set
    #: by the experiment drivers; rendered only into the JSON manifest.
    provenance: Optional[Dict[str, Any]] = None

    def add_row(self, *values: Any) -> None:
        """Append a row; values are formatted with sensible defaults."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.headers)}")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, sep, line(self.headers), sep]
        out.extend(line(r) for r in self.rows)
        out.append(sep)
        if self.note:
            out.append(self.note)
        return "\n".join(out)

    def to_csv(self) -> str:
        """Comma-separated rendering (headers first)."""
        def esc(s: str) -> str:
            return f'"{s}"' if ("," in s or '"' in s) else s

        lines = [",".join(esc(h) for h in self.headers)]
        lines.extend(",".join(esc(c) for c in row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
