"""Text tables, ASCII figures and result-file helpers."""

import json
import os
from typing import Any, Optional

from .tables import Table
from .figures import ascii_chart

__all__ = ["Table", "ascii_chart", "save_artifact", "save_json",
           "results_dir"]


def results_dir() -> str:
    """Directory for generated experiment artifacts (created on demand)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        root = os.path.join(os.getcwd(), "results")
    os.makedirs(root, exist_ok=True)
    return root


def save_artifact(name: str, text: str) -> str:
    """Write *text* under the results directory; returns the path."""
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path


def save_json(name: str, payload: Any) -> str:
    """Write *payload* as pretty-printed JSON under the results directory."""
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
