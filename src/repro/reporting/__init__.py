"""Text tables, ASCII figures and result-file helpers."""

import os
from typing import Optional

from .tables import Table
from .figures import ascii_chart

__all__ = ["Table", "ascii_chart", "save_artifact", "results_dir"]


def results_dir() -> str:
    """Directory for generated experiment artifacts (created on demand)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        root = os.path.join(os.getcwd(), "results")
    os.makedirs(root, exist_ok=True)
    return root


def save_artifact(name: str, text: str) -> str:
    """Write *text* under the results directory; returns the path."""
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path
