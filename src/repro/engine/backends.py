"""Pluggable execution backends for compiled circuit plans.

Three backends share one interface (:class:`Backend.run`):

* ``bigint`` — packed Python-int bitslice words; arbitrarily many
  vectors per word, zero dependencies, and the only backend supporting
  per-net *forcing* (fault injection needs an unfused plan).
* ``numpy`` — vectors packed 64-per-``uint64`` word, evaluated with
  per-level batch kernels over a cache-blocked value plane.  The fast
  path for large Monte Carlo sweeps.
* ``sharded`` — splits the vector set into blocks, fans the blocks out
  over worker processes (bigint kernel per shard), and merges with a
  commutative OR so the result is independent of completion order.
  Shard seeds, when a shard needs its own randomness, come from
  :func:`repro.engine.context.spawn_seeds` — deterministic in the shard
  *index*, never in scheduling.

Backends consume stimulus as ``{bus name: [per-bit words]}`` (the layout
of :func:`repro.circuit.simulate.simulate`) and produce outputs in the
same layout, so the legacy API can delegate wholesale.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.netlist import CircuitError
from .context import RunContext, get_default_context
from .pack import u64_to_word, word_to_u64
from .plan import (
    OP_AND, OP_AO21, OP_COPY, OP_MAJ3, OP_MUX2, OP_OA21, OP_OR, OP_XOR,
    CompiledPlan,
)

__all__ = [
    "Backend", "BigintBackend", "NumpyBackend", "ShardedBackend",
    "get_backend", "available_backends", "register_backend",
    "merge_shard_words",
]

Word = Union[int, np.ndarray]
Stimulus = Mapping[str, Sequence[Word]]

_U64_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


class Backend:
    """Interface every execution backend implements."""

    #: Registry key; subclasses override.
    name = "abstract"
    #: Whether ``force`` (per-slot constant overrides) is supported.
    supports_force = False

    def run(self, plan: CompiledPlan, stimulus: Stimulus, num_vectors: int,
            ctx: Optional[RunContext] = None,
            force: Optional[Mapping[int, int]] = None
            ) -> Dict[str, List[Word]]:
        """Evaluate *plan* on *stimulus*; returns per-output bit words.

        Args:
            plan: Compiled circuit.
            stimulus: Input bus name -> per-bit packed words.
            num_vectors: Vectors packed per word.
            ctx: Instrumentation sink (gate-eval counters, phase times).
            force: Slot -> 0/1 constant overrides (fault injection);
                only honoured by backends with ``supports_force``.
        """
        raise NotImplementedError

    def _account(self, ctx: Optional[RunContext], plan: CompiledPlan,
                 num_vectors: int) -> None:
        ctx = ctx or get_default_context()
        ctx.add("gate_evals", plan.num_gates)
        ctx.add("vectors", num_vectors)
        ctx.add(f"runs_{self.name}", 1)


# ----------------------------------------------------------------------
# bigint
# ----------------------------------------------------------------------
def _run_tape_bigint(plan: CompiledPlan, vals: List[int], mask: int,
                     force: Optional[Mapping[int, int]] = None) -> None:
    """Execute the flat op tape over Python-int bitslice words."""
    forced: Dict[int, int] = {}
    if force:
        forced = {slot: (mask if bit else 0) for slot, bit in force.items()}
        for slot, word in forced.items():
            # Source slots (inputs/constants) are overridden up front;
            # gate slots are re-forced right after their step below.
            vals[slot] = word
    for opcode, out, ins, inv in plan.steps:
        if opcode == OP_AND:
            r = vals[ins[0]] & vals[ins[1]]
        elif opcode == OP_OR:
            r = vals[ins[0]] | vals[ins[1]]
        elif opcode == OP_XOR:
            r = vals[ins[0]] ^ vals[ins[1]]
        elif opcode == OP_COPY:
            r = vals[ins[0]]
        elif opcode == OP_AO21:
            r = (vals[ins[0]] & vals[ins[1]]) | vals[ins[2]]
        elif opcode == OP_OA21:
            r = (vals[ins[0]] | vals[ins[1]]) & vals[ins[2]]
        elif opcode == OP_MUX2:
            s = vals[ins[0]]
            r = (vals[ins[1]] & s) | (vals[ins[2]] & (s ^ mask))
        else:  # OP_MAJ3
            a, b, c = vals[ins[0]], vals[ins[1]], vals[ins[2]]
            r = (a & b) | (a & c) | (b & c)
        if inv:
            r ^= mask
        if forced:
            f = forced.get(out)
            if f is not None:
                r = f
        vals[out] = r


class BigintBackend(Backend):
    """Packed Python-int execution of the compiled tape."""

    name = "bigint"
    supports_force = True

    def run(self, plan, stimulus, num_vectors, ctx=None, force=None):
        if num_vectors <= 0:
            raise CircuitError("num_vectors must be positive")
        mask = (1 << num_vectors) - 1
        vals: List[int] = [0] * plan.num_slots
        for slot, bit in plan.const_slots:
            vals[slot] = mask if bit else 0
        for name, slots in plan.input_slots.items():
            words = stimulus[name]
            for slot, word in zip(slots, words):
                vals[slot] = int(word) & mask
        _run_tape_bigint(plan, vals, mask, force)
        self._account(ctx, plan, num_vectors)
        return {name: [vals[s] for s in slots]
                for name, slots in plan.output_slots.items()}


# ----------------------------------------------------------------------
# numpy
# ----------------------------------------------------------------------
def _run_batches_numpy(plan: CompiledPlan, v: np.ndarray) -> None:
    """Evaluate all batch groups over one value-plane block ``v``."""
    for g in plan.batches:
        i = g.ins
        if g.opcode == OP_AND:
            r = v[i[0]] & v[i[1]]
        elif g.opcode == OP_OR:
            r = v[i[0]] | v[i[1]]
        elif g.opcode == OP_XOR:
            r = v[i[0]] ^ v[i[1]]
        elif g.opcode == OP_COPY:
            r = v[i[0]].copy()
        elif g.opcode == OP_AO21:
            r = (v[i[0]] & v[i[1]]) | v[i[2]]
        elif g.opcode == OP_OA21:
            r = (v[i[0]] | v[i[1]]) & v[i[2]]
        elif g.opcode == OP_MUX2:
            s = v[i[0]]
            r = (v[i[1]] & s) | (v[i[2]] & ~s)
        else:  # OP_MAJ3
            a, b, c = v[i[0]], v[i[1]], v[i[2]]
            r = (a & b) | (a & c) | (b & c)
        if g.invert:
            np.bitwise_xor(r, _U64_FULL, out=r)
        v[g.outs] = r


class NumpyBackend(Backend):
    """Cache-blocked uint64 batch-kernel execution.

    Args:
        block_words: uint64 words per cache block (64 vectors each).
            The default keeps the working plane of typical datapaths
            inside L2, which is worth ~3x over unblocked evaluation.
    """

    name = "numpy"

    def __init__(self, block_words: int = 1024):
        if block_words <= 0:
            raise ValueError("block_words must be positive")
        self.block_words = block_words

    def run_u64(self, plan: CompiledPlan,
                rows: Mapping[str, Sequence[np.ndarray]], nwords: int,
                ctx: Optional[RunContext] = None
                ) -> Dict[str, List[np.ndarray]]:
        """Array-native core: uint64 chunk rows in, uint64 rows out.

        Args:
            plan: Compiled circuit.
            rows: Input bus name -> one uint64 array of ``nwords`` chunks
                per bit (LSB first).
            nwords: uint64 chunks per bit row.
        """
        in_rows: List[Tuple[int, np.ndarray]] = []
        for name, slots in plan.input_slots.items():
            for slot, arr in zip(slots, rows[name]):
                if arr.shape[0] != nwords:
                    raise CircuitError(
                        f"input {name!r}: expected {nwords} uint64 words, "
                        f"got {arr.shape[0]}")
                in_rows.append((slot, arr))

        bw = self.block_words
        plane = np.zeros((plan.num_slots, min(bw, nwords)), dtype=np.uint64)
        out_items = [(name, bit, slot)
                     for name, slots in plan.output_slots.items()
                     for bit, slot in enumerate(slots)]
        out_arrays = {(name, bit): np.empty(nwords, dtype=np.uint64)
                      for name, bit, _ in out_items}

        for start in range(0, nwords, bw):
            stop = min(nwords, start + bw)
            v = plane[:, :stop - start]
            for slot, bit in plan.const_slots:
                v[slot] = _U64_FULL if bit else 0
            for slot, arr in in_rows:
                v[slot] = arr[start:stop]
            _run_batches_numpy(plan, v)
            for name, bit, slot in out_items:
                out_arrays[(name, bit)][start:stop] = v[slot]

        self._account(ctx, plan, nwords * 64)
        return {name: [out_arrays[(name, bit)]
                       for bit in range(len(slots))]
                for name, slots in plan.output_slots.items()}

    def run(self, plan, stimulus, num_vectors, ctx=None, force=None):
        if force:
            raise CircuitError(
                "forcing requires the bigint backend (unfused tape)")
        if num_vectors <= 0:
            raise CircuitError("num_vectors must be positive")
        nwords = (num_vectors + 63) // 64
        rows = {
            name: [word_to_u64(int(w), num_vectors) for w in stimulus[name]]
            for name in plan.input_slots}
        out = self.run_u64(plan, rows, nwords, ctx)
        return {name: [u64_to_word(arr, num_vectors) for arr in words]
                for name, words in out.items()}


# ----------------------------------------------------------------------
# sharded
# ----------------------------------------------------------------------
def merge_shard_words(shards: Sequence[Tuple[int, Dict[str, List[int]]]]
                      ) -> Dict[str, List[int]]:
    """OR-merge per-shard output words back into full packed words.

    Args:
        shards: ``(vector_offset, outputs)`` pairs in **any** order —
            the merge is a commutative OR of disjoint bit ranges, so the
            result is independent of shard completion order (regression
            tested).
    """
    merged: Dict[str, List[int]] = {}
    for offset, outputs in shards:
        for name, words in outputs.items():
            if name not in merged:
                merged[name] = [0] * len(words)
            acc = merged[name]
            for bit, word in enumerate(words):
                acc[bit] |= word << offset
    return merged


def _run_shard(plan: CompiledPlan, stimulus: Dict[str, List[int]],
               num_vectors: int) -> Dict[str, List[int]]:
    """Worker entry point: evaluate one vector block (no context)."""
    return BigintBackend().run(plan, stimulus, num_vectors)


class ShardedBackend(Backend):
    """Chunked multi-process fan-out over vector blocks.

    Args:
        shard_vectors: Vectors per shard (the fan-out granularity).
        max_workers: Process count; ``None`` picks from
            ``REPRO_SHARD_WORKERS`` or the CPU count (capped at 4), and
            ``1`` (or an unavailable pool) degrades to in-process
            execution with identical results.
    """

    name = "sharded"

    def __init__(self, shard_vectors: int = 1 << 16,
                 max_workers: Optional[int] = None):
        if shard_vectors <= 0:
            raise ValueError("shard_vectors must be positive")
        self.shard_vectors = shard_vectors
        if max_workers is None:
            env = os.environ.get("REPRO_SHARD_WORKERS")
            max_workers = (int(env) if env
                           else min(4, os.cpu_count() or 1))
        self.max_workers = max(1, max_workers)

    def split(self, stimulus: Stimulus,
              num_vectors: int) -> List[Tuple[int, int]]:
        """``(offset, count)`` of every shard, in deterministic order."""
        return [(s, min(self.shard_vectors, num_vectors - s))
                for s in range(0, num_vectors, self.shard_vectors)]

    def run(self, plan, stimulus, num_vectors, ctx=None, force=None):
        if force:
            raise CircuitError(
                "forcing requires the bigint backend (unfused tape)")
        if num_vectors <= 0:
            raise CircuitError("num_vectors must be positive")
        shards = self.split(stimulus, num_vectors)
        jobs = []
        for offset, count in shards:
            chunk_mask = (1 << count) - 1
            shard_stim = {
                name: [(int(w) >> offset) & chunk_mask for w in words]
                for name, words in stimulus.items()}
            jobs.append((offset, shard_stim, count))

        results: List[Tuple[int, Dict[str, List[int]]]] = []
        pool_ok = self.max_workers > 1 and len(jobs) > 1
        if pool_ok:
            try:
                from concurrent.futures import ProcessPoolExecutor
                with ProcessPoolExecutor(
                        max_workers=min(self.max_workers, len(jobs))) as ex:
                    futures = [(offset,
                                ex.submit(_run_shard, plan, stim, count))
                               for offset, stim, count in jobs]
                    results = [(offset, fut.result())
                               for offset, fut in futures]
            except (OSError, PermissionError, RuntimeError):
                results = []  # pool unavailable: fall back to in-process
        if not results:
            results = [(offset, _run_shard(plan, stim, count))
                       for offset, stim, count in jobs]

        ctx = ctx or get_default_context()
        ctx.add("shards", len(jobs))
        self._account(ctx, plan, num_vectors)
        return merge_shard_words(results)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add *backend* to the registry under ``backend.name``."""
    _REGISTRY[backend.name] = backend
    return backend


register_backend(BigintBackend())
register_backend(NumpyBackend())
register_backend(ShardedBackend())


def available_backends() -> List[str]:
    """Registered backend names (stable order)."""
    return sorted(_REGISTRY)


def get_backend(name: Union[str, Backend]) -> Backend:
    """Look up a backend by name (instances pass through)."""
    if isinstance(name, Backend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CircuitError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}") from None
