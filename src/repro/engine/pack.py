"""Fast bit-slice packing/unpacking between vector and word domains.

The engine moves data between three representations:

* **per-vector integers** — one Python int per test vector (what
  reference models and ATPG vectors use);
* **packed big-int words** — one Python int per *bit column*, bit ``j``
  of the word carrying vector ``j`` (the bigint backend's native form);
* **uint64 word arrays** — the same bit-sliced layout chunked into
  64-vector machine words (the NumPy backend's native form).

The legacy code transposed these layouts with nested Python loops —
O(vectors x width) interpreter iterations per call, the hidden hot spot
of the validate/ATPG/testbench paths.  Here every transpose runs through
``numpy.packbits``/``unpackbits`` (C loops over bytes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "pack_vectors",
    "unpack_vectors",
    "word_to_u64",
    "u64_to_word",
    "random_word",
    "random_word_array",
]


def pack_vectors(values: Sequence[int], width: int) -> List[int]:
    """Transpose per-vector integers into per-bit packed words.

    Args:
        values: One integer per test vector (masked to *width* bits).
        width: Bit width of each value.

    Returns:
        ``width`` packed words, LSB column first; bit ``j`` of word ``i``
        is bit ``i`` of ``values[j]``.
    """
    count = len(values)
    if count == 0 or width <= 0:
        return [0] * max(width, 0)
    mask = (1 << width) - 1
    # One binary-string render per vector (C code), then a byte-matrix
    # transpose via packbits.
    mat = np.empty((count, width), dtype=np.uint8)
    for j, v in enumerate(values):
        bits = format(int(v) & mask, f"0{width}b").encode()
        mat[j] = np.frombuffer(bits, dtype=np.uint8)[::-1] - ord("0")
    packed = np.packbits(mat, axis=0, bitorder="little")
    return [int.from_bytes(packed[:, bit].tobytes(), "little")
            for bit in range(width)]


def unpack_vectors(words: Sequence[int], count: int) -> List[int]:
    """Inverse of :func:`pack_vectors`: per-bit words to per-vector ints.

    Args:
        words: Packed words, LSB column first.
        count: Number of test vectors packed in each word.

    Returns:
        ``count`` integers; bit ``i`` of integer ``j`` is bit ``j`` of
        ``words[i]``.
    """
    width = len(words)
    if width == 0 or count <= 0:
        return [0] * max(count, 0)
    nbytes = (count + 7) // 8
    mask = (1 << count) - 1
    cols = np.empty((nbytes, width), dtype=np.uint8)
    for bit, w in enumerate(words):
        cols[:, bit] = np.frombuffer(
            (int(w) & mask).to_bytes(nbytes, "little"), dtype=np.uint8)
    mat = np.unpackbits(cols, axis=0, bitorder="little",
                        count=count)  # (count, width)
    # Pad the MSB side to a byte multiple so packbits keeps bit weights.
    pad = (-width) % 8
    if pad:
        mat = np.concatenate(
            [np.zeros((count, pad), dtype=np.uint8), mat[:, ::-1]], axis=1)
    else:
        mat = mat[:, ::-1]
    rows = np.packbits(mat, axis=1)
    return [int.from_bytes(rows[j].tobytes(), "big") for j in range(count)]


def word_to_u64(word: int, num_vectors: int) -> np.ndarray:
    """Split a packed big-int word into little-endian uint64 chunks."""
    nwords = (num_vectors + 63) // 64
    mask = (1 << num_vectors) - 1
    raw = (int(word) & mask).to_bytes(nwords * 8, "little")
    return np.frombuffer(raw, dtype="<u8").copy()


def u64_to_word(array: np.ndarray, num_vectors: int) -> int:
    """Reassemble uint64 chunks into one packed big-int word."""
    value = int.from_bytes(np.ascontiguousarray(
        array, dtype="<u8").tobytes(), "little")
    return value & ((1 << num_vectors) - 1)


def random_word(rng: np.random.Generator, num_vectors: int) -> int:
    """A uniform *num_vectors*-bit packed word in one bulk draw.

    Replaces the historical 62-bit-chunk Python loop (which made
    million-vector stimulus generation slower than the simulation it
    fed) with a single ``Generator.bytes`` call.
    """
    if num_vectors <= 0:
        raise ValueError("num_vectors must be positive")
    nbytes = (num_vectors + 7) // 8
    raw = rng.bytes(nbytes)
    return int.from_bytes(raw, "little") & ((1 << num_vectors) - 1)


def random_word_array(rng: np.random.Generator,
                      num_vectors: int,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """A uniform packed word directly in uint64-chunk form."""
    nwords = (num_vectors + 63) // 64
    arr = rng.integers(0, 1 << 64, size=nwords, dtype=np.uint64)
    tail = num_vectors % 64
    if tail:
        arr[-1] &= np.uint64((1 << tail) - 1)
    if out is not None:
        out[:] = arr
        return out
    return arr
