"""Functional fast-path registry.

Gate-level circuits are the ground truth, but the Monte Carlo layers run
on *functional* models (closed-form big-int arithmetic) that are orders
of magnitude faster.  The registry makes that substitution explicit and
checkable: a functional model registers under a kind name (e.g.
``"aca"``), exposes the **same bus-level interface** as the circuit it
stands in for (``run_ints``: input bus ints -> output bus ints), and the
test suite cross-checks the two by construction through
:func:`repro.engine.execute_ints`.

:mod:`repro.families` registers every built-in family's model on
import; lookup of an unknown kind imports it first, so
``functional_model("aca", width=64, window=18)`` always works.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = [
    "register_functional",
    "functional_model",
    "available_functionals",
]

#: kind -> factory(**params) -> model with a ``run_ints`` method.
_FUNCTIONALS: Dict[str, Callable[..., Any]] = {}


def register_functional(kind: str,
                        factory: Callable[..., Any]) -> Callable[..., Any]:
    """Register *factory* as the functional model for *kind*."""
    _FUNCTIONALS[kind] = factory
    return factory


def available_functionals() -> List[str]:
    """Registered functional model kinds."""
    _ensure_builtin()
    return sorted(_FUNCTIONALS)


def _ensure_builtin() -> None:
    if "aca" not in _FUNCTIONALS:
        # Importing the family zoo registers every built-in model.
        from .. import families  # noqa: F401


def functional_model(kind: str, **params: Any) -> Any:
    """Instantiate the functional model registered for *kind*.

    Args:
        kind: Registered model kind (e.g. ``"aca"``).
        **params: Forwarded to the factory (e.g. ``width``, ``window``).

    Raises:
        KeyError: If no model is registered for *kind*.
    """
    _ensure_builtin()
    try:
        factory = _FUNCTIONALS[kind]
    except KeyError:
        raise KeyError(
            f"no functional model registered for {kind!r}; available: "
            f"{', '.join(sorted(_FUNCTIONALS))}") from None
    return factory(**params)
