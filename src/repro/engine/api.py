"""High-level engine API: compile once, execute anywhere.

``execute`` is the drop-in replacement for the interpreted simulator:
it memoises the compiled plan per circuit (recompiling automatically if
the circuit has grown since), picks a backend, and runs.  ``execute_ints``
adds the per-vector integer convenience layer (fast packing included)
that the validate/ATPG/testbench paths share.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..circuit.netlist import Circuit, CircuitError
from .backends import Backend, Stimulus, Word, get_backend
from .context import RunContext, get_default_context
from .pack import pack_vectors, unpack_vectors
from .plan import CompiledPlan, compile_circuit

__all__ = ["compiled_plan", "execute", "execute_ints"]

# circuit -> {fuse flag: (net count at compile time, plan)}
_PLAN_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[bool, tuple]]" = (
    weakref.WeakKeyDictionary())


def compiled_plan(circuit: Circuit, fuse: bool = True) -> CompiledPlan:
    """The memoised :class:`CompiledPlan` for *circuit*.

    The cache is keyed on circuit identity and invalidated when the net
    count changes (circuits are append-only, so that check is exact).
    """
    per_circuit = _PLAN_CACHE.setdefault(circuit, {})
    hit = per_circuit.get(fuse)
    if hit is not None and hit[0] == len(circuit.nets):
        return hit[1]
    plan = compile_circuit(circuit, fuse=fuse)
    per_circuit[fuse] = (len(circuit.nets), plan)
    return plan


def _validate_stimulus(circuit: Circuit, stimulus: Stimulus) -> None:
    for name, bus in circuit.inputs.items():
        if name not in stimulus:
            raise CircuitError(f"missing stimulus for input {name!r}")
        if len(stimulus[name]) != len(bus):
            raise CircuitError(
                f"input {name!r} expects {len(bus)} bit-words, "
                f"got {len(stimulus[name])}")


def execute(circuit: Circuit, stimulus: Stimulus,
            num_vectors: Optional[int] = None,
            backend: Union[str, Backend, None] = None,
            ctx: Optional[RunContext] = None,
            force: Optional[Mapping[int, int]] = None
            ) -> Dict[str, List[Word]]:
    """Compile (cached) and evaluate *circuit* on packed stimulus.

    Args:
        circuit: Combinational circuit.
        stimulus: Input bus name -> per-bit packed words (Python ints).
        num_vectors: Vectors per packed word (required for int words).
        backend: Backend name/instance; default ``bigint`` (or the
            context's configured backend).
        ctx: Instrumentation context (defaults to the process context).
        force: Net id -> 0/1 overrides (fault injection).  Forces an
            unfused plan and the ``bigint`` backend.

    Returns:
        Output bus name -> per-bit packed words.
    """
    ctx = ctx or get_default_context()
    if backend is None:
        backend = ctx.backend if force is None else "bigint"
    be = get_backend(backend)
    _validate_stimulus(circuit, stimulus)
    if num_vectors is None:
        raise CircuitError("num_vectors is required for Python-int stimulus")
    if num_vectors <= 0:
        raise CircuitError("num_vectors must be positive")

    if force is not None:
        if not be.supports_force:
            be = get_backend("bigint")
        plan = compiled_plan(circuit, fuse=False)
        slot_force = {plan.slot_of(nid): bit for nid, bit in force.items()}
        return be.run(plan, stimulus, num_vectors, ctx=ctx, force=slot_force)

    plan = compiled_plan(circuit, fuse=True)
    return be.run(plan, stimulus, num_vectors, ctx=ctx)


def execute_ints(circuit: Circuit, vectors: Mapping[str, Sequence[int]],
                 backend: Union[str, Backend, None] = None,
                 ctx: Optional[RunContext] = None,
                 force: Optional[Mapping[int, int]] = None
                 ) -> Dict[str, List[int]]:
    """Evaluate *circuit* on per-vector integers (packing handled here).

    Args:
        circuit: Combinational circuit.
        vectors: Input bus name -> one integer per test vector.
        backend, ctx, force: As for :func:`execute`.

    Returns:
        Output bus name -> one integer per test vector.
    """
    names = list(circuit.inputs)
    if not names:
        raise CircuitError("circuit has no inputs")
    count = len(vectors[names[0]])
    if count == 0:
        raise CircuitError("need at least one vector")
    stim = {
        name: pack_vectors(vectors[name], len(circuit.inputs[name]))
        for name in names}
    out_words = execute(circuit, stim, num_vectors=count, backend=backend,
                        ctx=ctx, force=force)
    return {name: unpack_vectors(words, count)
            for name, words in out_words.items()}
