"""Compiled circuit execution engine with pluggable backends.

The engine is the repository's answer to "run as fast as the hardware
allows": it **compiles** a levelized :class:`~repro.circuit.Circuit`
once into a flat op tape plus per-level batch kernels
(:mod:`repro.engine.plan`), then executes the plan through
interchangeable backends (:mod:`repro.engine.backends`):

======== ==============================================================
backend  use it for
======== ==============================================================
bigint   default; any vector count, fault forcing, tiny overhead
numpy    large Monte Carlo sweeps (cache-blocked uint64 batch kernels)
sharded  very large sweeps across worker processes, order-independent
         merge with deterministic per-shard seeding
======== ==============================================================

Every run is instrumented through :class:`~repro.engine.RunContext`
(gate-eval counters, per-phase wall times, RNG seed provenance) which
experiments attach to their tables and the CLI writes as a JSON run
manifest.  Functional fast-path models (e.g. the closed-form ACA in
:mod:`repro.mc.fastsim`) register beside the gate-level path via
:func:`register_functional`, keeping the two cross-checkable by
construction.

Quick tour::

    from repro.core import build_aca
    from repro import engine

    aca = build_aca(64, 18)
    out = engine.execute_ints(aca, {"a": [3, 5], "b": [4, 9]},
                              backend="numpy")
    out["sum"]                       # [7, 14]
    model = engine.functional_model("aca", width=64, window=18)
    model.run_ints({"a": 3, "b": 4})  # same interface, no gates
"""

from .api import compiled_plan, execute, execute_ints
from .backends import (
    Backend,
    BigintBackend,
    NumpyBackend,
    ShardedBackend,
    available_backends,
    get_backend,
    merge_shard_words,
    register_backend,
)
from .context import (
    RunContext,
    get_default_context,
    resolve_rng,
    set_default_context,
    spawn_seeds,
)
from .functional import (
    available_functionals,
    functional_model,
    register_functional,
)
from .plan import BatchGroup, CompiledPlan, compile_circuit
from . import pack

__all__ = [
    "compiled_plan", "execute", "execute_ints",
    "Backend", "BigintBackend", "NumpyBackend", "ShardedBackend",
    "available_backends", "get_backend", "register_backend",
    "merge_shard_words",
    "RunContext", "get_default_context", "set_default_context",
    "resolve_rng", "spawn_seeds",
    "available_functionals", "functional_model", "register_functional",
    "BatchGroup", "CompiledPlan", "compile_circuit",
    "pack",
]
