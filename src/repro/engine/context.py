"""Instrumented run context: seeds, counters, phase timers, manifests.

Every engine-powered entry point (simulation backends, experiments, the
CLI) threads a :class:`RunContext` through the stack.  The context owns

* **RNG provenance** — one root seed, one NumPy ``Generator``, and a
  deterministic ``spawn_seed`` facility (for shards/workers) so every
  random draw in a run is reproducible from the manifest alone;
* **counters** — gate evaluations, vectors simulated, shard counts …;
* **phase timers** — wall time per named phase (compile/bind/run/…);
* **the manifest** — a JSON-serialisable snapshot of all of the above
  that experiments attach to their :class:`~repro.reporting.Table` and
  the CLI writes under ``results/``.

A process-wide default context (seed 0) backs legacy call sites that do
not pass one explicitly, so nothing in the repository ever falls back to
an unseeded generator.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

__all__ = [
    "RunContext",
    "get_default_context",
    "set_default_context",
    "resolve_rng",
    "spawn_seeds",
]

#: Root seed used when neither a context nor an explicit seed is given.
DEFAULT_SEED = 0

#: Trace events retained per context; later events only bump a counter.
MAX_EVENTS = 256


def spawn_seeds(root_seed: int, count: int) -> List[int]:
    """*count* independent 64-bit child seeds derived from *root_seed*.

    Uses ``SeedSequence.spawn`` so child streams are statistically
    independent and — crucially for the sharded backend — depend only on
    ``(root_seed, index)``, never on scheduling order.
    """
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(c.generate_state(1, np.uint64)[0]) for c in children]


class RunContext:
    """Mutable per-run instrumentation record.

    Args:
        seed: Root RNG seed (``None`` means :data:`DEFAULT_SEED`).
        backend: Engine backend name this run is configured for.
        label: Optional run label (the CLI stores the command name).
    """

    def __init__(self, seed: Optional[int] = None, backend: str = "bigint",
                 label: Optional[str] = None):
        self.seed = DEFAULT_SEED if seed is None else int(seed)
        self.backend = backend
        self.label = label
        self.counters: Dict[str, int] = {}
        self.phases: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self._rng: Optional[np.random.Generator] = None
        self._spawned: List[Dict[str, Any]] = []

    # -- RNG provenance -------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """The run's root generator (created lazily from ``seed``)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)
        return self._rng

    def spawn_seed(self, label: str) -> int:
        """A deterministic child seed, recorded in the manifest."""
        index = len(self._spawned)
        child = spawn_seeds(self.seed, index + 1)[index]
        self._spawned.append({"label": label, "index": index, "seed": child})
        return child

    # -- counters -------------------------------------------------------
    def add(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter (created on first use)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def gate_evals(self) -> int:
        """Total gate-kernel evaluations recorded so far."""
        return self.counters.get("gate_evals", 0)

    # -- trace events ---------------------------------------------------
    def record_event(self, kind: str, **fields: Any) -> None:
        """Append a structured trace event (bounded by :data:`MAX_EVENTS`).

        The serving layer's :class:`~repro.service.Tracer` forwards its
        events here so a run manifest carries the head of the trace;
        beyond the cap only ``events_dropped`` grows, keeping manifests
        bounded no matter how long a load test runs.
        """
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        event: Dict[str, Any] = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    # -- phase timers ---------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time of the ``with`` body under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    # -- manifest -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable manifest of the run so far."""
        return {
            "label": self.label,
            "seed": self.seed,
            "backend": self.backend,
            "gate_evals": self.gate_evals,
            "counters": dict(self.counters),
            "phase_seconds": {k: round(v, 6) for k, v in self.phases.items()},
            "spawned_seeds": list(self._spawned),
            "events": [dict(e) for e in self.events],
            "events_dropped": self.events_dropped,
        }

    as_manifest = snapshot

    def write_manifest(self, path: str) -> str:
        """Write the manifest as pretty-printed JSON; returns *path*."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.snapshot(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RunContext seed={self.seed} backend={self.backend!r} "
                f"gate_evals={self.gate_evals}>")


_default_context: Optional[RunContext] = None


def get_default_context() -> RunContext:
    """The process-wide fallback context (seed 0, created on demand)."""
    global _default_context
    if _default_context is None:
        _default_context = RunContext(seed=DEFAULT_SEED)
    return _default_context


def set_default_context(ctx: RunContext) -> RunContext:
    """Install *ctx* as the process-wide fallback; returns it."""
    global _default_context
    _default_context = ctx
    return ctx


def resolve_rng(rng: Optional[np.random.Generator] = None,
                ctx: Optional[RunContext] = None) -> np.random.Generator:
    """The generator to use: explicit *rng*, else *ctx*, else the default.

    This is the repository-wide fix for the historical unseeded
    ``np.random.default_rng()`` fallback: every path without an explicit
    generator now draws from one seeded root.
    """
    if rng is not None:
        return rng
    return (ctx or get_default_context()).rng
