"""Circuit compilation: netlist -> executable plan.

:func:`compile_circuit` turns a levelized :class:`Circuit` into a
:class:`CompiledPlan`, paying the per-gate analysis cost **once** so the
backends can replay the circuit with no Python-level dispatch on gate
specs:

* every live net is assigned a dense *slot*;
* gates are lowered to a small fixed opcode set — inverting gates
  (NAND/NOR/XNOR) become their base op plus an output-invert flag, and
  variadic gates are decomposed into binary chains through scratch
  slots;
* **NOT fusion**: a NOT whose operand is a single-consumer gate flips
  that gate's invert flag instead of emitting a step; BUFs and remaining
  NOTs of sources alias/complement without a gate evaluation where
  possible;
* **constant handling**: CONST0/CONST1 become preset slots, never
  evaluated;
* dead logic (nets not reachable from any registered output) is skipped
  outright;
* steps are grouped per level and opcode into :class:`BatchGroup` index
  arrays so the NumPy backend can evaluate whole levels with a handful
  of fancy-indexed array ops.

Plans contain only plain tuples, ints and NumPy index arrays, so they
pickle cheaply — the sharded backend ships one plan to every worker
process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.gates import gate_spec
from ..circuit.netlist import Circuit, CircuitError

__all__ = [
    "OP_AND", "OP_OR", "OP_XOR", "OP_COPY", "OP_AO21", "OP_OA21",
    "OP_MUX2", "OP_MAJ3", "OPCODE_NAMES",
    "Step", "BatchGroup", "CompiledPlan", "compile_circuit",
]

# Opcode tape alphabet.  COPY with invert=True is a NOT.
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_COPY = 3
OP_AO21 = 4
OP_OA21 = 5
OP_MUX2 = 6
OP_MAJ3 = 7

OPCODE_NAMES = ("AND", "OR", "XOR", "COPY", "AO21", "OA21", "MUX2", "MAJ3")

#: Gate op -> (opcode, output inverted).  Variadic ops use their binary
#: opcode and are chained by the compiler.
_LOWER: Dict[str, Tuple[int, bool]] = {
    "AND": (OP_AND, False), "NAND": (OP_AND, True),
    "OR": (OP_OR, False), "NOR": (OP_OR, True),
    "XOR": (OP_XOR, False), "XNOR": (OP_XOR, True),
    "BUF": (OP_COPY, False), "NOT": (OP_COPY, True),
    "AO21": (OP_AO21, False), "OA21": (OP_OA21, False),
    "MUX2": (OP_MUX2, False), "MAJ3": (OP_MAJ3, False),
}

#: A step is ``(opcode, out_slot, in_slots, invert_output)``.
Step = Tuple[int, int, Tuple[int, ...], bool]


@dataclass
class BatchGroup:
    """All same-opcode steps of one level, as gather/scatter indices."""

    level: int
    opcode: int
    invert: bool
    outs: np.ndarray            # int64, shape (g,)
    ins: List[np.ndarray]       # one int64 array of shape (g,) per operand

    def __len__(self) -> int:
        return len(self.outs)


@dataclass
class CompiledPlan:
    """Executable form of one circuit, shared by every backend.

    Attributes:
        name: Source circuit name.
        num_slots: Dense value-slot count (live nets + scratch).
        input_slots: Input bus name -> slot per bit (LSB first).
        output_slots: Output bus name -> slot per bit (LSB first).
        const_slots: ``(slot, value)`` pairs preset before execution.
        steps: Flat op tape in topological order (bigint backend).
        batches: Level-major batch groups (NumPy backend).
        nid_to_slot: Net id -> slot (-1 for dead nets).  With ``fuse``
            enabled several nets may share a slot; fault forcing
            therefore requires an unfused plan.
        fused: Whether NOT/BUF fusion and slot aliasing were applied.
        num_gates: Logic gates represented (for gate-eval accounting,
            scratch steps of decomposed variadic gates included).
    """

    name: str
    num_slots: int
    input_slots: Dict[str, List[int]]
    output_slots: Dict[str, List[int]]
    const_slots: List[Tuple[int, int]]
    steps: List[Step]
    batches: List[BatchGroup]
    nid_to_slot: List[int]
    fused: bool
    num_gates: int = 0
    #: Net-id complement markers: output/forced reads of an aliased slot
    #: that must be inverted (produced by NOT fusion onto sources).
    inverted_nids: Dict[int, int] = field(default_factory=dict)

    def slot_of(self, nid: int) -> int:
        """Slot carrying net *nid*'s value, raising for dead nets."""
        slot = self.nid_to_slot[nid]
        if slot < 0:
            raise CircuitError(f"net {nid} is dead in the compiled plan")
        return slot


def _live_mask(circuit: Circuit) -> List[bool]:
    if not circuit.outputs:
        return [True] * len(circuit.nets)
    live = circuit.reachable_from_outputs()
    # Primary inputs are always bound (stimulus validation contract).
    for bus in circuit.inputs.values():
        for nid in bus:
            live[nid] = True
    return live


def compile_circuit(circuit: Circuit, fuse: bool = True) -> CompiledPlan:
    """Compile *circuit* into a :class:`CompiledPlan`.

    Args:
        circuit: Combinational circuit (DFFs are rejected — drive state
            with :mod:`repro.circuit.sequential`).
        fuse: Apply NOT/BUF fusion and slot aliasing.  Disable when
            per-net observability is required (fault forcing).

    Raises:
        RuntimeError: For sequential circuits (matching the per-gate
            DFF evaluation error of the interpreted path).
        CircuitError: For unknown gate ops.
    """
    if circuit.is_sequential():
        raise RuntimeError(
            "DFF outputs are state: use repro.circuit.sequential to simulate")

    live = _live_mask(circuit)
    nets = circuit.nets
    n = len(nets)

    # Fanout among live gates + output references, for fusion safety.
    consumers = [0] * n
    if fuse:
        for net in nets:
            if not live[net.nid]:
                continue
            for f in net.fanins:
                consumers[f] += 1
        for bus in circuit.outputs.values():
            for nid in bus:
                consumers[nid] += 1

    nid_to_slot = [-1] * n
    inverted: Dict[int, int] = {}
    const_slots: List[Tuple[int, int]] = []
    steps: List[Step] = []
    #: slot of the step producing it, for invert-flag back-patching
    producer: Dict[int, int] = {}
    num_slots = 0

    def new_slot() -> int:
        nonlocal num_slots
        num_slots += 1
        return num_slots - 1

    def emit(opcode: int, ins: Tuple[int, ...], invert: bool) -> int:
        out = new_slot()
        steps.append((opcode, out, ins, invert))
        producer[out] = len(steps) - 1
        return out

    for net in nets:
        nid = net.nid
        if not live[nid]:
            continue
        op = net.op
        if op == "INPUT":
            nid_to_slot[nid] = new_slot()
            continue
        if op in ("CONST0", "CONST1"):
            slot = new_slot()
            const_slots.append((slot, 1 if op == "CONST1" else 0))
            nid_to_slot[nid] = slot
            continue
        if op not in _LOWER:
            raise CircuitError(f"cannot compile gate op {op!r}")
        opcode, invert = _LOWER[op]
        fanin_slots = tuple(nid_to_slot[f] for f in net.fanins)

        if fuse and op == "BUF":
            nid_to_slot[nid] = fanin_slots[0]
            continue
        if fuse and op == "NOT":
            src = net.fanins[0]
            src_slot = fanin_slots[0]
            if src_slot in producer and consumers[src] == 1:
                # Single-consumer gate: absorb the NOT into its output.
                idx = producer[src_slot]
                s_op, s_out, s_ins, s_inv = steps[idx]
                steps[idx] = (s_op, s_out, s_ins, not s_inv)
                nid_to_slot[nid] = src_slot
                # The producing net's value is now complemented; but with
                # a single consumer (this NOT) nothing else reads it.
                nid_to_slot[src] = src_slot
                inverted[src] = 1
                continue
            # Fall through: explicit complement step.

        if gate_spec(op).arity < 0 and len(fanin_slots) > 2:
            acc = emit(opcode, fanin_slots[:2], False)
            for extra in fanin_slots[2:-1]:
                acc = emit(opcode, (acc, extra), False)
            nid_to_slot[nid] = emit(opcode, (acc, fanin_slots[-1]), invert)
        else:
            nid_to_slot[nid] = emit(opcode, fanin_slots, invert)

    input_slots = {name: [nid_to_slot[nid] for nid in bus]
                   for name, bus in circuit.inputs.items()}
    output_slots = {name: [nid_to_slot[nid] for nid in bus]
                    for name, bus in circuit.outputs.items()}
    plan = CompiledPlan(
        name=circuit.name,
        num_slots=num_slots,
        input_slots=input_slots,
        output_slots=output_slots,
        const_slots=const_slots,
        steps=steps,
        batches=_build_batches(steps, num_slots),
        nid_to_slot=nid_to_slot,
        fused=fuse,
        num_gates=len(steps),
        inverted_nids=inverted,
    )
    _check_no_inverted_outputs(plan, circuit)
    return plan


def _check_no_inverted_outputs(plan: CompiledPlan, circuit: Circuit) -> None:
    """NOT fusion must never complement a slot an output reads directly."""
    if not plan.inverted_nids:
        return
    for bus in circuit.outputs.values():
        for nid in bus:
            if nid in plan.inverted_nids:  # pragma: no cover - invariant
                raise CircuitError(
                    f"internal: fused complement visible on output net {nid}")


def _build_batches(steps: Sequence[Step], num_slots: int) -> List[BatchGroup]:
    """Group the tape into per-(level, opcode, invert) index arrays."""
    level = [0] * num_slots
    keyed: Dict[Tuple[int, int, bool], List[Step]] = {}
    for opcode, out, ins, inv in steps:
        lv = 1 + max((level[i] for i in ins), default=0)
        level[out] = lv
        keyed.setdefault((lv, opcode, inv), []).append(
            (opcode, out, ins, inv))
    groups: List[BatchGroup] = []
    for (lv, opcode, inv) in sorted(keyed):
        members = keyed[(lv, opcode, inv)]
        arity = len(members[0][2])
        outs = np.fromiter((m[1] for m in members), dtype=np.int64,
                           count=len(members))
        ins = [np.fromiter((m[2][k] for m in members), dtype=np.int64,
                           count=len(members))
               for k in range(arity)]
        groups.append(BatchGroup(lv, opcode, inv, outs, ins))
    return groups
