"""Workload generator and load driver for :class:`VlsaService`.

Workloads (operand-pair streams) cover the distributions the related
work cares about:

* ``uniform`` — i.i.d. uniform operands, the paper's own assumption;
  the observed stall rate must match
  :func:`~repro.analysis.error_model.detector_flag_probability`.
* ``biased`` — per-bit one-probability ``alpha`` approximated by
  AND/OR-combining uniform words (supported alphas ``1/2^k`` and
  ``1 - 1/2^k``; the closest is chosen).  The analytic stall rate comes
  from the biased Markov model in :mod:`repro.analysis.biased` — Kedem-
  style workload-dependent accuracy, now measurable end to end.
* ``adversarial`` — every pair carries a maximal propagate chain with a
  generate feeding it, so the detector fires on *every* addition (the
  worst case an attacker can force; mean latency pins at
  ``1 + recovery``).
* ``attack`` — the additions the Section-1 ciphertext-only attack
  actually performs, captured by running :func:`repro.apps.run_attack`
  with a recording adder and replayed verbatim (32-bit ARX traffic —
  correlated, non-uniform, the cipher workload the paper motivates).
* ``mixed`` — uniform with a configurable adversarial fraction, for
  SLO-under-attack experiments.

:func:`run_loadgen` drives any workload through an in-process service
with a configurable number of concurrent clients submitting chunked
batches, and returns a :class:`LoadgenReport` comparing observed mean
latency against the analytic ``1 + P(stall) * recovery_cycles``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..analysis.biased import (
    pg_probabilities,
    run_at_least_probability_biased,
)
from ..analysis.error_model import expected_latency_cycles
from ..engine.context import RunContext, resolve_rng
from .metrics import MetricsRegistry
from .service import VlsaService

__all__ = ["WORKLOADS", "LoadgenReport", "make_workload", "run_loadgen",
           "capture_attack_pairs"]

WORKLOADS = ("uniform", "biased", "adversarial", "attack", "mixed",
             "drift")

# Per-bit propagate probability of the drift workload's final phase:
# i.i.d. propagate-heavy bits (OR of 3 uniform words selects the
# propagate mask), statistically adversarial for carry chains while
# staying inside the i.i.d. model the autotuner's forecasts assume —
# unlike the fixed `adversarial` workload, whose deterministic
# full-width chains are maximally correlated by design.
DRIFT_ADVERSARIAL_P = 1.0 - 0.5 ** 3

PairChunk = List[Tuple[int, int]]


def _uniform_words(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, np.iinfo(np.uint64).max, size=n,
                        dtype=np.uint64, endpoint=True)


def _chunk_uniform(rng: np.random.Generator, width: int,
                   n: int) -> PairChunk:
    mask = (1 << width) - 1
    if width <= 64:
        word_mask = np.uint64(mask)
        a = (_uniform_words(rng, n) & word_mask).tolist()
        b = (_uniform_words(rng, n) & word_mask).tolist()
        return list(zip(a, b))
    words = (width + 63) // 64
    a_parts = [p.tolist() for p in
               (_uniform_words(rng, n) for _ in range(words))]
    b_parts = [p.tolist() for p in
               (_uniform_words(rng, n) for _ in range(words))]

    def glue(parts, i):
        value = 0
        for w, part in enumerate(parts):
            value |= part[i] << (64 * w)
        return value & mask

    return [(glue(a_parts, i), glue(b_parts, i)) for i in range(n)]


def _bias_combine(rng: np.random.Generator, n: int,
                  alpha: float) -> Tuple[np.ndarray, float]:
    """Words whose bits are one with probability ≈ *alpha*.

    AND-ing k uniform words gives ``2^-k``; OR-ing gives ``1 - 2^-k``.
    Returns the words and the alpha actually achieved.
    """
    if not (0.0 < alpha < 1.0):
        raise ValueError("alpha must be in (0, 1)")
    candidates = [(abs(alpha - 0.5 ** k), "and", k) for k in range(1, 7)]
    candidates += [(abs(alpha - (1 - 0.5 ** k)), "or", k)
                   for k in range(2, 7)]
    _, mode, k = min(candidates)
    out = _uniform_words(rng, n)
    for _ in range(k - 1):
        extra = _uniform_words(rng, n)
        out = (out & extra) if mode == "and" else (out | extra)
    achieved = 0.5 ** k if mode == "and" else 1 - 0.5 ** k
    return out, achieved


@dataclass
class Workload:
    """A named operand-pair stream plus its analytic stall probability."""

    name: str
    width: int
    chunks: Iterator[PairChunk]
    analytic_stall_probability: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)


def make_workload(name: str, width: int, window: int, ops: int,
                  chunk: int = 1024, alpha: float = 0.75,
                  adversarial_fraction: float = 0.1,
                  rng: Optional[np.random.Generator] = None,
                  ctx: Optional[RunContext] = None) -> Workload:
    """Build the operand stream for workload *name*.

    Args:
        name: One of :data:`WORKLOADS`.
        width: Operand bitwidth (``attack`` forces 32 — ARX block size).
        window: Speculation window (for the analytic stall probability).
        ops: Total additions to generate.
        chunk: Additions per submitted batch.
        alpha: Per-bit one-probability target (``biased`` only).
        adversarial_fraction: Stalling fraction (``mixed`` only).
        rng: Seeded generator (default: from *ctx* / process default).
        ctx: Optional run context for RNG resolution.
    """
    if name not in WORKLOADS:
        raise ValueError(f"unknown workload {name!r}; "
                         f"expected one of {WORKLOADS}")
    rng = resolve_rng(rng, ctx)
    from ..analysis.error_model import detector_flag_probability

    if name == "uniform":
        def gen() -> Iterator[PairChunk]:
            done = 0
            while done < ops:
                n = min(chunk, ops - done)
                yield _chunk_uniform(rng, width, n)
                done += n
        return Workload(name, width, gen(),
                        detector_flag_probability(width, window))

    if name == "biased":
        def gen_biased() -> Iterator[PairChunk]:
            word_mask = np.uint64((1 << width) - 1)
            done = 0
            while done < ops:
                n = min(chunk, ops - done)
                a_words, _ = _bias_combine(rng, n, alpha)
                b_words, _ = _bias_combine(rng, n, alpha)
                yield list(zip((a_words & word_mask).tolist(),
                               (b_words & word_mask).tolist()))
                done += n
        if width > 64:
            raise ValueError("biased workload supports widths up to 64")
        # Probe once so the achieved alpha is known up front.
        _, achieved = _bias_combine(np.random.default_rng(0), 1, alpha)
        p_prop, _, _ = pg_probabilities(achieved, achieved)
        analytic = run_at_least_probability_biased(width, window, p_prop)
        return Workload(name, width, gen_biased(), analytic,
                        params={"alpha": achieved, "p_propagate": p_prop})

    if name == "adversarial":
        def gen_adv() -> Iterator[PairChunk]:
            mask = (1 << width) - 1
            done = 0
            while done < ops:
                n = min(chunk, ops - done)
                out: PairChunk = []
                for _ in range(n):
                    # 0111…1 + 1: a full-width propagate chain fed by a
                    # generate at bit 0 — detector fires, recovery runs.
                    noise = int(rng.integers(0, 4))
                    out.append(((mask >> 1) ^ noise, 1 | noise))
                yield out
                done += n
        return Workload(name, width, gen_adv(), 1.0)

    if name == "mixed":
        frac = adversarial_fraction
        if not (0.0 <= frac <= 1.0):
            raise ValueError("adversarial_fraction must be in [0, 1]")
        p_uni = detector_flag_probability(width, window)
        analytic = frac * 1.0 + (1 - frac) * p_uni

        def gen_mixed() -> Iterator[PairChunk]:
            mask = (1 << width) - 1
            done = 0
            while done < ops:
                n = min(chunk, ops - done)
                pairs = _chunk_uniform(rng, width, n)
                hits = rng.random(n) < frac
                pairs = [((mask >> 1, 1) if hits[i] else pairs[i])
                         for i in range(n)]
                yield pairs
                done += n
        return Workload(name, width, gen_mixed(), analytic,
                        params={"adversarial_fraction": frac})

    if name == "drift":
        # Nonstationary stream for autotune convergence and soak runs:
        # the operand distribution shifts uniform -> biased ->
        # propagate-heavy adversarial in three equal phases, chunks
        # never spanning a shift.  Each phase is i.i.d. per bit, so the
        # analytic stall probability is exact *within* a phase (recorded
        # per phase in params); the stream as a whole has none.
        if width > 64:
            raise ValueError("drift workload supports widths up to 64")
        n1 = ops // 3
        n2 = ops // 3
        n3 = ops - n1 - n2
        phase_uniform = make_workload("uniform", width, window, n1,
                                      chunk=chunk, rng=rng)
        phase_biased = make_workload("biased", width, window, n2,
                                     chunk=chunk, alpha=alpha, rng=rng)
        q = DRIFT_ADVERSARIAL_P

        def gen_propheavy() -> Iterator[PairChunk]:
            word_mask = np.uint64((1 << width) - 1)
            done = 0
            while done < n3:
                n = min(chunk, n3 - done)
                # propagate mask: each bit propagates w.p. q (i.i.d.);
                # a uniform, b = a ^ p_mask realizes exactly that
                # per-bit propagate/generate/kill split.
                p_mask = _uniform_words(rng, n)
                for _ in range(2):
                    p_mask |= _uniform_words(rng, n)
                a_words = _uniform_words(rng, n) & word_mask
                b_words = (a_words ^ p_mask) & word_mask
                yield list(zip(a_words.tolist(), b_words.tolist()))
                done += n

        def gen_drift() -> Iterator[PairChunk]:
            yield from phase_uniform.chunks
            yield from phase_biased.chunks
            yield from gen_propheavy()

        phases = [
            {"name": "uniform", "ops": n1,
             "p_propagate": 0.5,
             "analytic_stall_rate": phase_uniform.analytic_stall_probability},
            {"name": "biased", "ops": n2,
             "p_propagate": phase_biased.params.get("p_propagate"),
             "alpha": phase_biased.params.get("alpha"),
             "analytic_stall_rate": phase_biased.analytic_stall_probability},
            {"name": "adversarial", "ops": n3,
             "p_propagate": q,
             "analytic_stall_rate":
                 run_at_least_probability_biased(width, min(window, width), q)
                 if window < width else q ** width},
        ]
        return Workload("drift", width, gen_drift(), None,
                        params={"phases": phases, "alpha": alpha})

    # attack: capture the ARX cipher's actual add stream and replay it.
    pairs = _capture_attack_pairs(ops, rng)

    def gen_attack() -> Iterator[PairChunk]:
        for lo in range(0, len(pairs), chunk):
            yield pairs[lo:lo + chunk]
    return Workload("attack", 32, gen_attack(), None,
                    params={"captured_ops": len(pairs)})


def capture_attack_pairs(ops: int,
                         rng: np.random.Generator) -> PairChunk:
    """Public capture entry point (the verify subsystem replays these)."""
    return _capture_attack_pairs(ops, rng)


def _capture_attack_pairs(ops: int,
                          rng: np.random.Generator) -> PairChunk:
    """The (a, b) streams the ciphertext-only attack really adds.

    Runs :func:`repro.apps.attack.run_attack` on a small corpus with a
    recording adder; repeats (with fresh keys) until *ops* pairs are
    captured.
    """
    from ..apps.attack import run_attack
    from ..apps.blockcipher import ArxCipher, exact_adder

    captured: PairChunk = []
    while len(captured) < ops:
        key = int(rng.integers(0, 1 << 16))
        cipher = ArxCipher(key, rounds=4)
        plaintext = bytes(int(x) for x in rng.integers(97, 123, size=256))
        ciphertext = cipher.encrypt_bytes(plaintext)

        def recording_adder(a: int, b: int) -> int:
            if len(captured) < ops:
                captured.append((a & 0xFFFFFFFF, b & 0xFFFFFFFF))
            return exact_adder(a, b)

        candidates = [key, (key + 1) & 0xFFFF, (key ^ 0x5A5A) & 0xFFFF,
                      (key + 7) & 0xFFFF]
        run_attack(ciphertext, key, candidates, adder=recording_adder,
                   rounds=4)
    return captured[:ops]


@dataclass
class LoadgenReport:
    """Aggregate outcome of one load-generation run."""

    workload: str
    width: int
    window: int
    backend: str
    ops: int
    wall_seconds: float
    adds_per_second: float
    mean_latency_cycles: float
    analytic_latency_cycles: Optional[float]
    stall_rate: float
    analytic_stall_rate: Optional[float]
    spec_error_rate: float
    total_cycles: int
    rejected: int
    timeouts: int
    retries: int
    queue_depth_peak: float
    p50_wall_ms: float
    p95_wall_ms: float
    p99_wall_ms: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["wall_seconds"] = round(self.wall_seconds, 6)
        out["adds_per_second"] = round(self.adds_per_second, 1)
        return out

    def render(self) -> str:
        """Human-readable summary table."""
        ana_lat = ("n/a" if self.analytic_latency_cycles is None
                   else f"{self.analytic_latency_cycles:.6f}")
        ana_stall = ("n/a" if self.analytic_stall_rate is None
                     else f"{self.analytic_stall_rate:.3e}")
        lines = [
            f"loadgen: workload={self.workload} width={self.width} "
            f"window={self.window} backend={self.backend}",
            f"  ops                  {self.ops}",
            f"  wall seconds         {self.wall_seconds:.3f}",
            f"  adds/second          {self.adds_per_second:,.0f}",
            f"  mean latency cycles  {self.mean_latency_cycles:.6f}"
            f"   (analytic {ana_lat})",
            f"  stall rate           {self.stall_rate:.3e}"
            f"   (analytic {ana_stall})",
            f"  spec error rate      {self.spec_error_rate:.3e}",
            f"  total cycles         {self.total_cycles}",
            f"  request wall ms      p50={self.p50_wall_ms:.3f} "
            f"p95={self.p95_wall_ms:.3f} p99={self.p99_wall_ms:.3f}",
            f"  rejected/timeouts    {self.rejected}/{self.timeouts}"
            f"  (retries {self.retries})",
            f"  queue depth peak     {self.queue_depth_peak:.0f}",
        ]
        if self.params:
            lines.append(f"  params               {self.params}")
        return "\n".join(lines)


async def _drive(service, workload: Workload,
                 concurrency: int, timeout: Optional[float],
                 retries: int) -> None:
    chunk_iter = workload.chunks
    lock = asyncio.Lock()

    async def client() -> None:
        while True:
            async with lock:
                try:
                    chunk = next(chunk_iter)
                except StopIteration:
                    return
            await service.submit_batch(chunk, timeout=timeout,
                                       retries=retries)

    await asyncio.gather(*(client() for _ in range(concurrency)))


async def _drive_tcp(host: str, port: int, workload: Workload,
                     concurrency: int, timeout: Optional[float],
                     retries: int, stats: Dict[str, Any]) -> None:
    """Drive the workload through real sockets speaking JSON lines.

    Each client opens its own TCP connection and submits chunks with
    the batch verb (``{"pairs": [...]}``); ``overloaded`` replies are
    retried with exponential backoff up to *retries* times, mirroring
    the in-process clients' ``submit_batch(retries=...)`` contract.
    Client-observed request wall times and reply-derived totals land in
    *stats* — the only vantage point an external target offers.
    """
    chunk_iter = workload.chunks
    lock = asyncio.Lock()

    async def client() -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                async with lock:
                    try:
                        chunk = next(chunk_iter)
                    except StopIteration:
                        return
                request = (json.dumps(
                    {"pairs": [[int(a), int(b)] for a, b in chunk]})
                    .encode() + b"\n")
                for attempt in range(retries + 1):
                    t0 = time.perf_counter()
                    writer.write(request)
                    await writer.drain()
                    line = await reader.readline()
                    if not line:
                        raise ConnectionError("server closed connection")
                    wall = time.perf_counter() - t0
                    reply = json.loads(line)
                    code = reply.get("code")
                    if code is None:
                        stats["ops"] += len(reply["sums"])
                        stats["stalls"] += sum(
                            1 for f in reply["stalled"] if f)
                        stats["latency_sum"] += sum(reply["latencies"])
                        stats["walls"].append(wall)
                        stats["last_accept_cycle"] = max(
                            stats["last_accept_cycle"],
                            reply["accept_cycle"])
                        break
                    if code == "overloaded" and attempt < retries:
                        stats["retries"] += 1
                        await asyncio.sleep(0.005 * (1 << attempt))
                        continue
                    stats["rejected" if code == "overloaded"
                          else "timeouts"] += 1
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    await asyncio.gather(*(client() for _ in range(concurrency)))


async def _tcp_info(host: str, port: int) -> Dict[str, Any]:
    """One ``{"cmd": "info"}`` round trip (external-target probe)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b'{"cmd": "info"}\n')
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed connection")
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def run_loadgen(workload: str = "uniform", ops: int = 100000,
                width: int = 64, window: Optional[int] = None,
                chunk: int = 1024, concurrency: int = 4,
                queue_capacity: int = 64, max_batch_ops: int = 8192,
                recovery_cycles: int = 1, backend: Optional[str] = None,
                alpha: float = 0.75, adversarial_fraction: float = 0.1,
                timeout: Optional[float] = 30.0, retries: int = 8,
                target: str = "service", workers: int = 2,
                shard_policy: str = "round_robin",
                transport: str = "pipe",
                connect: Optional[Tuple[str, int]] = None,
                ctx: Optional[RunContext] = None,
                registry: Optional[MetricsRegistry] = None
                ) -> LoadgenReport:
    """Drive *ops* additions through a serving target.

    Args:
        target: ``"service"`` (one in-process :class:`VlsaService`, the
            default), ``"cluster"`` (a
            :class:`~repro.cluster.ClusterRouter` over *workers* real
            worker processes — the full wire path), or ``"tcp"``
            (real-socket JSON-lines clients against a
            :class:`~repro.service.server.VlsaServer`: self-hosted over
            a cluster/service when *connect* is None, else an external
            already-running server at ``connect=(host, port)``).
        workers, shard_policy: Cluster pool size / shard policy
            (cluster-backed targets only; ``workers=0`` under
            ``target="tcp"`` self-hosts a plain in-process service).
        transport: Cluster wire — ``"pipe"`` or ``"shm"``
            (cluster-backed targets only).
        connect: ``(host, port)`` of an external server
            (``target="tcp"`` only); the report is then built from the
            clients' own vantage point plus an ``info`` probe.

    Returns:
        A :class:`LoadgenReport`; ``report.metrics`` holds the full
        registry snapshot (also what ``results/BENCH_service.json`` is
        built from).  Cluster runs add pool health (restarts, degraded
        and redirected requests) and transport accounting to
        ``report.params``.
    """
    if workload == "attack":
        width = 32
    if connect is not None and target != "tcp":
        raise ValueError("connect=(host, port) requires target='tcp'")
    if target == "tcp" and connect is not None:
        return _run_loadgen_external(
            workload=workload, ops=ops, width=width, window=window,
            chunk=chunk, concurrency=concurrency, alpha=alpha,
            adversarial_fraction=adversarial_fraction, timeout=timeout,
            retries=retries, connect=connect, ctx=ctx)
    serve_tcp = target == "tcp"
    if target == "cluster" or (serve_tcp and workers > 0):
        from ..cluster import ClusterConfig, ClusterRouter

        cfg = ClusterConfig(
            width=width, window=window,
            recovery_cycles=recovery_cycles, workers=workers,
            backend=backend, shard_policy=shard_policy,
            transport=transport, max_batch_ops=max_batch_ops,
            worker_queue_ops=max(queue_capacity, 1) * max(chunk, 1))
        service = ClusterRouter(cfg, ctx=ctx, registry=registry)
    elif target == "service" or serve_tcp:
        service = VlsaService(width=width, window=window,
                              recovery_cycles=recovery_cycles,
                              queue_capacity=queue_capacity,
                              max_batch_ops=max_batch_ops,
                              backend=backend, ctx=ctx,
                              registry=registry)
    else:
        raise ValueError(f"unknown loadgen target {target!r}; "
                         f"expected 'service', 'cluster' or 'tcp'")
    is_cluster = hasattr(service, "supervisor")
    wl = make_workload(workload, service.width, service.window, ops,
                       chunk=chunk, alpha=alpha,
                       adversarial_fraction=adversarial_fraction, ctx=ctx)

    async def main() -> float:
        if serve_tcp:
            from .server import VlsaServer

            server = VlsaServer(service, host="127.0.0.1", port=0,
                                request_timeout=timeout)
            tcp_stats = {"ops": 0, "stalls": 0, "latency_sum": 0,
                         "retries": 0, "rejected": 0, "timeouts": 0,
                         "walls": [], "last_accept_cycle": 0}
            async with server:
                t0 = time.perf_counter()
                await _drive_tcp("127.0.0.1", server.port, wl,
                                 concurrency, timeout, retries,
                                 tcp_stats)
                return time.perf_counter() - t0
        async with service:
            if is_cluster:
                await service.wait_ready()
            t0 = time.perf_counter()
            await _drive(service, wl, concurrency, timeout, retries)
            return time.perf_counter() - t0

    phase = ctx.phase("loadgen") if ctx is not None else None
    if phase is not None:
        with phase:
            wall = asyncio.run(main())
    else:
        wall = asyncio.run(main())

    served = service.m_ops.value
    stalls = service.m_stalls.value
    analytic_stall = wl.analytic_stall_probability
    analytic_latency = (
        None if analytic_stall is None
        else expected_latency_cycles(analytic_stall, recovery_cycles))
    wall_hist = service.h_wall
    report = LoadgenReport(
        workload=workload, width=service.width, window=service.window,
        backend=service.backend_name, ops=served,
        wall_seconds=wall,
        adds_per_second=served / wall if wall > 0 else 0.0,
        mean_latency_cycles=service.mean_latency_cycles,
        analytic_latency_cycles=analytic_latency,
        stall_rate=stalls / served if served else 0.0,
        analytic_stall_rate=analytic_stall,
        spec_error_rate=(service.m_spec_errors.value / served
                         if served else 0.0),
        total_cycles=service.cycle,
        rejected=service.m_rejected.value,
        timeouts=service.m_timeouts.value,
        retries=service.m_retries.value,
        queue_depth_peak=service.m_queue_depth.peak,
        p50_wall_ms=wall_hist.quantile(0.5) * 1e3,
        p95_wall_ms=wall_hist.quantile(0.95) * 1e3,
        p99_wall_ms=wall_hist.quantile(0.99) * 1e3,
        metrics=service.metrics_json(),
        params=dict(wl.params),
    )
    if serve_tcp:
        report.params["target"] = "tcp"
        report.params["edge"] = "self-hosted"
    if is_cluster:
        report.params.update({
            "target": target,
            "workers": workers,
            "shard_policy": shard_policy,
            "transport": transport,
            "worker_restarts": service.supervisor.m_restarts.value,
            "worker_failures": service.supervisor.m_failures.value,
            "degraded_requests": service.m_degraded.value,
            "degraded_ops": service.m_degraded_ops.value,
            "redirected_requests": service.m_redirected.value,
            "failed_requests": service.m_failed.value,
            "transport_tx_bytes": service.m_tx_bytes.value,
            "transport_rx_bytes": service.m_rx_bytes.value,
            "transport_pipe_fallbacks": service.m_pipe_fallback.value,
            "transport_ring_full_stalls": service.m_ring_stalls.value,
        })
    if ctx is not None:
        ctx.add("loadgen_ops", served)
        ctx.record_event("loadgen_done", workload=workload, ops=served,
                         adds_per_second=round(report.adds_per_second, 1))
    return report


def _run_loadgen_external(workload: str, ops: int, width: int,
                          window: Optional[int], chunk: int,
                          concurrency: int, alpha: float,
                          adversarial_fraction: float,
                          timeout: Optional[float], retries: int,
                          connect: Tuple[str, int],
                          ctx: Optional[RunContext]) -> LoadgenReport:
    """Drive an already-running TCP server at ``connect=(host, port)``.

    The server's configuration comes from an ``info`` probe (so the
    workload matches what it actually serves); the report is built
    purely from what the clients can observe — reply-derived op/stall
    totals and client-side request wall times.  Server-internal rates
    (spec errors, queue depth) are not visible from here and read 0.
    """
    host, port = connect
    info = asyncio.run(_tcp_info(host, port))
    width = int(info.get("width", width))
    window = int(info.get("window", window or 0)) or None
    recovery_cycles = int(info.get("recovery_cycles", 1))
    if workload == "attack":
        width = 32
    wl = make_workload(workload, width, window or width, ops,
                       chunk=chunk, alpha=alpha,
                       adversarial_fraction=adversarial_fraction, ctx=ctx)
    stats: Dict[str, Any] = {"ops": 0, "stalls": 0, "latency_sum": 0,
                             "retries": 0, "rejected": 0, "timeouts": 0,
                             "walls": [], "last_accept_cycle": 0}

    async def main() -> float:
        t0 = time.perf_counter()
        await _drive_tcp(host, port, wl, concurrency, timeout, retries,
                         stats)
        return time.perf_counter() - t0

    wall = asyncio.run(main())
    served = stats["ops"]
    analytic_stall = wl.analytic_stall_probability
    walls = np.asarray(stats["walls"] or [0.0])
    report = LoadgenReport(
        workload=workload, width=width, window=window or width,
        backend=str(info.get("backend", "tcp")), ops=served,
        wall_seconds=wall,
        adds_per_second=served / wall if wall > 0 else 0.0,
        mean_latency_cycles=(stats["latency_sum"] / served
                             if served else 0.0),
        analytic_latency_cycles=(
            None if analytic_stall is None
            else expected_latency_cycles(analytic_stall,
                                         recovery_cycles)),
        stall_rate=stats["stalls"] / served if served else 0.0,
        analytic_stall_rate=analytic_stall,
        spec_error_rate=0.0,
        total_cycles=stats["last_accept_cycle"],
        rejected=stats["rejected"], timeouts=stats["timeouts"],
        retries=stats["retries"], queue_depth_peak=0.0,
        p50_wall_ms=float(np.percentile(walls, 50)) * 1e3,
        p95_wall_ms=float(np.percentile(walls, 95)) * 1e3,
        p99_wall_ms=float(np.percentile(walls, 99)) * 1e3,
        metrics={},
        params={**wl.params, "target": "tcp", "edge": "external",
                "connect": f"{host}:{port}",
                "server_info": {k: v for k, v in info.items()
                                if k != "id"}},
    )
    if ctx is not None:
        ctx.add("loadgen_ops", served)
        ctx.record_event("loadgen_done", workload=workload, ops=served,
                         adds_per_second=round(report.adds_per_second, 1))
    return report
