"""VLSA-as-a-service: async batched serving over the speculative adder.

The serving layer treats the variable-latency adder the way the paper's
analysis suggests it should be used — as a shared accelerator whose
*average* service time wins even though its worst case loses:

* :class:`VlsaService` — bounded admission queue (backpressure by
  rejection, never unbounded buffering), a dynamic micro-batcher that
  coalesces pending requests into single executor batches, per-request
  variable-latency accounting on a virtual cycle clock (1 cycle per
  addition, plus recovery cycles when the detector fires — exactly
  :class:`~repro.arch.VlsaMachine` semantics), and timeout / retry /
  cancellation handling.
* :class:`VlsaBatchExecutor` — the batch datapath: a vectorised numpy
  kernel for widths up to 64 bits, a bigint fallback for everything
  else, both cross-checked against the functional ACA model.
* :class:`MetricsRegistry` — counters, gauges with peaks, histograms
  with p50/p95/p99; JSON and Prometheus-text export.
* :class:`Tracer` — structured trace events, mirrored into the run's
  :class:`~repro.engine.RunContext` so manifests carry the trace head.
* :func:`run_loadgen` — workload generator (uniform / biased /
  adversarial / ARX-attack replay / mixed) and load driver; the CLI
  verbs ``serve`` and ``loadgen`` build on it.
* :class:`VlsaServer` / :func:`serve_tcp` — a stdlib-only TCP JSON-lines
  front-end.

Quick tour::

    import asyncio
    from repro.service import VlsaService

    async def demo():
        async with VlsaService(width=64) as svc:
            resp = await svc.submit(123, 456)
            return resp.sum_out, resp.latency_cycles

    asyncio.run(demo())   # -> (579, 1)
"""

from .executor import EXECUTOR_BACKENDS, BatchOutcome, VlsaBatchExecutor
from .loadgen import WORKLOADS, LoadgenReport, make_workload, run_loadgen
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .server import VlsaServer, serve_tcp
from .service import (
    AddResponse,
    BatchResponse,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    VlsaService,
)
from .tracing import TraceEvent, Tracer

__all__ = [
    "AddResponse",
    "BatchOutcome",
    "BatchResponse",
    "Counter",
    "EXECUTOR_BACKENDS",
    "Gauge",
    "Histogram",
    "LoadgenReport",
    "MetricsRegistry",
    "RequestTimeoutError",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "TraceEvent",
    "Tracer",
    "VlsaBatchExecutor",
    "VlsaServer",
    "VlsaService",
    "WORKLOADS",
    "make_workload",
    "run_loadgen",
    "serve_tcp",
]
