"""Batched VLSA evaluation backing the service's micro-batcher.

One coalesced batch of operand pairs is evaluated in a single call,
mirroring the engine's backend split:

* ``numpy`` — vectorised ``uint64`` kernel for widths up to 64 bits
  (the throughput path: exact sums, detector flags and speculative-error
  flags for a whole batch in a handful of array ops);
* ``bigint`` — per-pair :class:`~repro.mc.fastsim.AcaModel` loop, the
  fallback for arbitrary widths and the reference the numpy kernel is
  cross-checked against in the tests.

Latency semantics are exactly those of
:class:`~repro.arch.vlsa_machine.VlsaMachine`: the VLSA always returns
the **correct** sum; what varies is the cycle count — 1 cycle when the
detector stays silent (the speculative result is then provably right),
``1 + recovery_cycles`` when it fires.  The service's virtual cycle
clock therefore advances by ``n + recovery_cycles * stalls`` per batch,
and per-request accounting never needs the (slow) speculative sum at
all — only the detector word.  The tests cross-check this equivalence
against a real ``VlsaMachine`` run, operand for operand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.context import RunContext
from ..engine.functional import functional_model
from ..families.base import get_family

__all__ = ["BatchOutcome", "BatchArrays", "VlsaBatchExecutor",
           "EXECUTOR_BACKENDS"]

#: Executor backend names (mirrors the engine backend vocabulary).
EXECUTOR_BACKENDS = ("numpy", "bigint")


@dataclass
class BatchOutcome:
    """Result of one coalesced batch through the speculative datapath.

    Attributes:
        sums: Final (always correct) sums, one per pair.
        couts: Final carry-outs, one per pair.
        stalled: Per-pair detector decision (True = recovery taken).
        spec_errors: Per-pair "speculative sum was actually wrong"
            (a subset of ``stalled``; the detector is conservative).
        latencies: Per-pair latency in cycles (1 or 1 + recovery).
        cycles: Total cycles the batch occupied the accelerator.
    """

    sums: List[int]
    couts: List[int]
    stalled: List[bool]
    spec_errors: List[bool]
    latencies: List[int]
    cycles: int

    @property
    def size(self) -> int:
        return len(self.sums)

    @property
    def stall_count(self) -> int:
        return sum(self.stalled)

    @property
    def spec_error_count(self) -> int:
        return sum(self.spec_errors)


@dataclass
class BatchArrays:
    """Array-native batch result (the cluster's wire format).

    Same values as :class:`BatchOutcome`, kept as numpy arrays so a
    worker process can ship them over a pipe as buffer copies instead
    of a million pickled Python ints.  ``to_outcome`` materialises the
    list form (bit-identical to :meth:`VlsaBatchExecutor.execute`).
    """

    sums: np.ndarray       # uint64
    couts: np.ndarray      # uint64 (0/1)
    stalled: np.ndarray    # bool
    spec_errors: np.ndarray  # bool
    cycles: int
    recovery_cycles: int

    @property
    def size(self) -> int:
        return int(self.sums.shape[0])

    @property
    def stall_count(self) -> int:
        return int(self.stalled.sum())

    def latencies(self) -> np.ndarray:
        return np.where(self.stalled, 1 + self.recovery_cycles, 1)

    def to_outcome(self) -> BatchOutcome:
        return BatchOutcome(
            sums=self.sums.tolist(),
            couts=self.couts.tolist(),
            stalled=self.stalled.tolist(),
            spec_errors=self.spec_errors.tolist(),
            latencies=self.latencies().tolist(),
            cycles=self.cycles,
        )


def _window_all_ones_np(word: np.ndarray, window: int) -> np.ndarray:
    """Vectorised :func:`repro.mc.fastsim.window_all_ones` on uint64."""
    certified = 1
    out = word.copy()
    while certified < window:
        step = min(certified, window - certified)
        out &= out >> np.uint64(step)
        certified += step
    return out


class VlsaBatchExecutor:
    """Evaluates coalesced operand batches with VLSA latency semantics.

    Args:
        width: Operand bitwidth.
        window: The family's primary parameter (for ACA, the
            speculation window; default: the family's own choice).
        recovery_cycles: Cycles added when the detector fires.
        backend: ``"numpy"``, ``"bigint"``, or ``None`` for automatic
            (numpy when the width fits a machine word).
        ctx: Optional run context; batches bump its ``service_ops`` /
            ``service_stalls`` counters and the ``service_execute``
            phase timer.
        family: Registered adder family (default the paper's ``"aca"``,
            which keeps the hand-tuned inline kernel; other families
            run their own vectorised numpy kernels).
    """

    def __init__(self, width: int, window: Optional[int] = None,
                 recovery_cycles: int = 1, backend: Optional[str] = None,
                 ctx: Optional[RunContext] = None, family: str = "aca"):
        if width <= 0:
            raise ValueError("width must be positive")
        if recovery_cycles < 1:
            raise ValueError("recovery needs at least one extra cycle")
        fam = get_family(family)
        params = fam.resolve_params(width, window=window)
        window = fam.primary_value(width, params)
        if backend is None:
            backend = "numpy" if width <= 64 else "bigint"
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(f"unknown executor backend {backend!r}; "
                             f"expected one of {EXECUTOR_BACKENDS}")
        if backend == "numpy" and width > 64:
            raise ValueError("numpy executor supports widths up to 64 bits"
                             " — use the bigint fallback")
        self.width = width
        self.window = window
        self.family = family
        self.recovery_cycles = recovery_cycles
        self.backend = backend
        self.ctx = ctx
        # Functional reference model (shared with VlsaMachine).
        self.model = functional_model(family, width=width, window=window)
        # The ACA keeps its original inline uint64 kernel below; every
        # other family brings its own vectorised kernel via the registry.
        self._kernel = None
        if family != "aca" and backend == "numpy":
            self._kernel = fam.numpy_kernel(width, **params)
            if self._kernel is None:
                raise ValueError(
                    f"family {family!r} has no numpy kernel at width "
                    f"{width} — use the bigint backend")

    # ------------------------------------------------------------------
    def execute(self, pairs: Sequence[Tuple[int, int]]) -> BatchOutcome:
        """Evaluate every ``(a, b)`` pair in *pairs* as one batch."""
        if self.ctx is not None:
            with self.ctx.phase("service_execute"):
                outcome = self._dispatch(pairs)
            self.ctx.add("service_ops", outcome.size)
            self.ctx.add("service_stalls", outcome.stall_count)
            self.ctx.add("service_batches")
            return outcome
        return self._dispatch(pairs)

    def _dispatch(self, pairs: Sequence[Tuple[int, int]]) -> BatchOutcome:
        if not pairs:
            return BatchOutcome([], [], [], [], [], 0)
        if self.backend == "numpy":
            return self._execute_numpy(pairs)
        return self._execute_bigint(pairs)

    # -- numpy fast path ------------------------------------------------
    def coerce_pairs_array(self, pairs: Sequence[Tuple[int, int]]
                           ) -> np.ndarray:
        """``(n, 2)`` uint64 operand array, masking malformed operands."""
        if isinstance(pairs, np.ndarray) and pairs.dtype == np.uint64:
            return pairs
        int_mask = (1 << self.width) - 1
        try:
            return np.asarray(pairs, dtype=np.uint64)
        except (OverflowError, ValueError, TypeError):
            # Out-of-range operands (negative, or >= 2^64) cannot be
            # converted directly; mask them in Python first so one
            # malformed pair never raises out of the batch.
            return np.array([[pa & int_mask, pb & int_mask]
                             for pa, pb in pairs], dtype=np.uint64)

    def execute_arrays(self, arr: np.ndarray) -> BatchArrays:
        """Array-in/array-out numpy kernel (cluster worker hot path).

        *arr* is the ``(n, 2)`` uint64 array from
        :meth:`coerce_pairs_array`.  Only valid on the numpy backend.
        """
        if self.backend != "numpy":
            raise ValueError("execute_arrays requires the numpy backend")
        if self._kernel is not None:
            batch = self._kernel(arr[:, 0], arr[:, 1])
            flags = np.asarray(batch.flags, dtype=bool)
            spec_err = np.asarray(batch.spec_errors, dtype=bool)
            stall_count = int(flags.sum())
            return BatchArrays(
                sums=np.asarray(batch.exact_sums, dtype=np.uint64),
                couts=np.asarray(batch.exact_couts, dtype=np.uint64),
                stalled=flags, spec_errors=spec_err,
                cycles=arr.shape[0] + self.recovery_cycles * stall_count,
                recovery_cycles=self.recovery_cycles)
        width, window = self.width, self.window
        int_mask = (1 << width) - 1
        mask = np.uint64(int_mask if width < 64 else 0xFFFFFFFFFFFFFFFF)
        a = arr[:, 0] & mask
        b = arr[:, 1] & mask
        s = (a + b) & mask  # uint64 wraparound == mod 2^64 at width 64
        if width < 64:
            couts = ((a + b) >> np.uint64(width)).astype(np.uint64)
        else:
            couts = (s < a).astype(np.uint64)  # wrapped iff sum < operand
        p = a ^ b
        if window >= width:
            # The bit-0-anchored window spans the whole word, so the
            # speculative sum is exact — but the reference detector
            # (fastsim.detector_flag, used by the bigint backend and
            # VlsaMachine) still fires on an all-propagate word.
            flags = p == mask
            spec_err = np.zeros(len(a), dtype=bool)
        else:
            starts = _window_all_ones_np(p, window)
            flags = starts != 0
            # Speculation is actually wrong iff an all-propagate window
            # (not anchored at bit 0) receives a carry: carry into bit i
            # is bit i of (a + b) ^ a ^ b, which depends only on lower
            # bits, so the wrapped uint64 sum is exact for it.
            carries = s ^ p
            spec_err = (starts & carries & ~np.uint64(1)) != 0
        stall_count = int(flags.sum())
        cycles = len(a) + self.recovery_cycles * stall_count
        return BatchArrays(sums=s, couts=couts, stalled=flags,
                           spec_errors=spec_err, cycles=cycles,
                           recovery_cycles=self.recovery_cycles)

    def _execute_numpy(self, pairs: Sequence[Tuple[int, int]]
                       ) -> BatchOutcome:
        return self.execute_arrays(self.coerce_pairs_array(pairs)
                                   ).to_outcome()

    # -- bigint fallback ------------------------------------------------
    def _execute_bigint(self, pairs: Sequence[Tuple[int, int]]
                        ) -> BatchOutcome:
        model = self.model
        sums: List[int] = []
        couts: List[int] = []
        stalled: List[bool] = []
        spec_errors: List[bool] = []
        latencies: List[int] = []
        cycles = 0
        for a, b in pairs:
            flagged = model.flags_error(a, b)
            exact_sum, exact_cout = model.exact(a, b)
            spec_wrong = flagged and not model.is_correct(a, b)
            latency = 1 + (self.recovery_cycles if flagged else 0)
            sums.append(exact_sum)
            couts.append(exact_cout)
            stalled.append(flagged)
            spec_errors.append(spec_wrong)
            latencies.append(latency)
            cycles += latency
        return BatchOutcome(sums, couts, stalled, spec_errors,
                            latencies, cycles)
