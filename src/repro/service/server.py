"""TCP front-end: newline-delimited JSON over asyncio streams.

A thin network face for :class:`~repro.service.VlsaService`, stdlib
only.  One JSON object per line in, one per line out:

* ``{"a": 123, "b": 456}`` (optional ``"id"``, echoed back) →
  ``{"id": ..., "sum": 579, "cout": 0, "stalled": false,
  "latency_cycles": 1, "accept_cycle": 17}``
* ``{"pairs": [[1, 2], [3, 4]]}`` → ``{"id": ..., "sums": [...],
  "couts": [...], "stalled": [...], "latencies": [...],
  "accept_cycle": 17}`` — one admitted batch, one shard, one reply;
  this is the verb external load generators use to drive the cluster's
  coalesced wire path at full depth.
* ``{"cmd": "metrics"}`` → ``{"metrics": {...}}`` (registry snapshot)
* ``{"cmd": "prometheus"}`` → ``{"prometheus": "..."}`` (text format)
* ``{"cmd": "info"}`` → service configuration
* malformed input / overload / timeout → ``{"id": ..., "error": "..."}``
  with a machine-readable ``code``.

Requests on one connection are answered in order; the service's
admission control applies per request, so an overloaded server degrades
by rejecting (with ``code: "overloaded"``) rather than by buffering
without bound.

When `uvloop <https://github.com/MagicStack/uvloop>`_ is installed,
:func:`install_uvloop` swaps in its event-loop policy — the CLI calls
it before serving; everything here is stdlib-only and runs identically
on the default loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from .service import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
    VlsaService,
)

__all__ = ["VlsaServer", "serve_tcp", "install_uvloop"]


def install_uvloop() -> bool:
    """Adopt uvloop's event-loop policy when available.

    Returns True when uvloop is now the policy.  Missing uvloop is not
    an error — the container may simply not ship it — so callers can
    unconditionally invoke this before ``asyncio.run``.
    """
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


class VlsaServer:
    """Serves a :class:`VlsaService` over TCP as JSON lines.

    Any object with the service's submission surface works — in
    particular a :class:`~repro.cluster.ClusterRouter`, which makes
    this the cluster's network front end too.

    Args:
        service: The (started or not-yet-started) service to expose.
        host, port: Bind address (``port=0`` picks a free port).
        request_timeout: Per-request deadline passed to ``submit``.
    """

    def __init__(self, service: VlsaService, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: Optional[float] = 30.0):
        self.service = service
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self._server: "Optional[asyncio.AbstractServer]" = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` once started."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "VlsaServer":
        """Start the service (if needed) and begin listening."""
        await self.service.start()
        wait_ready = getattr(self.service, "wait_ready", None)
        if wait_ready is not None:  # cluster fronts wait for the pool
            await wait_ready()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self.address[1]
        self.service.tracer.emit("server_listening", host=self.host,
                                 port=self.port)
        return self

    async def stop(self) -> None:
        """Stop listening, then stop the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "VlsaServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        """Block until the listening socket is closed."""
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.service.registry.counter(
            "connections_total", "TCP connections accepted").inc()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._handle_line(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        try:
            msg = json.loads(line)
            if not isinstance(msg, dict):
                raise ValueError("expected a JSON object")
        except ValueError as exc:
            return {"error": str(exc), "code": "bad_request"}
        req_id = msg.get("id")

        cmd = msg.get("cmd")
        if cmd == "metrics":
            return {"id": req_id, "metrics": self.service.metrics_json()}
        if cmd == "prometheus":
            return {"id": req_id,
                    "prometheus": self.service.metrics_prometheus()}
        if cmd == "info":
            info = dict(self.service.describe())
            info["id"] = req_id
            return info
        if cmd is not None:
            return {"id": req_id, "error": f"unknown cmd {cmd!r}",
                    "code": "bad_request"}

        if "pairs" in msg:
            return await self._handle_batch(req_id, msg["pairs"])

        if "a" not in msg or "b" not in msg:
            return {"id": req_id, "error": "need operands 'a' and 'b'",
                    "code": "bad_request"}
        try:
            a, b = int(msg["a"]), int(msg["b"])
        except (TypeError, ValueError):
            return {"id": req_id, "error": "operands must be integers",
                    "code": "bad_request"}
        try:
            resp = await self.service.submit(
                a, b, timeout=self.request_timeout)
        except ServiceOverloadedError as exc:
            return {"id": req_id, "error": str(exc), "code": "overloaded"}
        except RequestTimeoutError as exc:
            return {"id": req_id, "error": str(exc), "code": "timeout"}
        except ServiceClosedError as exc:
            return {"id": req_id, "error": str(exc), "code": "closed"}
        return {"id": req_id, "sum": resp.sum_out, "cout": resp.cout,
                "stalled": resp.stalled,
                "latency_cycles": resp.latency_cycles,
                "accept_cycle": resp.accept_cycle}

    async def _handle_batch(self, req_id, pairs) -> dict:
        try:
            coerced = [(int(a), int(b)) for a, b in pairs]
        except (TypeError, ValueError):
            return {"id": req_id, "code": "bad_request",
                    "error": "pairs must be [[a, b], ...] of integers"}
        try:
            resp = await self.service.submit_batch(
                coerced, timeout=self.request_timeout)
        except ServiceOverloadedError as exc:
            return {"id": req_id, "error": str(exc), "code": "overloaded"}
        except RequestTimeoutError as exc:
            return {"id": req_id, "error": str(exc), "code": "timeout"}
        except ServiceClosedError as exc:
            return {"id": req_id, "error": str(exc), "code": "closed"}
        return {"id": req_id, "sums": list(resp.sums),
                "couts": list(resp.couts),
                "stalled": [bool(f) for f in resp.stalled],
                "latencies": list(resp.latencies),
                "accept_cycle": resp.accept_cycle}


async def serve_tcp(service: VlsaService, host: str = "127.0.0.1",
                    port: int = 0,
                    duration: Optional[float] = None) -> VlsaServer:
    """Run a :class:`VlsaServer` until *duration* elapses (or forever).

    Returns:
        The stopped server (metrics remain inspectable).
    """
    server = VlsaServer(service, host=host, port=port)
    async with server:
        if duration is None:
            await server.serve_forever()
        else:
            await asyncio.sleep(duration)
    return server
