"""Metrics registry for the serving layer: counters, gauges, histograms.

The service layer needs the observability primitives every production
serving stack grows: monotonically increasing **counters** (operations,
stalls, rejections), point-in-time **gauges** with high-water marks
(queue depth, in-flight batch size) and **histograms** with quantile
estimates (request latency, batch size).  Everything is plain Python —
no external client library — and exports in two formats:

* :meth:`MetricsRegistry.to_json` — a nested dict for manifests and
  ``results/`` artifacts;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format, so a scraper pointed at the TCP front-end's ``metrics``
  command sees standard ``# TYPE``/``# HELP`` output.

Histograms keep exact count/sum/min/max plus a bounded reservoir
(Vitter's algorithm R with a *seeded* RNG, so quantiles are reproducible
run-to-run) from which p50/p95/p99 are computed.  Recording one sample
is O(1); bulk recording (``record(value, count=N)``) is bounded by the
reservoir size, not N — memory and per-call work stay bounded
regardless of how many samples a load test pushes.

Every instrument additionally supports **merging**, the primitive the
multi-process cluster is built on: a worker ships
:meth:`MetricsRegistry.state` (a picklable dict, including histogram
reservoirs) over its pipe, and the router folds any number of such
snapshots into one cluster-wide registry with
:meth:`MetricsRegistry.merge_snapshot`.  Counters add; gauges add their
current values and keep the max of the per-source peaks; histograms
combine exactly for count/sum/min/max and merge their reservoirs by
weighted subsampling (each element stands for ``count / len(reservoir)``
of its source population), so merged quantiles stay unbiased.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _fmt(value: float) -> str:
    """Prometheus-friendly number formatting (ints stay ints)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing counter.

    Args:
        name: Metric name (``snake_case``, no unit suffix enforcement).
        help: One-line description for the Prometheus exposition.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_json(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def sample_lines(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def state(self) -> Dict[str, Any]:
        """Full picklable state for :meth:`merge_state` on another side."""
        return {"value": self.value}

    def merge(self, other: "Counter") -> None:
        """Fold *other* into this counter (disjoint sources add)."""
        self.merge_state(other.state())

    def merge_state(self, state: Dict[str, Any]) -> None:
        value = state["value"]
        if value < 0:
            raise ValueError("counters only go up")
        self.value += value


class Gauge:
    """A point-in-time value that also tracks its high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0
        self.peak: float = 0

    def set(self, value: float) -> None:
        """Set the gauge (the peak is updated automatically)."""
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_json(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value, "peak": self.peak}

    def sample_lines(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}",
                f"{self.name}_peak {_fmt(self.peak)}"]

    def state(self) -> Dict[str, Any]:
        return {"value": self.value, "peak": self.peak}

    def merge(self, other: "Gauge") -> None:
        """Fold *other* in: values add (disjoint sources), peaks max.

        A cluster-wide simultaneous peak cannot be reconstructed from
        per-source snapshots, so the merged peak is the largest
        per-source high-water mark (a lower bound on the true combined
        peak, still useful for "did any worker ever see N").
        """
        self.merge_state(other.state())

    def merge_state(self, state: Dict[str, Any]) -> None:
        self.value += state["value"]
        self.peak = max(self.peak, state["peak"], self.value)


class Histogram:
    """Streaming histogram with bounded memory and seeded quantiles.

    Keeps exact ``count``/``sum``/``min``/``max`` and a reservoir of at
    most *reservoir_size* samples maintained by Vitter's algorithm R.
    The reservoir RNG is seeded per histogram, so two runs that record
    the same sample stream report identical quantiles.

    :meth:`record` accepts a ``count`` so integer-valued distributions
    (e.g. latency in cycles, which is almost always exactly 1) can be
    recorded in bulk without a million calls.
    """

    kind = "histogram"

    #: Default quantiles reported by :meth:`to_json`/:meth:`sample_lines`.
    QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

    def __init__(self, name: str, help: str = "",
                 reservoir_size: int = 8192, seed: int = 0):
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        self._capacity = reservoir_size
        self._rng = random.Random(seed)

    def record(self, value: float, count: int = 1) -> None:
        """Record *value* occurring *count* times.

        The bulk path is O(reservoir size), not O(count): all *count*
        samples are equal, so only which slots end up overwritten
        matters.  Under algorithm R a block of ``count`` equal samples
        arriving after ``n`` others leaves each slot untouched with
        probability ``n / (n + count)``; we draw that per slot.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        value = float(value)
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if count == 1:
            self.count += 1
            if len(self._reservoir) < self._capacity:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._capacity:
                    self._reservoir[slot] = value
            return
        fill = min(count, self._capacity - len(self._reservoir))
        if fill:
            self._reservoir.extend([value] * fill)
        self.count += count
        remaining = count - fill
        if remaining <= 0 or not self._reservoir:
            return
        p_replace = remaining / self.count
        for slot in range(len(self._reservoir)):
            if self._rng.random() < p_replace:
                self._reservoir[slot] = value

    def record_many(self, values: Sequence[float]) -> None:
        """Record every element of *values*."""
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (nearest-rank over the reservoir)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in self.QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    def sample_lines(self) -> List[str]:
        lines = [f"{self.name}_count {_fmt(self.count)}",
                 f"{self.name}_sum {_fmt(self.sum)}"]
        for q in self.QUANTILES:
            lines.append(
                f'{self.name}{{quantile="{q}"}} {_fmt(self.quantile(q))}')
        return lines

    def state(self) -> Dict[str, Any]:
        """Picklable state, reservoir included, for cross-process merge."""
        return {"count": self.count, "sum": self.sum, "min": self.min,
                "max": self.max, "reservoir": list(self._reservoir)}

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s samples into this histogram.

        count/sum/min/max combine exactly.  The merged reservoir is a
        weighted subsample of the union: each retained element of a
        source reservoir represents ``count / len(reservoir)`` samples
        of that source's population, so elements are kept with
        probability proportional to that weight (Efraimidis–Spirakis
        keys drawn from this histogram's seeded RNG — merging the same
        snapshots in the same order is deterministic).
        """
        self.merge_state(other.state())

    def merge_state(self, state: Dict[str, Any]) -> None:
        o_count = state["count"]
        if o_count == 0:
            return
        o_res = list(state["reservoir"])
        items: List[Tuple[float, float]] = []  # (weight, value)
        if self.count and self._reservoir:
            w_self = self.count / len(self._reservoir)
            items.extend((w_self, v) for v in self._reservoir)
        if o_res:
            w_other = o_count / len(o_res)
            items.extend((w_other, v) for v in o_res)
        self.count += o_count
        self.sum += state["sum"]
        for bound, pick in (("min", min), ("max", max)):
            theirs = state[bound]
            ours = getattr(self, bound)
            if theirs is not None:
                setattr(self, bound,
                        theirs if ours is None else pick(ours, theirs))
        if len(items) > self._capacity:
            # Weighted reservoir subsample: key = u^(1/w), keep top-k.
            keyed = sorted(
                ((self._rng.random() ** (1.0 / w), v) for w, v in items),
                reverse=True)[:self._capacity]
            self._reservoir = [v for _, v in keyed]
        else:
            self._reservoir = [v for _, v in items]


class MetricsRegistry:
    """A named collection of metrics with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when one with that name is already registered (mismatched kinds
    raise), so independent components can share the registry without
    coordination.  Thread-safe registration; instrument updates are
    single-threaded by design (the service owns one event loop).
    """

    def __init__(self, namespace: str = "vlsa"):
        self.namespace = namespace
        self._metrics: "Dict[str, Any]" = {}
        self._lock = threading.Lock()

    def _get_or_make(self, cls, name: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_make(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_make(Gauge, name, help=help)

    def histogram(self, name: str, help: str = "",
                  reservoir_size: int = 8192, seed: int = 0) -> Histogram:
        """Get or create the histogram *name*."""
        return self._get_or_make(Histogram, name, help=help,
                                 reservoir_size=reservoir_size, seed=seed)

    def get(self, name: str):
        """The registered metric, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- cross-process merge --------------------------------------------
    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def state(self) -> Dict[str, Any]:
        """Full picklable snapshot of every instrument (for the wire).

        Unlike :meth:`to_json` this includes histogram reservoirs, so a
        registry on the other side of a pipe can merge it losslessly
        with :meth:`merge_snapshot`.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: {"kind": m.kind, "help": m.help,
                         "state": m.state()} for m in metrics}

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold one :meth:`state` snapshot into this registry.

        Instruments missing here are created (same kind and help);
        existing ones must match kinds or a :class:`TypeError` is
        raised.  Merging N disjoint worker snapshots yields cluster
        totals: counters add, gauges add values, histograms combine
        exactly in count/sum/min/max and statistically in quantiles.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            cls = self._KINDS[entry["kind"]]
            if cls is Histogram:
                metric = self.histogram(name, help=entry["help"])
            elif cls is Gauge:
                metric = self.gauge(name, help=entry["help"])
            else:
                metric = self.counter(name, help=entry["help"])
            metric.merge_state(entry["state"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of *other* into this registry."""
        self.merge_snapshot(other.state())

    # -- export ---------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """``{metric_name: snapshot}`` for manifests and results files."""
        return {name: self._metrics[name].to_json()
                for name in sorted(self._metrics)}

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            full = f"{self.namespace}_{name}"
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            kind = "summary" if metric.kind == "histogram" else metric.kind
            lines.append(f"# TYPE {full} {kind}")
            for sample in metric.sample_lines():
                lines.append(f"{self.namespace}_{sample}")
        return "\n".join(lines) + "\n"
