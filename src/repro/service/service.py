"""`VlsaService` — the VLSA as a shared, asynchronously served accelerator.

The paper's variable-latency datapath has exactly the shape of a
latency-SLO serving problem: almost every request completes in one fast
cycle, a rare detector fire costs recovery cycles, and the *average*
service time is what wins.  This module turns the reproduction into that
service:

* **Bounded admission queue.**  ``queue_capacity`` requests may wait at
  once; a full queue **rejects** immediately (`ServiceOverloadedError`),
  so memory stays bounded under any offered load and the caller — not
  the service — decides whether to retry.  Rejections, timeouts and
  cancellations are all counted in the metrics registry; nothing is
  dropped silently.
* **Dynamic micro-batcher.**  A single consumer task drains whatever is
  queued (up to ``max_batch_ops`` additions) and evaluates it as one
  coalesced batch on the :class:`~repro.service.executor.VlsaBatchExecutor`
  (numpy kernel for throughput, bigint fallback for arbitrary widths).
  Under light load batches are small and latency is minimal; under heavy
  load batches grow toward the cap and throughput dominates — no tuning
  knob needs turning.
* **Variable-latency accounting.**  A virtual cycle clock models the
  accelerator serially, reusing the
  :class:`~repro.arch.vlsa_machine.VlsaMachine` semantics: each addition
  is accepted at the current cycle and costs 1 cycle, plus
  ``recovery_cycles`` when the error detector fires.  Per-request
  responses carry ``accept_cycle`` and ``latency_cycles``; the mean over
  a uniform stream reproduces the paper's ~1.0002.
* **Timeout / retry / cancellation.**  `submit(..., timeout=)` resolves
  to `RequestTimeoutError` if the response is not ready in time;
  `submit(..., retries=N)` retries admission after overload with
  exponential backoff; cancelling the awaiting task abandons the
  request, and the batcher skips abandoned work without double-answering
  anything (property-tested under random cancellation).
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..analysis.error_model import expected_latency_cycles
from ..engine.context import RunContext
from ..families import get_family
from .executor import VlsaBatchExecutor
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "RequestTimeoutError",
    "AddResponse",
    "BatchResponse",
    "VlsaService",
]


class ServiceError(Exception):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServiceError):
    """The service is not running (never started, or already stopped)."""


class ServiceOverloadedError(ServiceError):
    """Admission queue full — request rejected for backpressure."""


class RequestTimeoutError(ServiceError):
    """The caller's deadline expired before the response was ready."""


@dataclass
class AddResponse:
    """Outcome of one addition served by the VLSA.

    Mirrors :class:`~repro.arch.vlsa_machine.VlsaOpResult`: the sum is
    always correct; the *latency* is what varies.
    """

    a: int
    b: int
    sum_out: int
    cout: int
    stalled: bool
    latency_cycles: int
    accept_cycle: int


@dataclass
class BatchResponse:
    """Outcome of a client-side batch submitted as one request.

    Per-addition results stay as parallel lists (a million-op load test
    should not allocate a million dataclasses); aggregate accounting is
    precomputed.
    """

    sums: List[int]
    couts: List[int]
    stalled: List[bool]
    latencies: List[int]
    accept_cycle: int
    cycles: int = 0
    stall_count: int = 0

    @property
    def size(self) -> int:
        return len(self.sums)


@dataclass
class _Pending:
    """One admitted queue entry (a scalar add or a client batch)."""

    pairs: Sequence[Tuple[int, int]]
    future: "asyncio.Future"
    scalar: bool
    enqueued_at: float = 0.0
    id: int = 0

    @property
    def ops(self) -> int:
        return len(self.pairs)


_SHUTDOWN = object()


class VlsaService:
    """Async batched serving front-end over the speculative adder.

    Args:
        width: Operand bitwidth.
        window: The family's primary parameter (for ACA, the
            speculation window; default: the family's own choice).
        family: Registered adder family to serve (default ``"aca"``).
        recovery_cycles: Extra cycles when the detector fires.
        queue_capacity: Max requests waiting for the batcher (Q); further
            submissions are rejected with :class:`ServiceOverloadedError`.
        max_batch_ops: Max additions coalesced into one executor batch.
        backend: Executor backend (``"numpy"``/``"bigint"``/``None`` =
            automatic).
        ctx: Optional run context (counters, phase timers, trace events).
        registry: Metrics registry to record into (default: a fresh one).

    Use as an async context manager, or call :meth:`start`/:meth:`stop`::

        async with VlsaService(width=64) as svc:
            resp = await svc.submit(123, 456)
    """

    def __init__(self, width: int = 64, window: Optional[int] = None,
                 recovery_cycles: int = 1, queue_capacity: int = 1024,
                 max_batch_ops: int = 4096, backend: Optional[str] = None,
                 ctx: Optional[RunContext] = None,
                 registry: Optional[MetricsRegistry] = None,
                 family: str = "aca"):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if max_batch_ops < 1:
            raise ValueError("max_batch_ops must be at least 1")
        self.executor = VlsaBatchExecutor(width, window=window,
                                          recovery_cycles=recovery_cycles,
                                          backend=backend, ctx=ctx,
                                          family=family)
        self.width = self.executor.width
        self.window = self.executor.window
        self.family = family
        self.recovery_cycles = recovery_cycles
        self.queue_capacity = queue_capacity
        self.max_batch_ops = max_batch_ops
        self._operand_mask = (1 << self.width) - 1
        self.ctx = ctx
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(ctx=ctx)
        self._queue: "Optional[asyncio.Queue]" = None
        self._batcher: "Optional[asyncio.Task]" = None
        self._cycle = 0
        self._ids = itertools.count()
        self._batch_observers: List = []
        self._make_metrics()

    def _make_metrics(self) -> None:
        reg = self.registry
        self.m_ops = reg.counter(
            "ops_total", "additions served to completion")
        self.m_requests = reg.counter(
            "requests_total", "requests admitted to the queue")
        self.m_stalls = reg.counter(
            "stalls_total", "additions that took the recovery path")
        self.m_spec_errors = reg.counter(
            "speculative_errors_total",
            "additions whose speculative sum was actually wrong")
        self.m_batches = reg.counter(
            "batches_total", "coalesced executor batches run")
        self.m_rejected = reg.counter(
            "rejected_total", "submissions refused because the queue was full")
        self.m_timeouts = reg.counter(
            "timeouts_total", "requests abandoned by caller deadline")
        self.m_cancelled = reg.counter(
            "cancelled_total", "requests abandoned by caller cancellation")
        self.m_retries = reg.counter(
            "retries_total", "admission retries after overload")
        self.m_batch_failures = reg.counter(
            "batch_failures_total",
            "executor batches that raised (their requests see the error)")
        self.m_reconfigs = reg.counter(
            "reconfigurations_total",
            "live configuration swaps applied between micro-batches")
        self.m_observer_errors = reg.counter(
            "batch_observer_errors_total",
            "batch observers that raised (contained, batch unaffected)")
        self.m_queue_depth = reg.gauge(
            "queue_depth", "requests waiting for the batcher")
        self.m_inflight = reg.gauge(
            "inflight_requests", "requests admitted but not yet resolved")
        self.m_cycles = reg.gauge(
            "accelerator_cycles", "virtual cycles consumed by the datapath")
        self.h_batch = reg.histogram(
            "batch_size_ops", "additions per coalesced batch")
        self.h_latency = reg.histogram(
            "latency_cycles", "per-addition latency in cycles")
        self.h_wall = reg.histogram(
            "request_wall_seconds", "request wall time, admission to response")

    # -- analytic model -------------------------------------------------
    @property
    def analytic_stall_probability(self) -> float:
        """P(detector fires) for uniform operands at this configuration.

        Routed through the family's exact error model so non-ACA
        families report their own flag rate (the memoized Fraction DP),
        not the ACA run-length formula.
        """
        fam = get_family(self.family)
        params = fam.resolve_params(self.width, window=self.window)
        return float(fam.error_model(self.width, **params).flag_rate)

    @property
    def analytic_latency_cycles(self) -> float:
        """Expected per-addition latency: ``1 + P(stall) * recovery``."""
        return expected_latency_cycles(self.analytic_stall_probability,
                                       self.recovery_cycles)

    @property
    def cycle(self) -> int:
        """Current virtual accelerator cycle."""
        return self._cycle

    @property
    def running(self) -> bool:
        return self._batcher is not None and not self._batcher.done()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for the batcher."""
        return self._queue.qsize() if self._queue is not None else 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "VlsaService":
        """Start the micro-batcher task (idempotent)."""
        if self.running:
            return self
        self._queue = asyncio.Queue(maxsize=self.queue_capacity)
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="vlsa-service-batcher")
        self.tracer.emit("service_start", width=self.width,
                         window=self.window,
                         backend=self.executor.backend,
                         queue_capacity=self.queue_capacity,
                         max_batch_ops=self.max_batch_ops)
        return self

    async def stop(self) -> None:
        """Drain already-admitted work, then stop the batcher."""
        if self._queue is None or self._batcher is None:
            return
        queue, batcher = self._queue, self._batcher
        # put_nowait + retry rather than an unconditional blocking put:
        # if the batcher ever died (e.g. cancelled externally) a full
        # queue would leave `await queue.put(...)` waiting forever.
        while not batcher.done():
            try:
                queue.put_nowait(_SHUTDOWN)
                break
            except asyncio.QueueFull:
                await asyncio.sleep(0)  # let the batcher drain a batch
        await asyncio.wait({batcher})
        self._batcher = None
        self._queue = None
        # Anything admitted after shutdown was signalled is failed
        # explicitly — its submitter sees ServiceClosedError, not a hang.
        while True:
            try:
                leftover = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if leftover is _SHUTDOWN or leftover.future.done():
                continue
            leftover.future.set_exception(
                ServiceClosedError("service stopped"))
        self.tracer.emit("service_stop", cycles=self._cycle,
                         ops=self.m_ops.value)

    async def __aenter__(self) -> "VlsaService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- submission -----------------------------------------------------
    def _admit(self, pairs: Sequence[Tuple[int, int]],
               scalar: bool) -> _Pending:
        if self._queue is None:
            raise ServiceClosedError("service is not running; use "
                                     "'async with VlsaService(...)'")
        loop = asyncio.get_running_loop()
        pending = _Pending(pairs=pairs, future=loop.create_future(),
                           scalar=scalar, enqueued_at=loop.time(),
                           id=next(self._ids))
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.m_rejected.inc()
            self.tracer.emit("request_rejected", id=pending.id,
                             ops=pending.ops, depth=self._queue.qsize())
            raise ServiceOverloadedError(
                f"admission queue full ({self.queue_capacity} waiting)"
            ) from None
        self.m_requests.inc()
        self.m_queue_depth.set(self._queue.qsize())
        self.m_inflight.inc()
        return pending

    async def _await_response(self, pending: _Pending,
                              timeout: Optional[float]):
        try:
            if timeout is None:
                return await pending.future
            return await asyncio.wait_for(
                asyncio.shield(pending.future), timeout)
        except asyncio.TimeoutError:
            self.m_timeouts.inc()
            self.tracer.emit("request_timeout", id=pending.id)
            pending.future.cancel()
            raise RequestTimeoutError(
                f"no response within {timeout}s") from None
        except asyncio.CancelledError:
            # Awaiting directly (no timeout) cancels the future itself;
            # the shielded path leaves it pending — handle both.
            if pending.future.cancelled() or not pending.future.done():
                pending.future.cancel()
                self.m_cancelled.inc()
                self.tracer.emit("request_cancelled", id=pending.id)
            raise
        finally:
            self.m_inflight.dec()

    async def submit(self, a: int, b: int, timeout: Optional[float] = None,
                     retries: int = 0,
                     retry_backoff: float = 0.005) -> AddResponse:
        """Serve one addition.

        Args:
            a, b: Operands (masked to the service width).
            timeout: Optional response deadline in seconds.
            retries: Admission retries after overload rejection.
            retry_backoff: Base backoff; doubles per retry.

        Raises:
            ServiceOverloadedError: Queue full and retries exhausted.
            RequestTimeoutError: Deadline expired.
            ServiceClosedError: Service not running.
        """
        a &= self._operand_mask
        b &= self._operand_mask
        for attempt in range(retries + 1):
            try:
                pending = self._admit(((a, b),), scalar=True)
                break
            except ServiceOverloadedError:
                if attempt == retries:
                    raise
                self.m_retries.inc()
                await asyncio.sleep(retry_backoff * (1 << attempt))
        return await self._await_response(pending, timeout)

    async def submit_batch(self, pairs: Sequence[Tuple[int, int]],
                           timeout: Optional[float] = None,
                           retries: int = 0,
                           retry_backoff: float = 0.005) -> BatchResponse:
        """Serve a client-side batch of additions as one queued request.

        Args / raises: as :meth:`submit`.  The whole batch is admitted,
        evaluated and resolved as a unit (it may still be coalesced with
        other pending requests into a larger executor batch).
        """
        pairs = list(pairs)
        if not pairs:
            return BatchResponse([], [], [], [], accept_cycle=self._cycle)
        for attempt in range(retries + 1):
            try:
                pending = self._admit(pairs, scalar=False)
                break
            except ServiceOverloadedError:
                if attempt == retries:
                    raise
                self.m_retries.inc()
                await asyncio.sleep(retry_backoff * (1 << attempt))
        return await self._await_response(pending, timeout)

    # -- the micro-batcher ----------------------------------------------
    async def _batch_loop(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            item = await queue.get()
            if item is _SHUTDOWN:
                return
            batch: List[_Pending] = [item]
            ops = item.ops
            shutdown = False
            # Dynamic coalescing: drain whatever else is already queued,
            # up to the op cap — small batches under light load, large
            # ones under pressure, no timer needed.
            while ops < self.max_batch_ops:
                try:
                    nxt = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(nxt)
                ops += nxt.ops
            self.m_queue_depth.set(queue.qsize())
            try:
                self._execute_batch(batch)
            except Exception as exc:
                # A poisoned batch must not kill the batcher: fail that
                # batch's futures with the error and keep serving.
                self.m_batch_failures.inc()
                self.tracer.emit("batch_failed", requests=len(batch),
                                 error=repr(exc))
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            if shutdown:
                return

    def _execute_batch(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        live = [p for p in batch if not p.future.done()]
        if not live:
            return
        pairs: List[Tuple[int, int]] = []
        for pending in live:
            pairs.extend(pending.pairs)
        outcome = self.executor.execute(pairs)

        # Serial accelerator accounting (VlsaMachine semantics): ops are
        # accepted back-to-back; each costs 1 cycle plus recovery when
        # its detector fired.
        start_cycle = self._cycle
        self._cycle += outcome.cycles
        self.m_cycles.set(self._cycle)
        self.m_ops.inc(outcome.size)
        self.m_stalls.inc(outcome.stall_count)
        self.m_spec_errors.inc(outcome.spec_error_count)
        self.m_batches.inc()
        self.h_batch.record(outcome.size)
        ones = outcome.size - outcome.stall_count
        if ones:
            self.h_latency.record(1, count=ones)
        if outcome.stall_count:
            self.h_latency.record(1 + self.recovery_cycles,
                                  count=outcome.stall_count)
        self.tracer.emit("batch_executed", requests=len(live),
                         ops=outcome.size, stalls=outcome.stall_count,
                         cycles=outcome.cycles, start_cycle=start_cycle)

        now = loop.time()
        offset = 0
        cycle = start_cycle
        for pending in live:
            n = pending.ops
            sl = slice(offset, offset + n)
            accept = cycle
            cycle += sum(outcome.latencies[sl])
            offset += n
            if pending.future.done():  # cancelled while executing
                continue
            self.h_wall.record(now - pending.enqueued_at)
            if pending.scalar:
                a, b = pending.pairs[0]
                response: object = AddResponse(
                    a=a, b=b, sum_out=outcome.sums[sl][0],
                    cout=outcome.couts[sl][0],
                    stalled=outcome.stalled[sl][0],
                    latency_cycles=outcome.latencies[sl][0],
                    accept_cycle=accept)
            else:
                response = BatchResponse(
                    sums=outcome.sums[sl], couts=outcome.couts[sl],
                    stalled=outcome.stalled[sl],
                    latencies=outcome.latencies[sl],
                    accept_cycle=accept,
                    cycles=sum(outcome.latencies[sl]),
                    stall_count=sum(outcome.stalled[sl]))
            pending.future.set_result(response)

        # Observers (e.g. the autotune controller) see every executed
        # batch; they run after futures resolve and may reconfigure the
        # service — the swap lands before the next batch by construction
        # (single batcher task, serial loop).  Observer failures are
        # contained: the batch already succeeded.
        for observer in self._batch_observers:
            try:
                observer(pairs, outcome)
            except Exception as exc:
                self.m_observer_errors.inc()
                self.tracer.emit("batch_observer_failed", error=repr(exc))

    # -- live reconfiguration -------------------------------------------
    def add_batch_observer(self, observer) -> None:
        """Register ``observer(pairs, outcome)`` called after each batch.

        Called synchronously on the batcher task, so an observer may
        call :meth:`reconfigure` and the new configuration is in place
        for the next micro-batch (atomic with respect to batching).
        """
        self._batch_observers.append(observer)

    def remove_batch_observer(self, observer) -> None:
        self._batch_observers.remove(observer)

    def reconfigure(self, window: Optional[int] = None,
                    family: Optional[str] = None,
                    max_batch_ops: Optional[int] = None) -> dict:
        """Swap the executor configuration between micro-batches.

        Bit-exactness is preserved by construction: recovery is exact at
        every window of every registered family, so sums/couts are
        bit-identical across any reconfiguration schedule — only flags
        and latency change (re-checked by the ``service:autotuned``
        verify implementation).

        ``window`` follows the constructor convention (the family's
        primary knob; ``None`` = the target family's default).  Returns
        the applied configuration.
        """
        family = family if family is not None else self.family
        backend = self.executor.backend
        if backend.startswith("cluster"):
            raise ServiceError("reconfigure the cluster via ClusterRouter")
        old = {"window": self.window, "family": self.family,
               "max_batch_ops": self.max_batch_ops}
        self.executor = VlsaBatchExecutor(
            self.width, window=window,
            recovery_cycles=self.recovery_cycles,
            backend=backend, ctx=self.ctx, family=family)
        self.window = self.executor.window
        self.family = family
        if max_batch_ops is not None:
            if max_batch_ops < 1:
                raise ValueError("max_batch_ops must be at least 1")
            self.max_batch_ops = max_batch_ops
        applied = {"window": self.window, "family": self.family,
                   "max_batch_ops": self.max_batch_ops}
        self.m_reconfigs.inc()
        self.tracer.emit("service_reconfigured", old=old, new=applied)
        return applied

    # -- reporting ------------------------------------------------------
    def metrics_json(self) -> dict:
        """Snapshot of the metrics registry as a nested dict."""
        return self.registry.to_json()

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition of the registry."""
        return self.registry.to_prometheus()

    @property
    def mean_latency_cycles(self) -> float:
        """Observed mean per-addition latency so far."""
        return self.h_latency.mean if self.h_latency.count else 0.0

    @property
    def backend_name(self) -> str:
        """Execution-backend label (clusters report ``cluster:NxB``)."""
        return self.executor.backend

    def describe(self) -> dict:
        """The ``info`` payload the TCP server hands to clients."""
        return {"width": self.width, "window": self.window,
                "family": self.family,
                "recovery_cycles": self.recovery_cycles,
                "backend": self.backend_name,
                "queue_capacity": self.queue_capacity,
                "max_batch_ops": self.max_batch_ops,
                "analytic_latency_cycles": self.analytic_latency_cycles}
