"""Structured trace events for the serving layer.

Every interesting service transition (request admitted/rejected, batch
executed, detector fired, shutdown) becomes a :class:`TraceEvent` —
a timestamped ``kind`` plus free-form fields.  The :class:`Tracer`
keeps a bounded ring of recent events for inspection and *also* forwards
each event to the run's :class:`~repro.engine.RunContext` via
:meth:`~repro.engine.RunContext.record_event`, so a ``--manifest`` run
carries the head of its own trace: the manifest alone shows what the
batcher actually did (batch sizes, stall bursts, rejections), not just
aggregate counters.

Timestamps come from an injectable clock so tests can run with a
deterministic virtual clock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from ..engine.context import RunContext

__all__ = ["TraceEvent", "Tracer"]


@dataclass
class TraceEvent:
    """One structured event on the service timeline."""

    ts: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out = {"ts": round(self.ts, 6), "kind": self.kind}
        out.update(self.fields)
        return out

    def __str__(self) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.ts:.6f}] {self.kind} {pairs}".rstrip()


class Tracer:
    """Bounded event ring, optionally mirrored into a :class:`RunContext`.

    Args:
        ctx: Run context to forward events to (``None`` = ring only).
        capacity: Events retained in the ring (oldest dropped first).
        clock: Timestamp source (default ``time.monotonic``).
    """

    def __init__(self, ctx: Optional[RunContext] = None,
                 capacity: int = 1024,
                 clock: Callable[[], float] = time.monotonic):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.ctx = ctx
        self.clock = clock
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        """Record one event; returns it for convenience."""
        event = TraceEvent(ts=self.clock(), kind=kind, fields=fields)
        self._ring.append(event)
        self.emitted += 1
        if self.ctx is not None:
            self.ctx.record_event(kind, **fields)
        return event

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int = 10) -> List[TraceEvent]:
        """The most recent *n* events."""
        return list(self._ring)[-n:]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Retained events whose kind equals *kind*."""
        return [e for e in self._ring if e.kind == kind]
