"""The single machine-readable result schema all suites share.

Before this module existed, every ``benchmarks/bench_*.py`` wrote its
own ad-hoc JSON shape, so nothing could compare run N to run N-1.  Now
every suite emits the same envelope::

    {
      "schema_version": 1,
      "suite": "service",
      "preset": "small",
      "host": { ... host_manifest() ... },
      "runner": { ... RunnerConfig ... },
      "benchmarks": [ { ... BenchmarkResult.as_dict() ... }, ... ]
    }

and :func:`validate_payload` enforces it — both in the test suite and
defensively whenever a baseline is loaded, so a hand-edited or
truncated baseline fails loudly instead of producing a nonsense
verdict.  Validation is a plain-python structural walk (no jsonschema
dependency).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from ..reporting import results_dir, save_json
from .runner import BenchmarkResult, RunnerConfig, host_manifest

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "result_path",
    "build_payload",
    "write_suite_result",
    "load_suite_result",
    "validate_payload",
]

SCHEMA_VERSION = 1

_HOST_KEYS = ("platform", "machine", "python_version", "cpu_count",
              "cpu_affinity", "clock")
_RUNNER_KEYS = ("target_time_s", "samples", "warmup", "disable_gc")
_BENCH_KEYS: Dict[str, type] = {
    "name": str,
    "suite": str,
    "tags": list,
    "params": dict,
    "ops_per_call": int,
    "inner_repeats": int,
    "warmup_calls": int,
    "samples_s_per_call": list,
    "min_s_per_call": float,
    "mean_s_per_call": float,
    "median_s_per_call": float,
    "ci95_s_per_call": list,
    "ops_per_second": float,
    "metrics": dict,
    "band_violations": list,
}


class SchemaError(ValueError):
    """A result payload does not conform to the shared schema."""


def result_path(suite: str, base_dir: Optional[str] = None) -> str:
    """Canonical path of a suite's result file."""
    return os.path.join(base_dir or results_dir(), f"BENCH_{suite}.json")


def build_payload(suite: str, preset: str, results: List[BenchmarkResult],
                  config: RunnerConfig) -> Dict[str, Any]:
    """Assemble the shared result envelope for one suite run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "preset": preset,
        "host": host_manifest(),
        "runner": config.as_dict(),
        "benchmarks": [r.as_dict(seed=config.seed + i)
                       for i, r in enumerate(results)],
    }


def write_suite_result(payload: Dict[str, Any],
                       base_dir: Optional[str] = None) -> str:
    """Validate and write a suite payload to ``BENCH_<suite>.json``."""
    validate_payload(payload)
    name = f"BENCH_{payload['suite']}.json"
    if base_dir is None:
        return save_json(name, payload)
    os.makedirs(base_dir, exist_ok=True)
    path = os.path.join(base_dir, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_suite_result(path: str) -> Dict[str, Any]:
    """Load and validate a result/baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except FileNotFoundError:
        raise
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"{path}: unreadable result file: {exc}")
    try:
        validate_payload(payload)
    except SchemaError as exc:
        raise SchemaError(f"{path}: {exc}")
    return payload


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise SchemaError(msg)


def _is_number(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate_payload(payload: Any) -> None:
    """Structurally validate a suite result envelope.

    Raises :class:`SchemaError` with a path-qualified message on the
    first violation.
    """
    _expect(isinstance(payload, dict), "payload must be an object")
    _expect(payload.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {payload.get('schema_version')!r}")
    _expect(isinstance(payload.get("suite"), str) and payload["suite"],
            "suite must be a non-empty string")
    _expect(isinstance(payload.get("preset"), str),
            "preset must be a string")

    host = payload.get("host")
    _expect(isinstance(host, dict), "host manifest missing")
    for key in _HOST_KEYS:
        _expect(key in host, f"host manifest missing {key!r}")
    _expect(isinstance(host["clock"], dict)
            and "resolution_s" in host["clock"]
            and "monotonic" in host["clock"],
            "host.clock must record resolution_s and monotonic")

    runner = payload.get("runner")
    _expect(isinstance(runner, dict), "runner config missing")
    for key in _RUNNER_KEYS:
        _expect(key in runner, f"runner config missing {key!r}")

    benches = payload.get("benchmarks")
    _expect(isinstance(benches, list) and benches,
            "benchmarks must be a non-empty list")
    seen = set()
    for i, b in enumerate(benches):
        where = f"benchmarks[{i}]"
        _expect(isinstance(b, dict), f"{where} must be an object")
        for key, kind in _BENCH_KEYS.items():
            _expect(key in b, f"{where} missing {key!r}")
            if kind is float:
                _expect(_is_number(b[key]),
                        f"{where}.{key} must be a number")
            elif kind is int:
                _expect(isinstance(b[key], int)
                        and not isinstance(b[key], bool),
                        f"{where}.{key} must be an integer")
            else:
                _expect(isinstance(b[key], kind),
                        f"{where}.{key} must be {kind.__name__}")
        _expect(b["suite"] == payload["suite"],
                f"{where}.suite {b['suite']!r} != envelope suite "
                f"{payload['suite']!r}")
        _expect(b["name"] not in seen, f"{where}: duplicate name "
                                       f"{b['name']!r}")
        seen.add(b["name"])
        samples = b["samples_s_per_call"]
        _expect(len(samples) >= 1 and all(_is_number(s) and s >= 0
                                          for s in samples),
                f"{where}.samples_s_per_call must be non-negative numbers")
        ci = b["ci95_s_per_call"]
        _expect(len(ci) == 2 and all(_is_number(c) for c in ci)
                and ci[0] <= ci[1],
                f"{where}.ci95_s_per_call must be [lo, hi] with lo <= hi")
        _expect(b["ops_per_call"] >= 1, f"{where}.ops_per_call must be >= 1")
        _expect(b["inner_repeats"] >= 1,
                f"{where}.inner_repeats must be >= 1")
        _expect(b["min_s_per_call"] <= b["median_s_per_call"]
                <= max(samples) + 1e-12,
                f"{where}: min/median/samples inconsistent")
