"""Baseline store and the regression comparator/gate.

Baselines live in ``results/baselines/BENCH_<suite>.json`` — the same
schema as fresh results, committed to the repository so every PR is
judged against a known-good trajectory point.  The comparator walks
the benchmarks both files share and classifies each one with
:func:`repro.bench.stats.classify`; benchmarks present on only one
side are reported as ``new`` / ``missing`` rather than failing, so
adding a benchmark never breaks the gate.

The gate's contract: exit non-zero iff at least one benchmark is
``regressed`` (or a paper-metric tolerance band was violated in the
current run), and always emit a markdown summary table a human can
read in a CI artifact without rerunning anything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..reporting import results_dir
from .schema import load_suite_result, result_path, write_suite_result
from .stats import (DEFAULT_ALPHA, DEFAULT_THRESHOLD, VERDICT_REGRESSED,
                    Comparison, classify)

__all__ = [
    "SuiteComparison",
    "baseline_path",
    "compare_payloads",
    "compare_suite",
    "promote_baseline",
    "render_markdown",
]

#: Verdicts for benchmarks present on only one side.
VERDICT_NEW = "new"
VERDICT_MISSING = "missing"


def baseline_path(suite: str, base_dir: Optional[str] = None) -> str:
    """Path of a suite's committed baseline file."""
    root = base_dir or os.path.join(results_dir(), "baselines")
    return os.path.join(root, f"BENCH_{suite}.json")


@dataclass
class BenchVerdict:
    """One benchmark's comparison row."""

    name: str
    verdict: str
    comparison: Optional[Comparison] = None
    band_violations: List[str] = field(default_factory=list)

    @property
    def failing(self) -> bool:
        return (self.verdict == VERDICT_REGRESSED
                or bool(self.band_violations))

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "verdict": self.verdict}
        if self.comparison is not None:
            out.update(self.comparison.as_dict())
        if self.band_violations:
            out["band_violations"] = list(self.band_violations)
        return out


@dataclass
class SuiteComparison:
    """All verdicts for one suite, plus host context for the report."""

    suite: str
    rows: List[BenchVerdict]
    baseline_host: Dict[str, Any] = field(default_factory=dict)
    current_host: Dict[str, Any] = field(default_factory=dict)
    baseline_preset: str = ""
    current_preset: str = ""

    @property
    def regressed(self) -> List[str]:
        return [r.name for r in self.rows
                if r.verdict == VERDICT_REGRESSED]

    @property
    def band_failures(self) -> List[str]:
        return [r.name for r in self.rows if r.band_violations]

    @property
    def ok(self) -> bool:
        return not any(r.failing for r in self.rows)

    @property
    def cross_host(self) -> bool:
        keys = ("platform", "machine", "cpu_count")
        return any(self.baseline_host.get(k) != self.current_host.get(k)
                   for k in keys)

    @property
    def cross_preset(self) -> bool:
        return self.baseline_preset != self.current_preset

    def as_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "ok": self.ok,
            "regressed": self.regressed,
            "band_failures": self.band_failures,
            "cross_host": self.cross_host,
            "cross_preset": self.cross_preset,
            "rows": [r.as_dict() for r in self.rows],
        }


def compare_payloads(baseline: Dict[str, Any], current: Dict[str, Any],
                     threshold: float = DEFAULT_THRESHOLD,
                     alpha: float = DEFAULT_ALPHA,
                     seed: int = 0) -> SuiteComparison:
    """Compare two schema-valid payloads of the same suite."""
    if baseline["suite"] != current["suite"]:
        raise ValueError(f"suite mismatch: baseline {baseline['suite']!r} "
                         f"vs current {current['suite']!r}")
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    cur_by_name = {b["name"]: b for b in current["benchmarks"]}

    rows: List[BenchVerdict] = []
    for name, cur in cur_by_name.items():
        violations = list(cur.get("band_violations", ()))
        base = base_by_name.get(name)
        if base is None:
            rows.append(BenchVerdict(name=name, verdict=VERDICT_NEW,
                                     band_violations=violations))
            continue
        comp = classify(base["samples_s_per_call"],
                        cur["samples_s_per_call"],
                        threshold=threshold, alpha=alpha, seed=seed)
        rows.append(BenchVerdict(name=name, verdict=comp.verdict,
                                 comparison=comp,
                                 band_violations=violations))
    for name in base_by_name:
        if name not in cur_by_name:
            rows.append(BenchVerdict(name=name, verdict=VERDICT_MISSING))
    rows.sort(key=lambda r: r.name)
    return SuiteComparison(suite=current["suite"], rows=rows,
                           baseline_host=baseline.get("host", {}),
                           current_host=current.get("host", {}),
                           baseline_preset=baseline.get("preset", ""),
                           current_preset=current.get("preset", ""))


def compare_suite(suite: str, threshold: float = DEFAULT_THRESHOLD,
                  alpha: float = DEFAULT_ALPHA,
                  results_path: Optional[str] = None,
                  baseline: Optional[str] = None,
                  seed: int = 0) -> SuiteComparison:
    """Compare a suite's current result file against its baseline."""
    current = load_suite_result(results_path or result_path(suite))
    base = load_suite_result(baseline or baseline_path(suite))
    return compare_payloads(base, current, threshold=threshold,
                            alpha=alpha, seed=seed)


def promote_baseline(suite: str, results_path: Optional[str] = None,
                     baseline_dir: Optional[str] = None) -> str:
    """Copy a suite's current (validated) result into the baseline store."""
    payload = load_suite_result(results_path or result_path(suite))
    root = baseline_dir or os.path.join(results_dir(), "baselines")
    return write_suite_result(payload, base_dir=root)


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def render_markdown(comparisons: List[SuiteComparison],
                    threshold: float = DEFAULT_THRESHOLD) -> str:
    """Markdown gate report: one table per suite plus a verdict line."""
    lines: List[str] = ["# Benchmark gate report", ""]
    any_fail = any(not c.ok for c in comparisons)
    verdict = "**FAIL**" if any_fail else "**PASS**"
    lines.append(f"Gate verdict: {verdict} "
                 f"(threshold {threshold * 100:.0f}% median shift, "
                 f"Mann-Whitney + bootstrap-CI confirmation)")
    lines.append("")
    for comp in comparisons:
        lines.append(f"## Suite `{comp.suite}`")
        lines.append("")
        if comp.cross_host:
            lines.append("> **Warning:** baseline and current run come "
                         "from different hosts — absolute shifts may "
                         "reflect hardware, not code.")
            lines.append("")
        if comp.cross_preset:
            lines.append(f"> **Warning:** preset mismatch (baseline "
                         f"`{comp.baseline_preset}` vs current "
                         f"`{comp.current_preset}`) — workload sizes "
                         f"differ, shifts are not comparable.")
            lines.append("")
        lines.append("| benchmark | verdict | baseline median | "
                     "current median | shift | p-value | bands |")
        lines.append("|---|---|---:|---:|---:|---:|---|")
        for row in comp.rows:
            c = row.comparison
            mark = {"regressed": "🔴", "improved": "🟢"}.get(
                row.verdict, "⚪" if c is not None else "➕")
            if row.verdict == VERDICT_MISSING:
                mark = "❓"
            band = ("; ".join(row.band_violations)
                    if row.band_violations else "ok")
            if c is None:
                lines.append(f"| `{row.name}` | {mark} {row.verdict} "
                             f"| — | — | — | — | {band} |")
            else:
                lines.append(
                    f"| `{row.name}` | {mark} {row.verdict} "
                    f"| {_fmt_time(c.baseline_median)} "
                    f"| {_fmt_time(c.current_median)} "
                    f"| {c.effect * 100:+.1f}% "
                    f"| {c.p_value:.4f} | {band} |")
        lines.append("")
        if comp.regressed:
            lines.append(f"Regressed: {', '.join(comp.regressed)}")
            lines.append("")
        if comp.band_failures:
            lines.append("Paper-metric band violations: "
                         f"{', '.join(comp.band_failures)}")
            lines.append("")
    return "\n".join(lines)
