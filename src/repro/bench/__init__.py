"""Unified benchmark harness with statistical regression gating.

The measurement subsystem the ROADMAP's "as fast as the hardware
allows" north-star is judged by:

* :mod:`repro.bench.spec` — declarative :class:`Benchmark` specs and
  the suite registry (engine / service / verify / cluster built in).
* :mod:`repro.bench.runner` — calibrated timing: warmup, auto-scaled
  inner repeats, GC freeze, monotonic clock, host manifest.
* :mod:`repro.bench.schema` — the single machine-readable result
  schema every suite writes (``results/BENCH_<suite>.json``).
* :mod:`repro.bench.stats` — bootstrap CIs, Mann-Whitney U, and the
  improved / unchanged / regressed verdict function.
* :mod:`repro.bench.compare` — the baseline store
  (``results/baselines/``), comparator and markdown gate report.
* :mod:`repro.bench.cli` — the ``vlsa-repro bench`` verbs
  (``run | compare | gate | list | promote``).

Quickstart::

    vlsa-repro bench run --suite service --preset small
    vlsa-repro bench gate          # exit 1 on a statistical regression
"""

from .compare import (SuiteComparison, baseline_path, compare_payloads,
                      compare_suite, promote_baseline, render_markdown)
from .runner import BenchmarkResult, RunnerConfig, host_manifest, run_benchmark
from .schema import (SCHEMA_VERSION, SchemaError, build_payload,
                     load_suite_result, result_path, validate_payload,
                     write_suite_result)
from .spec import (Benchmark, BenchmarkRegistry, MetricBand,
                   load_builtin_suites, registry)
from .stats import (Comparison, bootstrap_ci, classify, mann_whitney_u,
                    median)

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "BenchmarkResult",
    "Comparison",
    "MetricBand",
    "RunnerConfig",
    "SCHEMA_VERSION",
    "SchemaError",
    "SuiteComparison",
    "baseline_path",
    "bootstrap_ci",
    "build_payload",
    "classify",
    "compare_payloads",
    "compare_suite",
    "host_manifest",
    "load_builtin_suites",
    "load_suite_result",
    "mann_whitney_u",
    "median",
    "promote_baseline",
    "registry",
    "render_markdown",
    "result_path",
    "run_benchmark",
    "validate_payload",
    "write_suite_result",
]
