"""Calibrated benchmark runner.

Measurement discipline, in order:

1. **Setup** runs untimed; its result is shared by every timed call.
2. **Warmup** calls are executed and discarded (JIT-warm caches,
   numpy buffer pools, lazy imports) — never part of the samples.
3. **Calibration** finds an inner-repeat count so one measurement
   batch lands inside the target-duration window — long enough that
   clock granularity is negligible, short enough that k samples stay
   interactive.  Benchmarks whose single call is already long opt out
   via ``calibrate=False``.
4. **Sampling** takes k batches on the monotonic high-resolution
   clock (``perf_counter``), with the garbage collector frozen so a
   collection pause lands in no sample.  All k per-call times are
   retained (the comparator needs the full distribution), alongside
   min / mean / median and a seeded bootstrap CI.

Every suite run also captures a host manifest (platform, CPU count,
affinity, python build, clock resolution) so a result file is
interpretable after the fact — cross-host comparisons are visible
rather than silently wrong.
"""

from __future__ import annotations

import gc
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .spec import Benchmark
from .stats import bootstrap_ci, median

__all__ = ["RunnerConfig", "BenchmarkResult", "run_benchmark",
           "host_manifest"]


@dataclass(frozen=True)
class RunnerConfig:
    """Timing-loop configuration shared by a suite run."""

    #: Target wall time for one measurement batch, seconds.
    target_time: float = 0.1
    #: Acceptable calibration window around target_time (see
    #: ``calibration_ok``): a batch between ``target/4`` and
    #: ``target*4`` counts as hitting the window.
    window_factor: float = 4.0
    #: Measurement batches retained per benchmark.
    samples: int = 7
    #: Discarded warmup payload calls before calibration.
    warmup: int = 1
    #: Inner-repeat clamp.
    max_repeats: int = 1 << 16
    #: Hard cap on total measurement time per benchmark, seconds.
    max_time: float = 20.0
    #: Freeze the garbage collector around timed sections.
    disable_gc: bool = True
    #: Root seed for the bootstrap CIs.
    seed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "target_time_s": self.target_time,
            "window_factor": self.window_factor,
            "samples": self.samples,
            "warmup": self.warmup,
            "max_repeats": self.max_repeats,
            "max_time_s": self.max_time,
            "disable_gc": self.disable_gc,
            "seed": self.seed,
        }


@dataclass
class BenchmarkResult:
    """All retained measurements for one benchmark."""

    name: str
    suite: str
    ops_per_call: int
    inner_repeats: int
    warmup_calls: int
    samples_s_per_call: List[float]
    tags: List[str] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    band_violations: List[str] = field(default_factory=list)

    @property
    def min_s_per_call(self) -> float:
        return min(self.samples_s_per_call)

    @property
    def mean_s_per_call(self) -> float:
        return (sum(self.samples_s_per_call)
                / len(self.samples_s_per_call))

    @property
    def median_s_per_call(self) -> float:
        return median(self.samples_s_per_call)

    @property
    def ops_per_second(self) -> float:
        best = self.min_s_per_call
        return self.ops_per_call / best if best > 0 else float("inf")

    def as_dict(self, seed: int = 0) -> Dict[str, Any]:
        lo, hi = bootstrap_ci(self.samples_s_per_call, seed=seed)
        return {
            "name": self.name,
            "suite": self.suite,
            "tags": list(self.tags),
            "params": dict(self.params),
            "ops_per_call": self.ops_per_call,
            "inner_repeats": self.inner_repeats,
            "warmup_calls": self.warmup_calls,
            "samples_s_per_call": list(self.samples_s_per_call),
            "min_s_per_call": self.min_s_per_call,
            "mean_s_per_call": self.mean_s_per_call,
            "median_s_per_call": self.median_s_per_call,
            "ci95_s_per_call": [lo, hi],
            "ops_per_second": self.ops_per_second,
            "metrics": dict(self.metrics),
            "band_violations": list(self.band_violations),
        }


def host_manifest() -> Dict[str, Any]:
    """Capture the measurement host so results are interpretable later."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = os.cpu_count() or 1
    try:
        load1, load5, load15 = os.getloadavg()
        loadavg: Optional[List[float]] = [round(load1, 2), round(load5, 2),
                                          round(load15, 2)]
    except (AttributeError, OSError):  # pragma: no cover
        loadavg = None
    info = time.get_clock_info("perf_counter")
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": affinity,
        "loadavg": loadavg,
        "clock": {
            "implementation": info.implementation,
            "resolution_s": info.resolution,
            "monotonic": info.monotonic,
        },
        "pid": os.getpid(),
        "argv0": sys.argv[0] if sys.argv else "",
    }


class _GCFrozen:
    """Context manager: GC off inside, prior state restored after."""

    def __init__(self, active: bool) -> None:
        self._active = active
        self._was_enabled = False

    def __enter__(self) -> "_GCFrozen":
        if self._active:
            self._was_enabled = gc.isenabled()
            gc.collect()
            gc.disable()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._active and self._was_enabled:
            gc.enable()


def _time_batch(payload, state: Any, repeats: int) -> Tuple[float, Any]:
    t0 = time.perf_counter()
    out = None
    for _ in range(repeats):
        out = payload(state)
    return time.perf_counter() - t0, out


def _calibrate(payload, state: Any, config: RunnerConfig) -> int:
    """Find an inner-repeat count whose batch hits the target window."""
    repeats = 1
    while repeats < config.max_repeats:
        dt, _ = _time_batch(payload, state, repeats)
        if dt >= config.target_time / config.window_factor:
            break
        if dt <= 0.0:
            repeats = min(repeats * 8, config.max_repeats)
            continue
        # Aim for the middle of the window; grow at most 8x per probe
        # so one noisy fast probe can't overshoot max_time.
        want = max(repeats + 1, int(repeats * config.target_time / dt))
        repeats = min(want, repeats * 8, config.max_repeats)
    return repeats


def run_benchmark(bench: Benchmark,
                  config: Optional[RunnerConfig] = None) -> BenchmarkResult:
    """Run one benchmark through the calibrated measurement loop."""
    config = config or RunnerConfig()
    state = bench.setup() if bench.setup is not None else None

    last_out = None
    for _ in range(config.warmup):
        last_out = bench.payload(state)

    n_samples = bench.samples if bench.samples is not None else config.samples
    n_samples = max(1, n_samples)

    with _GCFrozen(config.disable_gc):
        repeats = (_calibrate(bench.payload, state, config)
                   if bench.calibrate else 1)
        samples: List[float] = []
        spent = 0.0
        for _ in range(n_samples):
            dt, last_out = _time_batch(bench.payload, state, repeats)
            samples.append(dt / repeats)
            spent += dt
            if spent >= config.max_time and len(samples) >= 3:
                break

    metrics: Dict[str, Any] = {}
    violations: List[str] = []
    if bench.derive is not None:
        metrics = dict(bench.derive(state, last_out))
    for band in bench.bands:
        problem = band.check(metrics)
        if problem is not None:
            violations.append(problem)

    return BenchmarkResult(
        name=bench.name, suite=bench.suite,
        ops_per_call=bench.ops_per_call, inner_repeats=repeats,
        warmup_calls=config.warmup, samples_s_per_call=samples,
        tags=list(bench.tags), params=dict(bench.params),
        metrics=metrics, band_violations=violations)
