"""The ``bench`` CLI verbs: run / compare / gate / list / promote.

Wired into the main ``vlsa-repro`` parser by :mod:`repro.cli`::

    vlsa-repro bench run --suite service --preset small
    vlsa-repro bench compare --suite engine
    vlsa-repro bench gate                      # exit 1 on regression
    vlsa-repro bench list
    vlsa-repro bench promote --suite service   # current -> baseline

``run`` executes suites through the calibrated runner and writes the
shared-schema ``results/BENCH_<suite>.json``.  ``gate`` is ``run`` +
``compare`` + a pass/fail exit code and a markdown summary
(``results/bench_summary.md``) for CI artifacts; ``--trend`` appends a
compact JSON line per suite to a trajectory file the nightly job
accumulates.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from ..reporting import results_dir, save_artifact
from .compare import (baseline_path, compare_payloads, promote_baseline,
                      render_markdown)
from .runner import RunnerConfig, run_benchmark
from .schema import (build_payload, load_suite_result, result_path,
                     write_suite_result)
from .spec import BenchmarkRegistry, load_builtin_suites
from .spec import registry as default_registry
from .stats import DEFAULT_ALPHA, DEFAULT_THRESHOLD

__all__ = ["add_bench_parser", "run_bench_command"]

SUMMARY_NAME = "bench_summary.md"


def add_bench_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``bench`` subcommand to the main CLI parser."""
    bench = sub.add_parser(
        "bench",
        help="unified benchmark harness: run suites, compare against "
             "baselines, gate on statistical regressions",
        description="Declarative benchmark registry with calibrated "
                    "timing and statistical regression detection "
                    "(bootstrap CIs + Mann-Whitney U).")
    verbs = bench.add_subparsers(dest="bench_verb", required=True)

    def common(p, with_compare=False):
        p.add_argument("--suite", default=None, metavar="S,S,...",
                       help="suites to touch (default: all registered)")
        p.add_argument("--preset", choices=("small", "full"),
                       default="small",
                       help="workload size preset (default: %(default)s)")
        if with_compare:
            p.add_argument("--threshold", type=float,
                           default=DEFAULT_THRESHOLD,
                           help="relative median shift that counts as a "
                                "change (default: %(default)s)")
            p.add_argument("--alpha", type=float, default=DEFAULT_ALPHA,
                           help="Mann-Whitney significance level "
                                "(default: %(default)s)")
            p.add_argument("--baseline-dir", dest="baseline_dir",
                           default=None,
                           help="baseline store (default: "
                                "results/baselines)")

    run_p = verbs.add_parser(
        "run", help="run suites and write results/BENCH_<suite>.json",
        description="Run benchmark suites through the calibrated "
                    "runner; every suite writes one shared-schema "
                    "result file.")
    common(run_p)
    run_p.add_argument("--samples", type=int, default=None,
                       help="measurement samples per benchmark "
                            "(default: runner default)")
    run_p.add_argument("--target-time", dest="target_time", type=float,
                       default=None,
                       help="target seconds per measurement batch")
    run_p.add_argument("--trend", default=None, metavar="PATH",
                       help="append one compact JSON line per suite to "
                            "this trajectory file")

    cmp_p = verbs.add_parser(
        "compare",
        help="compare existing results against the baseline store",
        description="Classify each benchmark in results/BENCH_<suite>"
                    ".json against results/baselines/ as improved / "
                    "unchanged / regressed.  Informational: always "
                    "exits 0; use 'gate' to fail on regressions.")
    common(cmp_p, with_compare=True)

    gate_p = verbs.add_parser(
        "gate",
        help="run + compare + exit 1 on any regression or band "
             "violation",
        description="The CI verb: run the suites, compare against the "
                    "baseline store, write a markdown summary, exit 1 "
                    "when anything regressed or a paper-metric "
                    "tolerance band was violated.")
    common(gate_p, with_compare=True)
    gate_p.add_argument("--samples", type=int, default=None,
                        help="measurement samples per benchmark")
    gate_p.add_argument("--target-time", dest="target_time", type=float,
                        default=None,
                        help="target seconds per measurement batch")
    gate_p.add_argument("--no-run", dest="no_run", action="store_true",
                        help="gate existing result files without "
                             "re-running the suites")
    gate_p.add_argument("--allow-missing-baseline",
                        dest="allow_missing_baseline",
                        action="store_true",
                        help="treat a suite without a committed "
                             "baseline as new instead of failing")

    list_p = verbs.add_parser(
        "list", help="list registered suites and their benchmarks",
        description="Instantiate every registered suite at the chosen "
                    "preset and print its benchmarks.")
    common(list_p)
    list_p.add_argument("--json", action="store_true",
                        help="machine-readable output")

    promote_p = verbs.add_parser(
        "promote",
        help="promote current results to the committed baseline store",
        description="Copy results/BENCH_<suite>.json into "
                    "results/baselines/ (after validating the schema). "
                    "Run this on the reference host after an accepted "
                    "performance change.")
    common(promote_p)


def _suite_names(args, registry: BenchmarkRegistry) -> List[str]:
    if args.suite:
        names = [s for s in args.suite.split(",") if s]
        unknown = [s for s in names if s not in registry.suites()]
        if unknown:
            raise SystemExit(
                f"unknown suite(s): {', '.join(unknown)}; registered: "
                f"{', '.join(registry.suites())}")
        return names
    return list(registry.suites())


def _runner_config(args) -> RunnerConfig:
    kwargs: Dict[str, Any] = {}
    if getattr(args, "samples", None) is not None:
        kwargs["samples"] = args.samples
    if getattr(args, "target_time", None) is not None:
        kwargs["target_time"] = args.target_time
    return RunnerConfig(**kwargs)


def _run_suites(names: List[str], preset: str, config: RunnerConfig,
                registry: BenchmarkRegistry) -> Dict[str, str]:
    paths: Dict[str, str] = {}
    for name in names:
        benches = registry.build(name, preset)
        print(f"[bench] suite {name}: {len(benches)} benchmarks "
              f"({preset} preset)", file=sys.stderr)
        results = []
        for bench in benches:
            res = run_benchmark(bench, config)
            rate = res.ops_per_second
            print(f"[bench]   {bench.full_name:<36} "
                  f"{rate:>14,.0f} ops/s  "
                  f"(median {res.median_s_per_call * 1e3:.3f} ms/call, "
                  f"{len(res.samples_s_per_call)} samples x "
                  f"{res.inner_repeats} repeats)", file=sys.stderr)
            for violation in res.band_violations:
                print(f"[bench]     BAND VIOLATION: {violation}",
                      file=sys.stderr)
            results.append(res)
        payload = build_payload(name, preset, results, config)
        paths[name] = write_suite_result(payload)
        print(f"[bench] wrote {paths[name]}", file=sys.stderr)
    return paths


def _append_trend(trend_path: str, names: List[str]) -> None:
    os.makedirs(os.path.dirname(trend_path) or ".", exist_ok=True)
    with open(trend_path, "a", encoding="utf-8") as f:
        for name in names:
            payload = load_suite_result(result_path(name))
            line = {
                "suite": name,
                "preset": payload["preset"],
                "host": payload["host"]["platform"],
                "benchmarks": {
                    b["name"]: {
                        "median_s_per_call": b["median_s_per_call"],
                        "ops_per_second": b["ops_per_second"],
                    } for b in payload["benchmarks"]},
            }
            f.write(json.dumps(line, sort_keys=True) + "\n")


def _compare_suites(names: List[str], args) -> List:
    comparisons = []
    for name in names:
        current = load_suite_result(result_path(name))
        bpath = baseline_path(name, args.baseline_dir)
        try:
            base = load_suite_result(bpath)
        except FileNotFoundError:
            if getattr(args, "allow_missing_baseline", True):
                print(f"[bench] suite {name}: no baseline at {bpath}; "
                      f"skipping comparison", file=sys.stderr)
                continue
            raise SystemExit(
                f"suite {name}: no baseline at {bpath} (run "
                f"'bench promote --suite {name}' on the reference host)")
        comparisons.append(compare_payloads(
            base, current, threshold=args.threshold, alpha=args.alpha))
    return comparisons


def run_bench_command(args,
                      registry: Optional[BenchmarkRegistry] = None) -> int:
    """Dispatch a parsed ``bench`` invocation; returns the exit code."""
    if registry is None:
        load_builtin_suites()
        registry = default_registry
    names = _suite_names(args, registry)
    verb = args.bench_verb

    if verb == "list":
        described = {name: registry.describe(args.preset)[name]
                     for name in names}
        if args.json:
            print(json.dumps(described, indent=2, sort_keys=True))
        else:
            for suite, benches in described.items():
                print(f"{suite}  ({len(benches)} benchmarks)")
                for b in benches:
                    bands = (f"  bands: {', '.join(b['bands'])}"
                             if b["bands"] else "")
                    print(f"  {b['name']:<32} "
                          f"ops/call={b['ops_per_call']:<8}"
                          f"{bands}")
        return 0

    if verb == "run":
        _run_suites(names, args.preset, _runner_config(args), registry)
        if args.trend:
            _append_trend(args.trend, names)
        return 0

    if verb == "promote":
        for name in names:
            path = promote_baseline(name)
            print(f"[bench] baseline updated: {path}", file=sys.stderr)
        return 0

    if verb == "compare":
        comparisons = _compare_suites(names, args)
        print(render_markdown(comparisons, threshold=args.threshold))
        return 0

    if verb == "gate":
        if not args.no_run:
            _run_suites(names, args.preset, _runner_config(args),
                        registry)
        comparisons = _compare_suites(names, args)
        text = render_markdown(comparisons, threshold=args.threshold)
        path = save_artifact(SUMMARY_NAME, text)
        print(text)
        print(f"[bench] summary: {path}", file=sys.stderr)
        failed = [c for c in comparisons if not c.ok]
        for comp in failed:
            for name in comp.regressed:
                print(f"[bench] REGRESSED: {comp.suite}/{name}",
                      file=sys.stderr)
            for name in comp.band_failures:
                print(f"[bench] BAND VIOLATION: {comp.suite}/{name}",
                      file=sys.stderr)
        return 1 if failed else 0

    raise SystemExit(f"unknown bench verb {verb!r}")
