"""Statistical machinery for performance-regression detection.

Benchmark timings are noisy: scheduler preemption, cache state and
turbo behaviour all perturb individual samples.  A useful gate must
therefore combine an *effect-size* criterion (is the shift big enough
to care about?) with *significance* criteria (is the shift real, or
could these two sample sets plausibly come from the same
distribution?).  This module provides the three pieces the comparator
uses:

* :func:`bootstrap_ci` — seeded percentile-bootstrap confidence
  interval for the mean of a sample set (no normality assumption).
* :func:`mann_whitney_u` — the rank-sum test.  Exact null
  distribution for the small tie-free sample counts benchmarks
  produce, normal approximation with tie correction otherwise.
* :func:`classify` — the verdict function: ``improved`` /
  ``unchanged`` / ``regressed``.  A benchmark is only flagged when the
  median shift exceeds the threshold AND the U test rejects the null
  AND the bootstrap CIs are disjoint — so ±3 % scheduler jitter never
  fires while a real 20 % slowdown always does.

Everything here is pure python + math (no scipy), deterministic, and
usable on sample sets as small as three measurements.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "VERDICT_IMPROVED",
    "VERDICT_REGRESSED",
    "VERDICT_UNCHANGED",
    "Comparison",
    "bootstrap_ci",
    "classify",
    "mann_whitney_u",
    "median",
]

VERDICT_IMPROVED = "improved"
VERDICT_UNCHANGED = "unchanged"
VERDICT_REGRESSED = "regressed"

#: Default relative shift that counts as a real change (10 %).
DEFAULT_THRESHOLD = 0.10
#: Default significance level for the Mann-Whitney test.
DEFAULT_ALPHA = 0.05
#: Bootstrap resamples; 2000 keeps the CI stable to ~1 % at n >= 3.
DEFAULT_RESAMPLES = 2000


def median(xs: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    s = sorted(xs)
    n = len(s)
    if n == 0:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return float(s[mid])
    return (s[mid - 1] + s[mid]) / 2.0


def bootstrap_ci(samples: Sequence[float], confidence: float = 0.95,
                 resamples: int = DEFAULT_RESAMPLES,
                 seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of *samples*.

    Deterministic for a given *seed*; a single-sample set collapses to
    a zero-width interval at that value.
    """
    xs = [float(x) for x in samples]
    if not xs:
        raise ValueError("bootstrap_ci of empty sample set")
    if len(xs) == 1:
        return xs[0], xs[0]
    rng = random.Random(seed)
    n = len(xs)
    means = sorted(
        sum(rng.choice(xs) for _ in range(n)) / n
        for _ in range(resamples))
    tail = (1.0 - confidence) / 2.0
    lo_idx = min(resamples - 1, max(0, int(math.floor(tail * resamples))))
    hi_idx = min(resamples - 1,
                 max(0, int(math.ceil((1.0 - tail) * resamples)) - 1))
    return means[lo_idx], means[hi_idx]


def _exact_u_sf(u: float, n: int, m: int) -> float:
    """P(U >= u) under the tie-free null, by dynamic programming.

    Classic Mann-Whitney recurrence on the overall maximum: if the
    largest of the ``n + m`` values is an *a* it beats every *b*
    (``f[n-1][m](u - m)``), else it contributes nothing
    (``f[n][m-1](u)``).  Only used for small ``n * m``, where the
    normal approximation is at its worst.
    """
    max_u = n * m
    # table[i][j] = list of counts over u for sample sizes (i, j).
    table: List[List[List[int]]] = [
        [[] for _ in range(m + 1)] for _ in range(n + 1)]
    for j in range(m + 1):
        table[0][j] = [1]
    for i in range(1, n + 1):
        table[i][0] = [1]
        for j in range(1, m + 1):
            size = i * j + 1
            row = [0] * size
            shifted = table[i - 1][j]       # contributes at u - j
            smaller = table[i][j - 1]       # contributes at u
            for u_val in range(size):
                if u_val - j >= 0 and u_val - j < len(shifted):
                    row[u_val] += shifted[u_val - j]
                if u_val < len(smaller):
                    row[u_val] += smaller[u_val]
            table[i][j] = row
    counts = table[n][m]
    total = float(sum(counts))
    threshold = max(0, min(max_u + 1, int(math.ceil(u - 1e-9))))
    return sum(counts[threshold:]) / total


def mann_whitney_u(a: Sequence[float], b: Sequence[float],
                   exact_limit: int = 400) -> Tuple[float, float]:
    """Two-sided Mann-Whitney U test.

    Returns ``(u_statistic, p_value)`` where ``u_statistic`` counts
    pairs ``(a_i, b_j)`` with ``a_i > b_j`` (ties count half).  The
    p-value is exact (DP over the null distribution) when the samples
    are tie-free and ``len(a) * len(b) <= exact_limit``, else the
    normal approximation with tie correction.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    u = 0.0
    for x in a:
        for y in b:
            if x > y:
                u += 1.0
            elif x == y:
                u += 0.5
    mean_u = n * m / 2.0

    pooled = sorted(list(a) + list(b))
    has_ties = any(pooled[i] == pooled[i + 1] for i in range(len(pooled) - 1))

    if not has_ties and n * m <= exact_limit:
        # Two-sided: double the one-sided tail of the more extreme side.
        tail = _exact_u_sf(max(u, n * m - u), n, m)
        return u, min(1.0, 2.0 * tail)

    # Normal approximation with tie correction.
    nm = n + m
    tie_term = 0.0
    i = 0
    while i < len(pooled):
        j = i
        while j < len(pooled) and pooled[j] == pooled[i]:
            j += 1
        t = j - i
        tie_term += t ** 3 - t
        i = j
    var_u = (n * m / 12.0) * ((nm + 1) - tie_term / (nm * (nm - 1)))
    if var_u <= 0.0:
        return u, 1.0   # all values identical: no evidence of a shift
    z = (abs(u - mean_u) - 0.5) / math.sqrt(var_u)   # continuity corr.
    z = max(z, 0.0)
    p = math.erfc(z / math.sqrt(2.0))                # two-sided
    return u, min(1.0, p)


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one benchmark's current run to a baseline.

    ``effect`` is the relative shift of the median time-per-call:
    positive = slower than baseline, negative = faster.
    """

    verdict: str
    effect: float
    p_value: float
    baseline_median: float
    current_median: float
    baseline_ci: Tuple[float, float]
    current_ci: Tuple[float, float]
    threshold: float
    alpha: float

    @property
    def significant(self) -> bool:
        return self.p_value < self.alpha

    def as_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "effect": round(self.effect, 6),
            "p_value": round(self.p_value, 6),
            "baseline_median_s": self.baseline_median,
            "current_median_s": self.current_median,
            "baseline_ci95_s": list(self.baseline_ci),
            "current_ci95_s": list(self.current_ci),
            "threshold": self.threshold,
            "alpha": self.alpha,
        }


def _cis_disjoint(lo_a: float, hi_a: float, lo_b: float, hi_b: float) -> bool:
    return hi_a < lo_b or hi_b < lo_a


def classify(baseline: Sequence[float], current: Sequence[float],
             threshold: float = DEFAULT_THRESHOLD,
             alpha: float = DEFAULT_ALPHA,
             resamples: int = DEFAULT_RESAMPLES,
             seed: int = 0) -> Comparison:
    """Classify *current* timings against *baseline* timings.

    Samples are seconds-per-call (lower is better).  The verdict is
    ``regressed``/``improved`` only when all three fire in the same
    direction:

    1. the median shift exceeds *threshold* (effect size),
    2. the Mann-Whitney U test rejects at *alpha* (distribution shift),
    3. the bootstrap 95 % CIs of the means are disjoint (the shift
       survives resampling).

    Anything less decisive is ``unchanged`` — in particular
    ``classify(a, a)`` is always ``unchanged`` for any sample set.
    """
    base_med = median(baseline)
    cur_med = median(current)
    if base_med <= 0.0:
        effect = 0.0 if cur_med <= 0.0 else float("inf")
    else:
        effect = cur_med / base_med - 1.0
    _, p = mann_whitney_u(current, baseline)
    base_ci = bootstrap_ci(baseline, resamples=resamples, seed=seed)
    cur_ci = bootstrap_ci(current, resamples=resamples, seed=seed + 1)
    disjoint = _cis_disjoint(*base_ci, *cur_ci)

    verdict = VERDICT_UNCHANGED
    if abs(effect) > threshold and p < alpha and disjoint:
        verdict = VERDICT_REGRESSED if effect > 0 else VERDICT_IMPROVED
    return Comparison(verdict=verdict, effect=effect, p_value=p,
                      baseline_median=base_med, current_median=cur_med,
                      baseline_ci=base_ci, current_ci=cur_ci,
                      threshold=threshold, alpha=alpha)


def summarize_verdicts(comparisons: Dict[str, Comparison]
                       ) -> Dict[str, List[str]]:
    """Group benchmark names by verdict (stable order within a group)."""
    out: Dict[str, List[str]] = {VERDICT_IMPROVED: [],
                                 VERDICT_UNCHANGED: [],
                                 VERDICT_REGRESSED: []}
    for name, comp in comparisons.items():
        out[comp.verdict].append(name)
    return out
