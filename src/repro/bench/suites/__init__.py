"""Built-in benchmark suites.

Importing this package registers the ``engine``, ``service``,
``verify`` and ``cluster`` suites against the default
:data:`repro.bench.spec.registry`.  Each module is the migrated
successor of the matching ad-hoc ``benchmarks/bench_*_throughput.py``
script; the scripts themselves survive as thin shims over these
suites.
"""

from . import cluster, engine, service, verify  # noqa: F401

__all__ = ["cluster", "engine", "service", "verify"]
