"""Built-in benchmark suites.

Importing this package registers the ``engine``, ``families``,
``service``, ``verify`` and ``cluster`` suites against the default
:data:`repro.bench.spec.registry`.  Most modules are the migrated
successors of the matching ad-hoc ``benchmarks/bench_*_throughput.py``
script (the scripts themselves survive as thin shims over these
suites); ``families`` is native to the suite registry.
"""

from . import cluster, engine, families, service, verify  # noqa: F401

__all__ = ["cluster", "engine", "families", "service", "verify"]
