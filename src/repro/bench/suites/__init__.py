"""Built-in benchmark suites.

Importing this package registers the ``engine``, ``families``,
``service``, ``verify``, ``cluster`` and ``autotune`` suites against
the default :data:`repro.bench.spec.registry`.  Most modules are the migrated
successors of the matching ad-hoc ``benchmarks/bench_*_throughput.py``
script (the scripts themselves survive as thin shims over these
suites); ``families`` is native to the suite registry.
"""

from . import (autotune, cluster, engine, families,  # noqa: F401
               service, verify)

__all__ = ["autotune", "cluster", "engine", "families", "service",
           "verify"]
