"""Verify suite: differential-oracle throughput.

How many vectors/second the differential verifier can push through a
representative implementation slice — the number that bounds how large
a nightly fuzz run can be.  The pure reference oracle is benchmarked
on its own (the floor every implementation pair pays), then one
word-level serving implementation, the abstract VLSA machine, and one
gate-level engine backend at a reduced share.

Every run must stay mismatch-free: a ``mismatches`` metric banded
against zero turns a silently-diverging implementation into a gate
failure, not just a slow benchmark.
"""

from __future__ import annotations

import os
from typing import List

from ..spec import Benchmark, MetricBand, registry

__all__ = ["verify_suite"]

_PRESET_VECTORS = {"small": 1 << 12, "full": 20000}

#: Gate-level implementations get a reduced vector share.
_GATE_SHARE = 8

#: (implementation, is_gate_level) slice the suite drives.
_IMPLS = (
    ("machine", False),
    ("service:numpy", False),
    ("engine:numpy", True),
)

_CLEAN_BAND = MetricBand("mismatches", "expected_mismatches", rel_tol=0.0)


def verify_bench(impl: str, width: int, vectors: int) -> Benchmark:
    """One differential-verification throughput benchmark."""
    def setup(impl=impl, width=width):
        from ...analysis import choose_window
        from ...engine import RunContext
        from ...verify import DifferentialVerifier

        window = choose_window(width)
        return DifferentialVerifier(
            width, window=window, impls=(impl,),
            ctx=RunContext(seed=width), shrink=False)

    def run(verifier, vectors=vectors, width=width):
        return verifier.run(vectors=vectors, streams=("uniform",),
                            seed=width)

    def derive(_verifier, report):
        return {
            "mismatches": len(report.discrepancies),
            "expected_mismatches": 0,
            "ok": bool(report.ok),
        }

    return Benchmark(
        name=f"{impl.replace(':', '_')}_w{width}", suite="verify",
        setup=setup, payload=run, ops_per_call=vectors,
        tags=("differential",), derive=derive, bands=(_CLEAN_BAND,),
        calibrate=False,
        params={"impl": impl, "width": width, "vectors": vectors})


@registry.suite("verify")
def verify_suite(preset: str) -> List[Benchmark]:
    base = int(os.environ.get("REPRO_BENCH_VERIFY_VECTORS",
                              _PRESET_VECTORS[preset]))
    width = 64
    benches: List[Benchmark] = []

    def setup_ref(width=width, base=base):
        from ...analysis import choose_window
        from ...verify.vectors import pair_stream

        window = choose_window(width)
        pairs = [p for chunk in pair_stream("uniform", width, window,
                                            base, seed=width)
                 for p in chunk]
        return pairs, width, window

    def run_ref(state):
        from ...verify.differential import _reference

        pairs, width, window = state
        return _reference(pairs, width, window)

    benches.append(Benchmark(
        name=f"reference_oracle_w{width}", suite="verify",
        setup=setup_ref, payload=run_ref, ops_per_call=base,
        tags=("oracle",), params={"width": width, "vectors": base}))

    for impl, gate_level in _IMPLS:
        n = max(256, base // _GATE_SHARE) if gate_level else base
        benches.append(verify_bench(impl, width, n))
    return benches
