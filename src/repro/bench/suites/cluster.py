"""Cluster suite: multi-process pool scaling versus the in-process
service, over both router<->worker transports.

The same uniform workload through the single-process service baseline
and through 1- and 2-worker pools (the ``full`` preset adds 4), once
per transport: ``cluster_w{n}`` rides the pickle-over-pipe wire,
``cluster_shm_w{n}`` the zero-copy shared-memory rings.  A benchmarked
pool run must be *healthy*: restarts, degraded, failed, rejected and
timed-out requests are summed into a ``failures_total`` metric banded
against zero, so a cluster that only stays fast by dropping work
cannot pass the gate.

Every pool bench derives ``us_per_message`` — wall microseconds per
router<->worker round trip — which is where serialization cost lives
once the adders themselves are vectorised.  The ``transport_overhead``
bench drives both transports back to back at a deliberately small
batch size (per-message cost dominant) and bands the boolean
``shm_overhead_below_pipe``: the ring transport must beat the pickle
pipe on per-message overhead outright, on every host, or the suite
fails.  The comparison takes the best run per transport across all
samples, so scheduler noise on a loaded host cannot flip the verdict.

Real worker processes only scale on real cores; the scaling *ratio*
is therefore left to the comparator (which sees the host manifest)
rather than hard-asserted here — the back-compat
``benchmarks/bench_cluster_throughput.py`` shim keeps the
CPU-conditional 2x acceptance bar.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional

from ..spec import Benchmark, MetricBand, registry

__all__ = ["cluster_suite"]

_PRESET_OPS = {"small": 1 << 14, "full": 1 << 18}
_PRESET_POOLS = {"small": (1, 2), "full": (1, 2, 4)}

#: Ops per request in the pool benches — big batches, amortised wire.
_POOL_CHUNK = 2048
#: Ops per request in the transport-overhead bench — small batches, so
#: the per-message wire cost is what the clock sees.
_OVERHEAD_CHUNK = 64
_OVERHEAD_OPS = 1 << 13

_HEALTH_KEYS = ("worker_restarts", "worker_failures",
                "degraded_requests", "failed_requests")

_HEALTH_BAND = MetricBand("failures_total", "expected_failures_total",
                          rel_tol=0.0)

_OVERHEAD_BAND = MetricBand("shm_overhead_below_pipe",
                            "expected_shm_below_pipe", rel_tol=0.0)


def _us_per_message(report, chunk: int) -> float:
    messages = max(1, math.ceil(report.ops / chunk))
    return report.wall_seconds * 1e6 / messages


def _derive(_state, report, chunk: int = _POOL_CHUNK):
    failures = (report.rejected + report.timeouts
                + sum(report.params.get(k, 0) for k in _HEALTH_KEYS))
    out = {
        "adds_per_second": round(report.adds_per_second, 1),
        "mean_latency_cycles": report.mean_latency_cycles,
        "stall_rate": report.stall_rate,
        "us_per_message": round(_us_per_message(report, chunk), 3),
        "failures_total": failures,
        "expected_failures_total": 0,
    }
    for key in _HEALTH_KEYS:
        out[key] = report.params.get(key, 0)
    for key in ("transport_tx_bytes", "transport_rx_bytes",
                "transport_pipe_fallbacks", "transport_ring_full_stalls"):
        if key in report.params:
            out[key] = report.params[key]
    return out


def _pool_bench(name: str, target: str, ops: int, workers: Optional[int],
                transport: str = "pipe") -> Benchmark:
    def run(_state, target=target, ops=ops, workers=workers,
            transport=transport):
        from ...service import run_loadgen

        kwargs = dict(ops=ops, width=64, chunk=_POOL_CHUNK,
                      concurrency=4, max_batch_ops=1 << 14)
        if workers is not None:
            kwargs.update(target=target, workers=workers,
                          transport=transport)
        return run_loadgen("uniform", **kwargs)

    # 5 samples: the minimum at which the exact Mann-Whitney p-value
    # can clear alpha = 0.05, so cluster regressions are detectable.
    return Benchmark(
        name=name, suite="cluster", payload=run, ops_per_call=ops,
        tags=("serving", "scaling"), calibrate=False, samples=5,
        derive=_derive, bands=(_HEALTH_BAND,),
        params={"target": target, "ops": ops,
                "workers": workers or 0, "width": 64,
                "transport": transport if workers is not None else "n/a"})


def _overhead_bench() -> Benchmark:
    """Pipe vs shm per-message overhead, measured in one payload.

    Each payload call runs both transports back to back over the same
    small-batch workload and stashes the per-message wall cost; derive
    compares the *best* run per transport so the banded boolean is a
    property of the transports, not of one noisy sample.
    """

    def setup():
        return {"pipe": [], "shm": []}

    def run(state):
        from ...service import run_loadgen

        reports = {}
        for transport in ("pipe", "shm"):
            report = run_loadgen(
                "uniform", target="cluster", workers=1,
                transport=transport, ops=_OVERHEAD_OPS,
                chunk=_OVERHEAD_CHUNK, concurrency=4,
                max_batch_ops=1 << 14, width=64)
            state[transport].append(
                _us_per_message(report, _OVERHEAD_CHUNK))
            reports[transport] = report
        return reports

    def derive(state, reports):
        pipe_us = min(state["pipe"])
        shm_us = min(state["shm"])
        out = {
            "us_per_message_pipe": round(pipe_us, 3),
            "us_per_message_shm": round(shm_us, 3),
            "shm_overhead_ratio": round(shm_us / pipe_us, 4),
            "shm_overhead_below_pipe": int(shm_us < pipe_us),
            "expected_shm_below_pipe": 1,
        }
        for transport, report in reports.items():
            out[f"failures_{transport}"] = (
                report.rejected + report.timeouts
                + sum(report.params.get(k, 0) for k in _HEALTH_KEYS))
        return out

    return Benchmark(
        name="transport_overhead", suite="cluster",
        payload=run, setup=setup, ops_per_call=2 * _OVERHEAD_OPS,
        tags=("serving", "transport"), calibrate=False, samples=3,
        derive=derive, bands=(_OVERHEAD_BAND,),
        params={"target": "cluster", "ops": _OVERHEAD_OPS,
                "chunk": _OVERHEAD_CHUNK, "workers": 1, "width": 64,
                "transports": "pipe,shm"})


@registry.suite("cluster")
def cluster_suite(preset: str) -> List[Benchmark]:
    ops = int(os.environ.get("REPRO_BENCH_CLUSTER_OPS",
                             _PRESET_OPS[preset]))
    pools = tuple(
        int(w) for w in os.environ.get(
            "REPRO_BENCH_CLUSTER_WORKERS",
            ",".join(str(p) for p in _PRESET_POOLS[preset])).split(","))
    benches: List[Benchmark] = [
        _pool_bench("service_baseline", "service", ops, None)]
    benches.extend(
        _pool_bench(f"cluster_w{workers}", "cluster", ops, workers)
        for workers in pools)
    benches.extend(
        _pool_bench(f"cluster_shm_w{workers}", "cluster", ops, workers,
                    transport="shm")
        for workers in pools)
    benches.append(_overhead_bench())
    return benches
