"""Cluster suite: multi-process pool scaling versus the in-process
service.

The same uniform workload through the single-process service baseline
and through 1- and 2-worker pools (the ``full`` preset adds 4).  A
benchmarked pool run must be *healthy*: restarts, degraded, failed,
rejected and timed-out requests are summed into a ``failures_total``
metric banded against zero, so a cluster that only stays fast by
dropping work cannot pass the gate.

Real worker processes only scale on real cores; the scaling *ratio*
is therefore left to the comparator (which sees the host manifest)
rather than hard-asserted here — the back-compat
``benchmarks/bench_cluster_throughput.py`` shim keeps the
CPU-conditional 2x acceptance bar.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..spec import Benchmark, MetricBand, registry

__all__ = ["cluster_suite"]

_PRESET_OPS = {"small": 1 << 14, "full": 1 << 18}
_PRESET_POOLS = {"small": (1, 2), "full": (1, 2, 4)}

_HEALTH_KEYS = ("worker_restarts", "worker_failures",
                "degraded_requests", "failed_requests")

_HEALTH_BAND = MetricBand("failures_total", "expected_failures_total",
                          rel_tol=0.0)


def _derive(_state, report):
    failures = (report.rejected + report.timeouts
                + sum(report.params.get(k, 0) for k in _HEALTH_KEYS))
    out = {
        "adds_per_second": round(report.adds_per_second, 1),
        "mean_latency_cycles": report.mean_latency_cycles,
        "stall_rate": report.stall_rate,
        "failures_total": failures,
        "expected_failures_total": 0,
    }
    for key in _HEALTH_KEYS:
        out[key] = report.params.get(key, 0)
    return out


def _pool_bench(name: str, target: str, ops: int,
                workers: Optional[int]) -> Benchmark:
    def run(_state, target=target, ops=ops, workers=workers):
        from ...service import run_loadgen

        kwargs = dict(ops=ops, width=64, chunk=2048, concurrency=4,
                      max_batch_ops=1 << 14)
        if workers is not None:
            kwargs.update(target=target, workers=workers)
        return run_loadgen("uniform", **kwargs)

    # 5 samples: the minimum at which the exact Mann-Whitney p-value
    # can clear alpha = 0.05, so cluster regressions are detectable.
    return Benchmark(
        name=name, suite="cluster", payload=run, ops_per_call=ops,
        tags=("serving", "scaling"), calibrate=False, samples=5,
        derive=_derive, bands=(_HEALTH_BAND,),
        params={"target": target, "ops": ops,
                "workers": workers or 0, "width": 64})


@registry.suite("cluster")
def cluster_suite(preset: str) -> List[Benchmark]:
    ops = int(os.environ.get("REPRO_BENCH_CLUSTER_OPS",
                             _PRESET_OPS[preset]))
    pools = tuple(
        int(w) for w in os.environ.get(
            "REPRO_BENCH_CLUSTER_WORKERS",
            ",".join(str(p) for p in _PRESET_POOLS[preset])).split(","))
    benches: List[Benchmark] = [
        _pool_bench("service_baseline", "service", ops, None)]
    benches.extend(
        _pool_bench(f"cluster_w{workers}", "cluster", ops, workers)
        for workers in pools)
    return benches
