"""Engine suite: compiled backends versus the legacy interpreter.

One benchmark per (width, backend) pair over the same pre-built ACA
circuit and random stimulus; the legacy per-gate interpreter rides
along at a reduced vector share so the suite stays interactive.
Output equivalence between backends is asserted at setup time — a
benchmark that computes the wrong sums must never post a throughput
number.

Presets: ``small`` keeps CI under a few seconds per backend; ``full``
is the nightly sweep.  ``REPRO_BENCH_ENGINE_VECTORS`` and
``REPRO_BENCH_ENGINE_WIDTHS`` still override, as they did for the
pre-registry script.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from ...analysis import choose_window
from ...circuit import random_stimulus, simulate_interpreted
from ...core import build_aca
from ...engine import RunContext, available_backends, execute
from ...testing import env_widths
from ..spec import Benchmark, registry

__all__ = ["engine_suite"]

_PRESET_VECTORS = {"small": 1 << 13, "full": 1 << 18}
_PRESET_WIDTHS = {"small": (16, 64), "full": (16, 64, 256)}

#: The gate-level interpreter is orders of magnitude slower than the
#: compiled backends; it gets this fraction of the vector volume.
_LEGACY_SHARE = 16


def _vectors_for(width: int, base: int) -> int:
    return base if width == 64 else max(1 << 10, base // 16)


def _make_state(width: int, vectors: int):
    """Build circuit + stimulus once, shared by every backend bench."""
    circuit = build_aca(width, choose_window(width))
    stim = random_stimulus(circuit, num_vectors=vectors,
                           rng=np.random.default_rng(width))
    return circuit, stim, vectors


@registry.suite("engine")
def engine_suite(preset: str) -> List[Benchmark]:
    base = int(os.environ.get("REPRO_BENCH_ENGINE_VECTORS",
                              _PRESET_VECTORS[preset]))
    widths = env_widths("REPRO_BENCH_ENGINE_WIDTHS",
                        _PRESET_WIDTHS[preset])
    benches: List[Benchmark] = []
    for width in widths:
        n = _vectors_for(width, base)
        n_legacy = max(256, n // _LEGACY_SHARE)

        def setup_legacy(width=width, n_legacy=n_legacy):
            return _make_state(width, n_legacy)

        def run_legacy(state):
            circuit, stim, n = state
            return simulate_interpreted(circuit, stim, num_vectors=n)

        benches.append(Benchmark(
            name=f"legacy_w{width}", suite="engine",
            setup=setup_legacy, payload=run_legacy,
            ops_per_call=n_legacy, tags=("gate-level", "legacy"),
            params={"width": width, "vectors": n_legacy,
                    "backend": "legacy"}))

        for backend in available_backends():
            def setup_backend(width=width, n=n, backend=backend):
                circuit, stim, n_vec = _make_state(width, n)
                ctx = RunContext(seed=0, backend=backend)
                # Correctness gate before any timing: the compiled
                # backend must agree with the interpreter on a small
                # probe stimulus (stimuli are bit-packed, so the probe
                # gets its own packing).
                probe = min(n_vec, 256)
                probe_stim = random_stimulus(
                    circuit, num_vectors=probe,
                    rng=np.random.default_rng(width + 1))
                ref = simulate_interpreted(circuit, probe_stim,
                                           num_vectors=probe)
                got = execute(circuit, probe_stim, num_vectors=probe,
                              backend=backend, ctx=ctx)
                if got != ref:
                    raise AssertionError(
                        f"backend {backend!r} diverged from the "
                        f"interpreter at width {width}")
                return circuit, stim, n_vec, backend, ctx

            def run_backend(state):
                circuit, stim, n_vec, backend, ctx = state
                return execute(circuit, stim, num_vectors=n_vec,
                               backend=backend, ctx=ctx)

            benches.append(Benchmark(
                name=f"{backend}_w{width}", suite="engine",
                setup=setup_backend, payload=run_backend,
                ops_per_call=n, tags=("gate-level", "compiled"),
                params={"width": width, "vectors": n,
                        "backend": backend}))
    return benches
