"""Service suite: the async micro-batched VLSA serving path.

Each benchmark drives a full load-generation run (admission queue,
micro-batcher, executor, metrics) and reports additions/second.  The
paper-level quantities ride along as first-class metrics with
tolerance bands:

* ``mean_latency_cycles`` must match the analytic
  ``1 + P(stall) * recovery`` (the ``A_n(x)``-derived model) within
  5 % — the paper's 1.0001–1.0002 cycles claim, continuously gated.
* the window-8 run makes the detector ``stall_rate`` statistically
  resolvable (P(stall) ~ 0.1), banded against the analytic rate.
* the adversarial stream must pin mean latency at exactly
  ``1 + recovery`` cycles.

A loadgen run is long on its own, so these benchmarks skip inner-loop
calibration (``calibrate=False``) and take fewer samples.
"""

from __future__ import annotations

import os
from typing import List

from ..spec import Benchmark, MetricBand, registry

__all__ = ["service_suite"]

_PRESET_OPS = {"small": 1 << 15, "full": 1 << 20}
#: 5 samples is the floor at which the exact Mann-Whitney two-sided
#: p-value (2/C(10,5) = 0.0079) can clear the default alpha = 0.05 —
#: fewer samples would make a regression verdict mathematically
#: impossible for this suite.
_SAMPLES = {"small": 5, "full": 5}


def _derive(state, report):
    """Paper-level metrics out of a LoadgenReport."""
    return {
        "adds_per_second": round(report.adds_per_second, 1),
        "mean_latency_cycles": report.mean_latency_cycles,
        "analytic_latency_cycles": report.analytic_latency_cycles,
        "stall_rate": report.stall_rate,
        "analytic_stall_rate": report.analytic_stall_rate,
        "spec_error_rate": report.spec_error_rate,
        "p50_wall_ms": round(report.p50_wall_ms, 4),
        "p99_wall_ms": round(report.p99_wall_ms, 4),
        "rejected": report.rejected,
        "timeouts": report.timeouts,
    }


def _loadgen_bench(name: str, workload: str, ops: int, samples: int,
                   bands, window=None, width: int = 64,
                   chunk: int = 2048, seed: int = 1) -> Benchmark:
    def run(_state, workload=workload, ops=ops, window=window,
            width=width, chunk=chunk):
        from ...service import run_loadgen

        return run_loadgen(workload, ops=ops, width=width, window=window,
                           chunk=chunk, concurrency=4,
                           max_batch_ops=1 << 14, backend="numpy")

    return Benchmark(
        name=name, suite="service", payload=run, ops_per_call=ops,
        tags=("serving", "paper-metric"), calibrate=False,
        samples=samples, derive=_derive, bands=tuple(bands),
        params={"workload": workload, "ops": ops, "width": width,
                "window": window, "chunk": chunk, "backend": "numpy"})


@registry.suite("service")
def service_suite(preset: str) -> List[Benchmark]:
    ops = int(os.environ.get("REPRO_BENCH_SERVICE_OPS",
                             _PRESET_OPS[preset]))
    side_ops = max(1 << 12, ops // 8)
    samples = _SAMPLES[preset]

    latency_band = MetricBand("mean_latency_cycles",
                              "analytic_latency_cycles", rel_tol=0.05)
    return [
        # The headline: uniform traffic at the paper's 99.99% window.
        _loadgen_bench("loadgen_uniform_w64", "uniform", ops, samples,
                       bands=[latency_band]),
        # Window 8 makes stalls frequent enough (P ~ 0.1) that the
        # detector rate itself is measurable within a 15% band.
        _loadgen_bench("loadgen_uniform_w64_win8", "uniform", side_ops,
                       samples, window=8,
                       bands=[latency_band,
                              MetricBand("stall_rate",
                                         "analytic_stall_rate",
                                         rel_tol=0.15)]),
        # All-propagate operands: every add stalls, latency is exactly
        # 1 + recovery cycles — zero-tolerance band.
        _loadgen_bench("loadgen_adversarial_w64", "adversarial",
                       side_ops, samples,
                       bands=[MetricBand("mean_latency_cycles",
                                         "analytic_latency_cycles",
                                         rel_tol=1e-9)]),
        # Biased traffic exercises the workload-dependence column.
        _loadgen_bench("loadgen_biased_w64_win12", "biased", side_ops,
                       samples, window=12, bands=[latency_band]),
    ]
