"""Autotune suite: forecast fidelity and controller convergence.

Three kinds of benchmark, with the paper-level quantities as banded
metrics the gate enforces on every run:

* ``predict_*`` — forecast throughput per family, banded on the biased
  predictor at ``p = 0.5`` reproducing the family's exact uniform flag
  rate (tight for ACA, where the run-length DP is exact; 5 % for the
  block families' independence combination).
* ``policy_decide`` — full candidate-space decisions per second (the
  controller's steady-state overhead).
* ``controller_drift`` — the online controller over a seeded drift
  stream through :class:`~repro.autotune.controller.SyncAutotunedExecutor`,
  banded on per-phase convergence (all phases converge, SLA met) and on
  observed-vs-predicted stall agreement in the graded tails.

Online runs are loadgen-length, so they skip inner-loop calibration.
"""

from __future__ import annotations

import os
from typing import List

from ..spec import Benchmark, MetricBand, registry

__all__ = ["autotune_suite"]

_PRESET_OPS = {"small": 48000, "full": 192000}
#: 5 samples is the floor at which the exact Mann-Whitney two-sided
#: p-value (2/C(10,5) = 0.0079) can clear the default alpha = 0.05.
_SAMPLES = {"small": 5, "full": 5}

_SLA_STALL = 0.02


def _predict_bench(family: str, window: int, samples: int,
                   tol: float) -> Benchmark:
    def run(_state, family=family, window=window):
        from ...autotune import predict_stall_rate
        from ...families import get_family

        fam = get_family(family)
        params = fam.resolve_params(64, window=window)
        predicted = None
        for p in (0.25, 0.375, 0.5, 0.625, 0.75):
            rate = predict_stall_rate(family, 64, params, p)
            if p == 0.5:
                predicted = rate
        exact = float(fam.error_model(64, **params).flag_rate)
        return {"predicted_uniform_stall_rate": predicted,
                "exact_flag_rate": exact}

    return Benchmark(
        name=f"predict_{family}_w{window}", suite="autotune",
        payload=run, ops_per_call=5,
        tags=("autotune", "paper-metric"),
        samples=samples, derive=lambda s, r: dict(r),
        bands=(MetricBand("predicted_uniform_stall_rate",
                          "exact_flag_rate", rel_tol=tol),),
        params={"family": family, "window": window, "width": 64})


def _decide_bench(samples: int) -> Benchmark:
    def setup():
        from ...autotune import SLA, OperandProfile, PolicyEngine

        policy = PolicyEngine(64, SLA(stall_rate=_SLA_STALL))
        profile = OperandProfile.fixed(64, 0.5)
        return {"policy": policy, "profile": profile}

    def run(state):
        decision = state["policy"].decide(state["profile"])
        return {"considered": decision.considered,
                "feasible": 1.0 if decision.feasible else 0.0,
                "always_feasible": 1.0}

    return Benchmark(
        name="policy_decide_w64", suite="autotune", payload=run,
        setup=setup, ops_per_call=1, tags=("autotune",),
        samples=samples, derive=lambda s, r: dict(r),
        bands=(MetricBand("feasible", "always_feasible", rel_tol=0.0),),
        params={"width": 64, "sla_stall_rate": _SLA_STALL})


def _drift_bench(ops: int, samples: int, seed: int) -> Benchmark:
    def run(_state, ops=ops, seed=seed):
        from ...autotune import SLA, run_online

        report = run_online(width=64, sla=SLA(stall_rate=_SLA_STALL),
                            ops=ops, chunk=512, decide_every_ops=1024,
                            seed=seed)
        worst = 0.0
        for ph in report["phases"]:
            pred = ph["predicted_stall_rate"]
            obs = ph["observed_stall_rate"]
            # Relative disagreement where the predicted rate is large
            # enough to compare relatively; near-zero rates compare on
            # counts, which the binomial z-band inside run_online
            # already graded.
            if pred > 1e-3:
                worst = max(worst, abs(obs - pred) / pred)
        return {
            "converged": 1.0 if report["converged"] else 0.0,
            "sla_met": 1.0 if report["sla_met"] else 0.0,
            # Tail-rate agreement within 50% relative — loose because
            # tails are only a few thousand ops.
            "disagreement_ok": 1.0 if worst <= 0.5 else 0.0,
            "all_good": 1.0,
            "worst_rate_disagreement": worst,
            "reconfigurations": report["reconfigurations"],
            "final_family": report["final"]["family"],
            "final_window": report["final"]["window"],
            "observed_stall_rate": report["observed_stall_rate"],
        }

    return Benchmark(
        name="controller_drift_w64", suite="autotune", payload=run,
        ops_per_call=ops, tags=("autotune", "paper-metric"),
        calibrate=False, samples=samples, derive=lambda s, r: dict(r),
        bands=(MetricBand("converged", "all_good", rel_tol=0.0),
               MetricBand("sla_met", "all_good", rel_tol=0.0),
               MetricBand("disagreement_ok", "all_good", rel_tol=0.0)),
        params={"workload": "drift", "ops": ops, "width": 64,
                "sla_stall_rate": _SLA_STALL, "seed": seed})


@registry.suite("autotune")
def autotune_suite(preset: str) -> List[Benchmark]:
    ops = int(os.environ.get("REPRO_BENCH_AUTOTUNE_OPS",
                             _PRESET_OPS[preset]))
    samples = _SAMPLES[preset]
    return [
        # ACA's biased DP at p = 0.5 IS the exact uniform rate.
        _predict_bench("aca", 12, samples, tol=1e-6),
        # Block families combine disjoint boundary windows; the
        # independence product is exact for tiling windows and within
        # a few percent otherwise.
        _predict_bench("blockspec", 8, samples, tol=0.05),
        _predict_bench("cesa", 16, samples, tol=0.05),
        _decide_bench(samples),
        _drift_bench(ops, samples, seed=1),
    ]
