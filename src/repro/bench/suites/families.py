"""Families suite: per-family kernel throughput with banded error rates.

One benchmark per registered adder family drives its vectorized numpy
kernel over a seeded uniform batch and reports additions/second.  The
paper-level metrics are the measured speculation-flag rate and the
measured actually-wrong rate, each banded against the family's own
analytic :meth:`~repro.families.base.AdderFamily.error_model` — a
family whose kernel drifts from its error model fails the gate, not
just the nightly fuzz run.

Parameters are chosen so every family has a substantial error rate at
width 32 (small windows/blocks); with seeded vectors the measured
rates are deterministic and sit well inside the 15% relative band.
"""

from __future__ import annotations

import os
from typing import List

from ..spec import Benchmark, MetricBand, registry

__all__ = ["families_suite"]

_PRESET_VECTORS = {"small": 1 << 14, "full": 1 << 17}

#: (family, params) slice the suite drives — small windows so the
#: error events are frequent enough to band tightly.
_CASES = (
    ("aca", {"window": 4}),
    ("blockspec", {"block": 8, "lookahead": 4}),
    ("cesa", {"block": 4}),
)

_WIDTH = 32

_BANDS = (
    MetricBand("flag_rate", "analytic_flag_rate", rel_tol=0.15),
    MetricBand("error_rate", "analytic_error_rate", rel_tol=0.15),
)


def family_bench(family: str, params: dict, vectors: int) -> Benchmark:
    """One family-kernel throughput benchmark with error-rate bands."""
    def setup(family=family, params=params, vectors=vectors):
        import numpy as np

        from ...families.base import get_family

        fam = get_family(family)
        kernel = fam.numpy_kernel(_WIDTH, **params)
        model = fam.error_model(_WIDTH, **params)
        rng = np.random.default_rng(_WIDTH)
        a = rng.integers(0, 1 << _WIDTH, size=vectors, dtype=np.uint64)
        b = rng.integers(0, 1 << _WIDTH, size=vectors, dtype=np.uint64)
        return kernel, model, a, b

    def run(state):
        kernel, _model, a, b = state
        return kernel(a, b)

    def derive(state, batch):
        import numpy as np

        _kernel, model, _a, _b = state
        return {
            "flag_rate": float(np.mean(batch.flags)),
            "error_rate": float(np.mean(batch.spec_errors)),
            "analytic_flag_rate": float(model.flag_rate),
            "analytic_error_rate": float(model.error_rate),
        }

    label = "_".join(f"{k[0]}{v}" for k, v in sorted(params.items()))
    return Benchmark(
        name=f"{family}_w{_WIDTH}_{label}", suite="families",
        setup=setup, payload=run, ops_per_call=vectors,
        tags=("kernel", "paper-metric"), derive=derive, bands=_BANDS,
        params={"family": family, "width": _WIDTH, "vectors": vectors,
                **params})


@registry.suite("families")
def families_suite(preset: str) -> List[Benchmark]:
    vectors = int(os.environ.get("REPRO_BENCH_FAMILIES_VECTORS",
                                 _PRESET_VECTORS[preset]))
    return [family_bench(family, dict(params), vectors)
            for family, params in _CASES]
