"""Declarative benchmark specs and the suite registry.

A :class:`Benchmark` describes one timed quantity: an untimed ``setup``
producing shared state, a timed ``payload`` called with that state, the
number of logical operations one payload call performs (so results can
be reported as ops/s), free-form workload ``params`` recorded in the
result JSON, and optional *paper-level metric* extraction with
tolerance bands (e.g. mean VLSA latency vs the analytic prediction).

Suites are named groups of benchmarks registered against a
:class:`BenchmarkRegistry`.  The default registry is module-global so
the CLI, the back-compat ``benchmarks/bench_*.py`` shims and the tests
all see the same suites; tests may also build private registries.

Each suite is registered as a *factory* ``(preset) -> [Benchmark]`` so
workload sizes can differ between the quick CI preset and the full
nightly preset without duplicating specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "MetricBand",
    "PRESETS",
    "registry",
    "load_builtin_suites",
]

#: Workload-size presets every suite factory must accept.
PRESETS = ("small", "full")


@dataclass(frozen=True)
class MetricBand:
    """Tolerance band tying a measured metric to an expected one.

    After the payload runs, ``metrics[metric]`` must match
    ``metrics[expected]`` within ``rel_tol`` (relative) — e.g. measured
    mean latency-in-cycles vs the analytic ``A_n(x)``-derived
    prediction.  Violations are recorded in the result JSON and fail
    the run when the runner is strict.
    """

    metric: str
    expected: str
    rel_tol: float

    def check(self, metrics: Mapping[str, Any]) -> Optional[str]:
        """Return a violation description, or None when in-band."""
        got = metrics.get(self.metric)
        want = metrics.get(self.expected)
        if got is None or want is None:
            return (f"band {self.metric} vs {self.expected}: "
                    f"metric missing (got={got!r}, expected={want!r})")
        scale = max(abs(float(want)), 1e-300)
        err = abs(float(got) - float(want)) / scale
        if err > self.rel_tol:
            return (f"band {self.metric}={got:.6g} vs "
                    f"{self.expected}={want:.6g}: relative error "
                    f"{err:.4g} > {self.rel_tol:.4g}")
        return None


@dataclass(frozen=True)
class Benchmark:
    """One registered, runnable benchmark.

    Args:
        name: Unique within the suite (``<suite>/<name>`` globally).
        suite: Owning suite name.
        payload: The timed callable; invoked as ``payload(state)`` where
            *state* is whatever ``setup`` returned (None without setup).
            Its return value is passed to ``derive`` for metric
            extraction.
        setup: Untimed; runs once before calibration, its result is
            reused for every timed call.
        ops_per_call: Logical operations one payload call performs
            (vectors simulated, additions served, ...); ops/s in the
            result JSON is derived from it.
        tags: Free-form labels (``"gate-level"``, ``"paper-metric"``).
        params: Workload parameters recorded verbatim in the result.
        derive: Optional ``(state, last_payload_result) -> dict`` of
            paper-level metrics stored in the result JSON.
        bands: Tolerance bands evaluated over the derived metrics.
        samples: Override the runner's sample count (e.g. expensive
            cluster benchmarks take fewer measurements).
        calibrate: When False the payload is timed exactly once per
            sample (already-long workloads like a full loadgen run).
    """

    name: str
    suite: str
    payload: Callable[[Any], Any]
    setup: Optional[Callable[[], Any]] = None
    ops_per_call: int = 1
    tags: Tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    derive: Optional[Callable[[Any, Any], Dict[str, Any]]] = None
    bands: Tuple[MetricBand, ...] = ()
    samples: Optional[int] = None
    calibrate: bool = True

    @property
    def full_name(self) -> str:
        return f"{self.suite}/{self.name}"


SuiteFactory = Callable[[str], List[Benchmark]]


class BenchmarkRegistry:
    """Named suites of benchmarks, built lazily from factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, SuiteFactory] = {}

    def add_suite(self, name: str, factory: SuiteFactory) -> None:
        if name in self._factories:
            raise ValueError(f"suite {name!r} already registered")
        self._factories[name] = factory

    def suite(self, name: str):
        """Decorator form of :meth:`add_suite`."""
        def register(factory: SuiteFactory) -> SuiteFactory:
            self.add_suite(name, factory)
            return factory
        return register

    def remove_suite(self, name: str) -> None:
        self._factories.pop(name, None)

    def suites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def build(self, name: str, preset: str = "small") -> List[Benchmark]:
        """Instantiate a suite's benchmarks for *preset*.

        Validates the factory's output: unique names, correct suite
        attribution, positive op counts.
        """
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}; "
                             f"expected one of {PRESETS}")
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(f"unknown suite {name!r}; registered: "
                           f"{', '.join(self.suites()) or '(none)'}")
        benches = list(factory(preset))
        if not benches:
            raise ValueError(f"suite {name!r} produced no benchmarks")
        seen = set()
        for b in benches:
            if b.suite != name:
                raise ValueError(f"benchmark {b.name!r} claims suite "
                                 f"{b.suite!r} inside suite {name!r}")
            if b.name in seen:
                raise ValueError(f"duplicate benchmark {b.name!r} "
                                 f"in suite {name!r}")
            if b.ops_per_call <= 0:
                raise ValueError(f"benchmark {b.name!r}: ops_per_call "
                                 f"must be positive")
            seen.add(b.name)
        return benches

    def describe(self, preset: str = "small"
                 ) -> Dict[str, List[Dict[str, Any]]]:
        """Instantiate every suite and summarize it (the ``list`` verb)."""
        out: Dict[str, List[Dict[str, Any]]] = {}
        for name in self.suites():
            out[name] = [{
                "name": b.name,
                "ops_per_call": b.ops_per_call,
                "tags": list(b.tags),
                "params": dict(b.params),
                "bands": [f"{band.metric}~{band.expected}"
                          f"@{band.rel_tol:g}" for band in b.bands],
            } for b in self.build(name, preset)]
        return out


#: The process-wide default registry.
registry = BenchmarkRegistry()

_BUILTIN_SUITES = ("engine", "families", "service", "verify", "cluster",
                   "autotune")
_loaded_builtins = False


def load_builtin_suites() -> Tuple[str, ...]:
    """Import the built-in suite modules (idempotent).

    Importing :mod:`repro.bench.suites` registers the engine, families,
    service, verify and cluster suites against the default registry.
    """
    global _loaded_builtins
    if not _loaded_builtins:
        from . import suites  # noqa: F401  (import registers suites)
        _loaded_builtins = True
    return _BUILTIN_SUITES
