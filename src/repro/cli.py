"""Command-line interface: regenerate any paper table or figure, or run
the serving layer.

Usage::

    python -m repro table1
    python -m repro fig8 --widths 64,128,256
    python -m repro fig7 --ops 200000 --seed 1
    python -m repro crosscheck --backend numpy
    python -m repro verify --width 64 --window 8 --vectors 100000
    python -m repro bench run --suite service --preset small
    python -m repro bench gate
    python -m repro loadgen --ops 100000 --workload biased
    python -m repro serve --port 8471
    python -m repro all

Results are printed and also written under ``results/`` (or
``$REPRO_RESULTS_DIR``).  Every experiment command runs inside an
instrumented :class:`repro.engine.RunContext`: ``--seed`` roots all
randomness and ``--backend`` selects the engine backend for gate-level
simulation.  Unless ``--no-save`` is given, every command also writes
``results/<command>_manifest.json`` recording the seed, backend,
gate-eval counters, per-phase wall times and trace events of the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from . import __version__
from . import experiments as ex
from .engine import RunContext, available_backends, set_default_context
from .engine.context import DEFAULT_SEED
from .reporting import save_artifact, save_json

__all__ = ["main"]


def _parse_widths(spec: Optional[str], default) -> List[int]:
    if not spec:
        return list(default)
    return [int(tok) for tok in spec.split(",") if tok]


def _cmd_table1(args, ctx) -> str:
    return ex.table1(_parse_widths(args.widths,
                                   (16, 32, 64, 128, 256, 512, 1024,
                                    2048, 4096)), ctx=ctx).render()


def _cmd_theorem1(args, ctx) -> str:
    return ex.theorem1(max_k=args.max_k, seed=args.seed, ctx=ctx).render()


def _cmd_schilling(args, ctx) -> str:
    return ex.schilling_table(ctx=ctx).render()


def _cmd_fig8(args, ctx) -> str:
    widths = _parse_widths(args.widths, ex.DEFAULT_BITWIDTHS)
    delay, area, chart_d, chart_a = ex.fig8_tables(bitwidths=widths, ctx=ctx)
    return "\n\n".join([delay.render(), area.render(), chart_d, chart_a])


def _cmd_fig7(args, ctx) -> str:
    table, diagram = ex.fig7_trace(width=args.width, operations=args.ops,
                                   seed=args.seed, ctx=ctx)
    return table.render() + "\n\nTiming diagram (first ops):\n" + diagram


def _cmd_errors(args, ctx) -> str:
    widths = _parse_widths(args.widths, (64, 128, 256, 512, 1024))
    return ex.error_rate_table(widths, samples=args.samples,
                               seed=args.seed, ctx=ctx).render()


def _cmd_sharing(args, ctx) -> str:
    widths = _parse_widths(args.widths, (64, 128, 256, 512))
    return ex.sharing_ablation(widths, ctx=ctx).render()


def _cmd_window(args, ctx) -> str:
    return ex.window_sweep(width=args.width, ctx=ctx).render()


def _cmd_attack(args, ctx) -> str:
    return ex.crypto_attack_experiment(
        corpus_bytes=args.corpus, key_bits=args.key_bits, ctx=ctx).render()


def _cmd_futurework(args, ctx) -> str:
    return ex.future_work_table(ctx=ctx).render()


def _cmd_faults(args, ctx) -> str:
    return ex.fault_table(width=min(args.width, 16), ctx=ctx).render()


def _cmd_cpu(args, ctx) -> str:
    return ex.processor_table(width=args.width, ctx=ctx).render()


def _cmd_dsp(args, ctx) -> str:
    return ex.dsp_table(ctx=ctx).render()


def _cmd_crosscheck(args, ctx) -> str:
    widths = _parse_widths(args.widths, (16, 32, 64))
    return ex.crosscheck_table(widths, vectors=args.samples,
                               ctx=ctx).render()


def _cmd_loadgen(args, ctx) -> str:
    from .service import run_loadgen

    connect = None
    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"--connect wants HOST:PORT, "
                             f"got {args.connect!r}")
        connect = (host, int(port))
    report = run_loadgen(
        workload=args.workload, ops=args.ops, width=args.width,
        window=args.window, chunk=args.chunk,
        concurrency=args.concurrency, queue_capacity=args.queue_capacity,
        max_batch_ops=args.max_batch, backend=args.service_backend,
        alpha=args.alpha, adversarial_fraction=args.adversarial_fraction,
        target=args.target, workers=args.workers,
        shard_policy=args.shard_policy, transport=args.transport,
        connect=connect, ctx=ctx)
    if not args.no_save:
        path = save_json("loadgen_metrics.json", report.as_dict())
        print(f"[metrics: {path}]", file=sys.stderr)
    text = report.render()
    if args.strict:
        problems = _strict_problems(report, args)
        if problems:
            print(text)
            for problem in problems:
                print(f"strict: {problem}", file=sys.stderr)
            raise SystemExit(1)
    return text


def _strict_problems(report, args) -> List[str]:
    """CI-smoke invariants: any entry here fails a ``--strict`` run."""
    problems = []
    if report.ops != args.ops:
        problems.append(f"served {report.ops} of {args.ops} requested ops")
    if report.rejected:
        problems.append(f"{report.rejected} rejected submissions")
    if report.timeouts:
        problems.append(f"{report.timeouts} request timeouts")
    for key in ("worker_restarts", "worker_failures", "degraded_requests",
                "redirected_requests", "failed_requests"):
        value = report.params.get(key, 0)
        if value:
            problems.append(f"{key} = {value}")
    return problems


# name -> (handler, help text, extra per-command flags)
_COMMANDS: Dict[str, Tuple[Callable, str, Tuple[str, ...]]] = {
    "table1": (_cmd_table1,
               "Table 1: longest-run-of-ones bounds per bitwidth",
               ("widths",)),
    "theorem1": (_cmd_theorem1,
                 "Theorem 1: E[flips to k heads] three ways "
                 "(closed form / solve / Monte Carlo)",
                 ("max_k",)),
    "schilling": (_cmd_schilling,
                  "Schilling statistics of the longest head run",
                  ()),
    "fig8": (_cmd_fig8,
             "Fig. 8: delay and area versus bitwidth for every adder",
             ("widths",)),
    "fig7": (_cmd_fig7,
             "Fig. 7: VLSA timing diagram and average latency",
             ("width", "ops")),
    "errors": (_cmd_errors,
               "ACA error rates: exact model versus Monte Carlo",
               ("widths", "samples")),
    "sharing": (_cmd_sharing,
                "Fig. 4: area saved by sharing ACA strips with the "
                "detector/recovery logic",
                ("widths",)),
    "window": (_cmd_window,
               "Window sweep: error probability and delay versus "
               "speculation window",
               ("width",)),
    "attack": (_cmd_attack,
               "Section 1: ciphertext-only attack with exact versus "
               "speculative adders",
               ("corpus", "key_bits")),
    "futurework": (_cmd_futurework,
                   "Section 6: speculative multiplier and friends",
                   ()),
    "faults": (_cmd_faults,
               "Stuck-at fault coverage of the ACA via ATPG",
               ("width",)),
    "cpu": (_cmd_cpu,
            "TinyCpu with a VLSA ALU: CPI versus a fixed-latency adder",
            ("width",)),
    "dsp": (_cmd_dsp,
            "Fixed-point FIR on speculative adders: stall-rate "
            "workload dependence",
            ("width",)),
    "crosscheck": (_cmd_crosscheck,
                   "Every engine backend versus the functional model",
                   ("widths", "samples")),
    "loadgen": (_cmd_loadgen,
                "Drive a workload through the in-process VLSA service "
                "and report latency/throughput metrics",
                ("width", "ops", "loadgen")),
}

# Reusable per-command flag groups (attached only where relevant).
_FLAG_BUILDERS: Dict[str, Callable[[argparse.ArgumentParser], None]] = {}


def _flag(name: str):
    def register(fn):
        _FLAG_BUILDERS[name] = fn
        return fn
    return register


@_flag("widths")
def _add_widths(p):
    p.add_argument("--widths", metavar="N,N,...",
                   help="comma-separated bitwidths to sweep "
                        "(default: the command's paper sweep)")


@_flag("width")
def _add_width(p):
    p.add_argument("--width", type=int, default=64,
                   help="operand bitwidth (default: %(default)s)")


@_flag("ops")
def _add_ops(p):
    p.add_argument("--ops", type=int, default=100000,
                   help="operations to stream (default: %(default)s)")


@_flag("samples")
def _add_samples(p):
    p.add_argument("--samples", type=int, default=20000,
                   help="Monte Carlo samples (default: %(default)s)")


@_flag("max_k")
def _add_max_k(p):
    p.add_argument("--max-k", dest="max_k", type=int, default=12,
                   help="largest run length k to tabulate "
                        "(default: %(default)s)")


@_flag("corpus")
def _add_corpus(p):
    p.add_argument("--corpus", type=int, default=4096,
                   help="plaintext corpus size in bytes "
                        "(default: %(default)s)")


@_flag("key_bits")
def _add_key_bits(p):
    p.add_argument("--key-bits", dest="key_bits", type=int, default=8,
                   help="candidate key-space size in bits "
                        "(default: %(default)s)")


@_flag("loadgen")
def _add_loadgen(p):
    from .service import EXECUTOR_BACKENDS, WORKLOADS

    p.add_argument("--workload", choices=WORKLOADS, default="uniform",
                   help="operand distribution (default: %(default)s)")
    p.add_argument("--window", type=int, default=None,
                   help="speculation window (default: 99.99%% window)")
    p.add_argument("--chunk", type=int, default=1024,
                   help="additions per client batch (default: %(default)s)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="concurrent client tasks (default: %(default)s)")
    p.add_argument("--queue-capacity", dest="queue_capacity", type=int,
                   default=64,
                   help="admission queue capacity (default: %(default)s)")
    p.add_argument("--max-batch", dest="max_batch", type=int, default=8192,
                   help="max additions per coalesced service batch "
                        "(default: %(default)s)")
    p.add_argument("--service-backend", dest="service_backend",
                   choices=EXECUTOR_BACKENDS, default=None,
                   help="service executor backend (default: numpy when "
                        "the width fits a machine word)")
    p.add_argument("--alpha", type=float, default=0.75,
                   help="per-bit one-probability for the biased workload "
                        "(default: %(default)s)")
    p.add_argument("--adversarial-fraction", dest="adversarial_fraction",
                   type=float, default=0.1,
                   help="stalling fraction for the mixed workload "
                        "(default: %(default)s)")
    p.add_argument("--target", choices=("service", "cluster", "tcp"),
                   default="service",
                   help="serving target: one in-process service, a "
                        "multi-process cluster, or real-socket clients "
                        "against a TCP edge (default: %(default)s)")
    p.add_argument("--workers", type=int, default=2,
                   help="cluster worker processes, --target cluster/tcp "
                        "(default: %(default)s; 0 with --target tcp "
                        "self-hosts a plain in-process service)")
    p.add_argument("--shard-policy", dest="shard_policy",
                   choices=("round_robin", "least_loaded", "hash"),
                   default="round_robin",
                   help="cluster shard policy (default: %(default)s)")
    p.add_argument("--transport", choices=("pipe", "shm"),
                   default="pipe",
                   help="cluster wire: pickle-over-pipe or zero-copy "
                        "shared-memory rings (default: %(default)s)")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="drive an external already-running server "
                        "(--target tcp only; default: self-host one)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on any rejected/timed-out/degraded/"
                        "redirected request or worker restart (CI smoke)")


def _add_common_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", choices=available_backends(),
                   default="bigint",
                   help="engine backend for gate-level simulation")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                   help="root RNG seed (default: %(default)s)")
    p.add_argument("--manifest", action="store_true",
                   help="write results/<command>_manifest.json even "
                        "with --no-save (manifests are otherwise "
                        "written by default)")
    p.add_argument("--no-save", action="store_true",
                   help="print only, skip writing results/")


def _run_command(name: str, args) -> str:
    """Run one experiment command inside a fresh instrumented context."""
    ctx = RunContext(seed=args.seed, backend=args.backend, label=name)
    set_default_context(ctx)
    handler = _COMMANDS[name][0]
    with ctx.phase(name):
        text = handler(args, ctx)
    if args.manifest or not args.no_save:
        path = save_json(f"{name}_manifest.json", ctx.as_manifest())
        print(f"[manifest: {path}]", file=sys.stderr)
    return text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vlsa-repro",
        description="Regenerate tables/figures of the VLSA paper "
                    "(DATE'08), or serve the speculative adder.")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, (_, help_text, flags) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text, description=help_text)
        for flag in flags:
            _FLAG_BUILDERS[flag](p)
        _add_common_flags(p)

    all_p = sub.add_parser(
        "all", help="run every experiment with its default arguments",
        description="Run every experiment command in sequence, saving "
                    "each artifact and manifest under results/.")
    _add_common_flags(all_p)

    from .families.base import family_names
    from .generator import DESIGN_KINDS

    exp = sub.add_parser(
        "export", help="generate RTL for a design (the paper's tool)",
        description="Emit synthesizable VHDL/Verilog for a design.  "
                    "Available design kinds (sorted): "
                    + ", ".join(sorted(DESIGN_KINDS)) + ".")
    exp.add_argument("kind", help="design kind (see the sorted list "
                                  "above; families contribute "
                                  "<family> and <family>_r entries)")
    exp.add_argument("--width", type=int, default=64,
                     help="operand bitwidth (default: %(default)s)")
    exp.add_argument("--window", type=int, default=None,
                     help="primary speculation parameter (default: the "
                          "design's own choice, e.g. the 99.99%% window)")
    exp.add_argument("--out", default="rtl_out",
                     help="output directory (default: %(default)s)")
    exp.add_argument("--library", default="umc180",
                     help="technology library (default: %(default)s)")

    srv = sub.add_parser(
        "serve", help="serve the VLSA over TCP (newline-delimited JSON)",
        description="Run a VlsaService behind a TCP front-end.  One JSON "
                    'object per line: {"a": 1, "b": 2} -> '
                    '{"sum": 3, ...}; {"cmd": "metrics"} returns the '
                    "metrics registry.")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: %(default)s)")
    srv.add_argument("--port", type=int, default=8471,
                     help="TCP port, 0 = ephemeral (default: %(default)s)")
    srv.add_argument("--width", type=int, default=64,
                     help="operand bitwidth (default: %(default)s)")
    srv.add_argument("--window", type=int, default=None,
                     help="speculation window (default: 99.99%% window)")
    srv.add_argument("--family", choices=family_names(), default="aca",
                     help="adder family to serve (default: %(default)s)")
    srv.add_argument("--recovery-cycles", dest="recovery_cycles", type=int,
                     default=1,
                     help="recovery penalty in cycles (default: %(default)s)")
    srv.add_argument("--queue-capacity", dest="queue_capacity", type=int,
                     default=1024,
                     help="admission queue capacity (default: %(default)s)")
    srv.add_argument("--max-batch", dest="max_batch", type=int,
                     default=8192,
                     help="max additions per coalesced batch "
                          "(default: %(default)s)")
    srv.add_argument("--service-backend", dest="service_backend",
                     default=None,
                     help="executor backend: numpy or bigint "
                          "(default: automatic)")
    srv.add_argument("--duration", type=float, default=None,
                     help="seconds to serve before exiting "
                          "(default: run until interrupted)")
    srv.add_argument("--workers", type=int, default=0,
                     help="worker processes for a multi-process cluster; "
                          "0 = single in-process service "
                          "(default: %(default)s)")
    srv.add_argument("--shard-policy", dest="shard_policy",
                     choices=("round_robin", "least_loaded", "hash"),
                     default="round_robin",
                     help="cluster shard policy, --workers > 0 only "
                          "(default: %(default)s)")
    srv.add_argument("--transport", choices=("pipe", "shm"),
                     default="pipe",
                     help="router<->worker transport, --workers > 0 "
                          "only: pickle-over-pipe or zero-copy "
                          "shared-memory rings (default: %(default)s)")
    srv.add_argument("--listen", default=None, metavar="HOST:PORT",
                     help="bind address as one flag; overrides "
                          "--host/--port")
    srv.add_argument("--seed", type=int, default=DEFAULT_SEED,
                     help="root RNG seed (default: %(default)s)")
    srv.add_argument("--no-save", action="store_true",
                     help="skip writing results/serve_manifest.json")

    ver = sub.add_parser(
        "verify",
        help="differential + formal verification: fuzzing, exhaustive "
             "sweeps, and BDD proofs vs the analytic model",
        description="Drive every registered ACA/VLSA implementation "
                    "(engine backends, interpreter, functional model, "
                    "VLSA machine, service executors) from one seeded "
                    "vector stream; report elementwise mismatches with "
                    "minimised reproducers, and check empirical error/"
                    "detector rates against the exact analytic model. "
                    "--method formal instead proves the recovery path "
                    "bit-exact and the error set equal to the analytic "
                    "model by BDD model counting, at full width. "
                    "Exit code 1 when anything disagrees.  "
                    "Registered families (sorted): "
                    + ", ".join(family_names()) + ".")
    ver.add_argument("--method", choices=("statistical", "exhaustive",
                                          "formal"),
                     default="statistical",
                     help="verification method: statistical fuzzing "
                          "(plus optional --exhaustive-widths), "
                          "exhaustive enumeration only, or formal BDD "
                          "proof with certificates "
                          "(default: %(default)s)")
    ver.add_argument("--width", type=int, default=64,
                     help="operand bitwidth (default: %(default)s)")
    ver.add_argument("--window", type=int, default=None,
                     help="the family's primary parameter (for ACA the "
                          "speculation window; default: the family's "
                          "own choice; formal: the tier-1 point matrix)")
    ver.add_argument("--family", choices=list(family_names()) + ["all"],
                     default=None,
                     help="adder family to verify (default: aca; "
                          "--method formal defaults to all families)")
    ver.add_argument("--vectors", type=int, default=10000,
                     help="fuzz vectors per stream (default: %(default)s)")
    ver.add_argument("--streams", default=None, metavar="S,S,...",
                     help="vector streams to drive (default: "
                          "uniform,biased,adversarial,boundary; "
                          "'attack' replays a captured cipher trace)")
    ver.add_argument("--impls", default=None, metavar="I,I,...",
                     help="implementation set (default: every builtin "
                          "applicable at this width)")
    ver.add_argument("--exhaustive-widths", dest="exhaustive_widths",
                     default=None, metavar="N,N,...",
                     help="additionally sweep ALL operand pairs for "
                          "these small widths, every window, with exact "
                          "count-equality checks")
    ver.add_argument("--stride", type=int, default=1,
                     help="exhaustive subsampling stride "
                          "(1 = complete; default: %(default)s)")
    ver.add_argument("--recovery-cycles", dest="recovery_cycles",
                     type=int, default=1,
                     help="recovery penalty in cycles "
                          "(default: %(default)s)")
    ver.add_argument("--chunk", type=int, default=4096,
                     help="vectors per comparison chunk "
                          "(default: %(default)s)")
    ver.add_argument("--z", type=float, default=5.0,
                     help="sigma bound for the binomial rate checks "
                          "(default: %(default)s)")
    ver.add_argument("--no-shrink", dest="no_shrink", action="store_true",
                     help="skip reproducer minimisation on mismatches")
    ver.add_argument("--seed", type=int, default=DEFAULT_SEED,
                     help="root RNG seed (default: %(default)s)")
    ver.add_argument("--no-save", action="store_true",
                     help="print only, skip writing results/")

    par = sub.add_parser(
        "pareto",
        help="cross-family delay/area/error-rate Pareto study",
        description="Characterise a parameter sweep of every registered "
                    "adder family gate-level under one technology "
                    "library, score each point with the VLSA "
                    "average-time model, compare against the fastest "
                    "exact library adder, and mark the per-width Pareto "
                    "front over (avg time, area, error rate).  Writes "
                    "results/pareto_families.{json,md}.  Registered "
                    "families (sorted): " + ", ".join(family_names())
                    + ".")
    par.add_argument("--widths", metavar="N,N,...", default=None,
                     help="bitwidths to study (default: 8,16,32,64)")
    par.add_argument("--families", metavar="F,F,...", default=None,
                     help="families to sweep (default: every registered "
                          "family)")
    par.add_argument("--library", default="umc180",
                     help="technology library (default: %(default)s)")
    par.add_argument("--seed", type=int, default=DEFAULT_SEED,
                     help="root RNG seed (default: %(default)s)")
    par.add_argument("--no-save", action="store_true",
                     help="print only, skip writing results/")

    aut = sub.add_parser(
        "autotune",
        help="SLA-driven window/batch autotuning (what-if or online)",
        description="Search every registered family's analytic error "
                    "model for the best (family, window, batch) "
                    "configuration under SLA knobs.  Offline (default): "
                    "a what-if decision for a synthetic operand profile "
                    "— prints the chosen config with its forecast and "
                    "the ranked alternatives.  --online: drive a "
                    "workload (default: the nonstationary drift stream) "
                    "through a live autotuned VlsaService and grade "
                    "per-phase convergence with the verify subsystem's "
                    "binomial cross-check.")
    aut.add_argument("--width", type=int, default=64,
                     help="operand bitwidth (default: %(default)s)")
    aut.add_argument("--sla-stall-rate", type=float, default=0.02,
                     metavar="Y", dest="sla_stall_rate",
                     help="SLA: stall rate <= Y (default: %(default)s; "
                          "negative disables)")
    aut.add_argument("--sla-p99", type=float, default=None, metavar="X",
                     dest="sla_p99",
                     help="SLA: p99 latency <= X cycles, batch queueing "
                          "included (default: off)")
    aut.add_argument("--families", metavar="F,F,...", default=None,
                     help="families to consider (default: all registered)")
    aut.add_argument("--windows", metavar="W,W,...", default=None,
                     help="primary-knob ladder (default: geometric)")
    aut.add_argument("--batch-sizes", metavar="B,B,...", default=None,
                     dest="batch_sizes",
                     help="max_batch_ops candidates (default: 4096)")
    aut.add_argument("--p-propagate", type=float, default=0.5,
                     dest="p_propagate",
                     help="offline profile: per-bit propagate "
                          "probability (default: %(default)s)")
    aut.add_argument("--recovery-cycles", type=int, default=1,
                     dest="recovery_cycles",
                     help="recovery penalty in cycles (default: "
                          "%(default)s)")
    aut.add_argument("--online", action="store_true",
                     help="run the online controller against --workload")
    aut.add_argument("--workload", default="drift",
                     help="online workload (default: %(default)s)")
    aut.add_argument("--ops", type=int, default=60000,
                     help="online: total additions (default: %(default)s)")
    aut.add_argument("--chunk", type=int, default=512,
                     help="online: additions per batch (default: "
                          "%(default)s)")
    aut.add_argument("--alpha", type=float, default=0.75,
                     help="online: biased-phase bit probability "
                          "(default: %(default)s)")
    aut.add_argument("--decide-every", type=int, default=2048,
                     dest="decide_every",
                     help="online: decision cadence in ops (default: "
                          "%(default)s)")
    aut.add_argument("--z", type=float, default=3.0,
                     help="binomial cross-check z (default: %(default)s)")
    aut.add_argument("--strict", action="store_true",
                     help="exit 1 when no config is predicted safe "
                          "(offline) or convergence/SLA fails (online)")
    aut.add_argument("--seed", type=int, default=DEFAULT_SEED,
                     help="root RNG seed (default: %(default)s)")
    aut.add_argument("--no-save", action="store_true",
                     help="print only, skip writing results/")

    from .bench.cli import add_bench_parser
    add_bench_parser(sub)
    return parser


def _run_serve(args) -> int:
    import asyncio
    import signal

    from .service import VlsaServer, VlsaService
    from .service.server import install_uvloop

    if args.listen:
        host, _, port = args.listen.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"--listen wants HOST:PORT, got "
                             f"{args.listen!r}")
        args.host, args.port = host, int(port)

    ctx = RunContext(seed=args.seed, label="serve")
    if args.workers > 0:
        from .cluster import ClusterConfig, ClusterRouter

        service = ClusterRouter(ClusterConfig(
            width=args.width, window=args.window, family=args.family,
            recovery_cycles=args.recovery_cycles,
            workers=args.workers, backend=args.service_backend,
            shard_policy=args.shard_policy,
            transport=args.transport,
            max_batch_ops=args.max_batch,
            worker_queue_ops=args.queue_capacity * args.max_batch), ctx=ctx)
    else:
        service = VlsaService(width=args.width, window=args.window,
                              recovery_cycles=args.recovery_cycles,
                              queue_capacity=args.queue_capacity,
                              max_batch_ops=args.max_batch,
                              backend=args.service_backend, ctx=ctx,
                              family=args.family)
    print(f"serving {args.family} width={service.width} "
          f"window={service.window} "
          f"backend={service.backend_name} on "
          f"{args.host}:{args.port or '(ephemeral)'}", file=sys.stderr)

    async def amain() -> None:
        # A signal flips the event; the `async with` exit then drains
        # admitted work, stops the batcher/cluster, and only after that
        # does the manifest/metrics flush below run — graceful, not
        # KeyboardInterrupt-through-the-event-loop.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                hooked.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / platform without signal support
        try:
            async with VlsaServer(service, host=args.host,
                                  port=args.port) as server:
                host, port = server.address
                print(f"listening on {host}:{port}", file=sys.stderr,
                      flush=True)
                if args.duration is None:
                    await stop.wait()
                else:
                    try:
                        await asyncio.wait_for(stop.wait(), args.duration)
                    except asyncio.TimeoutError:
                        pass
            if stop.is_set():
                print("signal received; drained and shut down",
                      file=sys.stderr)
        finally:
            for sig in hooked:
                loop.remove_signal_handler(sig)

    if install_uvloop():
        print("event loop: uvloop", file=sys.stderr)
    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        # Fallback when signal handlers could not be installed.
        print("interrupted; shutting down", file=sys.stderr)
    if not args.no_save:
        path = save_json("serve_manifest.json", ctx.as_manifest())
        print(f"[manifest: {path}]", file=sys.stderr)
    print(service.metrics_prometheus(), end="")
    return 0


def _run_pareto(args) -> int:
    from .families import run_pareto_study, write_pareto_report
    from .reporting import results_dir

    ctx = RunContext(seed=args.seed, label="pareto")
    set_default_context(ctx)
    widths = _parse_widths(args.widths, (8, 16, 32, 64))
    families = (tuple(f for f in args.families.split(",") if f)
                if args.families else None)
    with ctx.phase("pareto"):
        report = run_pareto_study(widths=widths, families=families,
                                  library=args.library)
    front = [p for p in report.points if p.on_front]
    print(f"pareto study: {len(report.points)} points across "
          f"{len(widths)} widths; {len(front)} on the front")
    for p in sorted(front, key=lambda p: (p.width, p.avg_time)):
        print(f"  width {p.width:>3}  {p.label:<28} "
              f"avg_time={p.avg_time:.3f}  area={p.area:.1f}  "
              f"err={p.error_rate:.3g}  "
              f"speedup={p.speedup_vs_baseline:.2f}x")
    if not args.no_save:
        paths = write_pareto_report(report, out_dir=results_dir())
        manifest = save_json("pareto_manifest.json", ctx.as_manifest())
        for path in paths + [manifest]:
            print(f"[saved: {path}]", file=sys.stderr)
    return 0


def _parse_int_list(text):
    return tuple(int(x) for x in text.split(",") if x) if text else None


def _run_autotune(args) -> int:
    from .autotune import SLA, run_online, what_if

    ctx = RunContext(seed=args.seed, label="autotune")
    set_default_context(ctx)
    sla = SLA(stall_rate=(None if args.sla_stall_rate is not None
                          and args.sla_stall_rate < 0
                          else args.sla_stall_rate),
              p99_latency_cycles=args.sla_p99)
    families = (tuple(f for f in args.families.split(",") if f)
                if args.families else None)
    windows = _parse_int_list(args.windows)
    batch_sizes = _parse_int_list(args.batch_sizes)

    if args.online:
        with ctx.phase("autotune-online"):
            report = run_online(
                width=args.width, sla=sla, ops=args.ops,
                workload=args.workload, chunk=args.chunk, alpha=args.alpha,
                families=families, windows=windows, batch_sizes=batch_sizes,
                recovery_cycles=args.recovery_cycles,
                decide_every_ops=args.decide_every, z=args.z,
                seed=args.seed, ctx=ctx)
        print(f"autotune online: {report['workload']} workload, "
              f"{report['ops']} ops, width {report['width']}, "
              f"SLA stall<={sla.stall_rate}")
        for ph in report["phases"]:
            verdict = "converged" if ph["converged"] else "NOT CONVERGED"
            print(f"  phase {ph['name']:<12} -> "
                  f"{ph['final_family']}/w={ph['final_window']}  "
                  f"observed={ph['observed_stall_rate']:.5f}  "
                  f"predicted={ph['predicted_stall_rate']:.5f}  "
                  f"[{verdict}]")
        final = report["final"]
        print(f"final config: {final['family']} window={final['window']} "
              f"batch={final['batch_ops']}; "
              f"{report['reconfigurations']} reconfigurations, "
              f"sla_met={report['sla_met']}")
        if not args.no_save:
            path = save_json("autotune_report.json", report)
            trace = save_json("autotune_decisions.json",
                              report["decisions"])
            manifest = save_json("autotune_manifest.json",
                                 ctx.as_manifest())
            print(f"[report: {path}]\n[decisions: {trace}]"
                  f"\n[manifest: {manifest}]", file=sys.stderr)
        if args.strict and not (report["converged"] and report["sla_met"]):
            return 1
        return 0

    with ctx.phase("autotune-whatif"):
        decision = what_if(args.width, sla, p_propagate=args.p_propagate,
                           families=families, windows=windows,
                           batch_sizes=batch_sizes,
                           recovery_cycles=args.recovery_cycles)
    chosen = decision.chosen
    cand = chosen.candidate
    print(f"autotune what-if: width {args.width}, "
          f"p_propagate={args.p_propagate}, SLA stall<={sla.stall_rate} "
          f"p99<={sla.p99_latency_cycles}")
    print(f"chosen: {cand.family} {cand.params} batch={cand.batch_ops}  "
          f"(considered {decision.considered}, "
          f"feasible={decision.feasible})")
    print(f"  forecast: stall={chosen.stall_rate:.6g}  "
          f"mean={chosen.mean_latency_cycles:.6f} cycles  "
          f"p99={chosen.p99_latency_cycles:.1f} cycles  "
          f"objective={chosen.avg_time_units:.3f}")
    print("alternatives:")
    for alt in decision.alternatives:
        c = alt.candidate
        print(f"  {c.family:<10} w={c.primary:<4} batch={c.batch_ops:<6} "
              f"stall={alt.stall_rate:<12.6g} "
              f"objective={alt.avg_time_units:.3f}")
    if not args.no_save:
        path = save_json("autotune_report.json", decision.as_dict())
        manifest = save_json("autotune_manifest.json", ctx.as_manifest())
        print(f"[report: {path}]\n[manifest: {manifest}]", file=sys.stderr)
    if args.strict and not decision.feasible:
        return 1
    return 0


def _run_verify(args) -> int:
    from .families import family_names
    from .verify import (DEFAULT_STREAMS, DifferentialVerifier, run_exhaustive,
                         run_formal)

    ctx = RunContext(seed=args.seed, label="verify")
    set_default_context(ctx)

    report = None
    if args.method == "formal":
        families = (list(family_names())
                    if args.family in (None, "all") else [args.family])
        report = run_formal(families=families, width=args.width,
                            window=args.window, ctx=ctx, seed=args.seed)
    else:
        if args.family == "all":
            print("--family all is only supported with --method formal",
                  file=sys.stderr)
            return 2
        family = args.family or "aca"
        streams = (tuple(s for s in args.streams.split(",") if s)
                   if args.streams else DEFAULT_STREAMS)
        impls = (tuple(i for i in args.impls.split(",") if i)
                 if args.impls else None)
        with ctx.phase("verify"):
            if args.vectors > 0 and args.method == "statistical":
                verifier = DifferentialVerifier(
                    width=args.width, window=args.window, impls=impls,
                    recovery_cycles=args.recovery_cycles, z=args.z, ctx=ctx,
                    shrink=not args.no_shrink, family=family)
                report = verifier.run(vectors=args.vectors, streams=streams,
                                      seed=args.seed, chunk=args.chunk)
            exhaustive_widths = args.exhaustive_widths
            if args.method == "exhaustive" and not exhaustive_widths:
                exhaustive_widths = str(args.width)
            if exhaustive_widths:
                grid = run_exhaustive(
                    _parse_widths(exhaustive_widths, ()), impls=impls,
                    recovery_cycles=args.recovery_cycles, stride=args.stride,
                    chunk=args.chunk, ctx=ctx, shrink=not args.no_shrink,
                    family=family)
                report = report.merge(grid) if report is not None else grid
    if report is None:
        print("nothing to do: --vectors 0 and no --exhaustive-widths",
              file=sys.stderr)
        return 2

    text = report.render()
    print(text)
    if not args.no_save:
        path = save_artifact("verify.txt", text)
        json_path = save_json("verify_report.json", report.as_dict())
        manifest_path = save_json("verify_manifest.json", ctx.as_manifest())
        print(f"\n[saved to {path}]\n[report: {json_path}]"
              f"\n[manifest: {manifest_path}]", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "export":
        from .generator import export_design

        written = export_design(args.kind, args.width, args.out,
                                window=args.window, library=args.library)
        for path in written:
            print(path)
        return 0

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "verify":
        return _run_verify(args)

    if args.command == "pareto":
        return _run_pareto(args)

    if args.command == "autotune":
        return _run_autotune(args)

    if args.command == "bench":
        from .bench.cli import run_bench_command

        return run_bench_command(args)

    if args.command == "all":
        chunks = []
        for name in _COMMANDS:
            defaults = parser.parse_args(
                [name, "--backend", args.backend, "--seed", str(args.seed)]
                + (["--manifest"] if args.manifest else [])
                + (["--no-save"] if args.no_save else []))
            text = _run_command(name, defaults)
            chunks.append(f"==== {name} ====\n{text}")
            if not args.no_save:
                save_artifact(f"{name}.txt", text)
        print("\n\n".join(chunks))
        return 0

    text = _run_command(args.command, args)
    print(text)
    if not args.no_save:
        path = save_artifact(f"{args.command}.txt", text)
        print(f"\n[saved to {path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
