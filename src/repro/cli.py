"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro fig8 --widths 64,128,256
    python -m repro fig7 --ops 200000 --seed 1
    python -m repro crosscheck --backend numpy
    python -m repro all

Results are printed and also written under ``results/`` (or
``$REPRO_RESULTS_DIR``).  Every command runs inside an instrumented
:class:`repro.engine.RunContext`: ``--seed`` roots all randomness,
``--backend`` selects the engine backend for gate-level simulation, and
``--manifest`` additionally writes ``results/<command>_manifest.json``
recording the seed, backend, gate-eval counters and per-phase wall
times of the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import experiments as ex
from .engine import RunContext, available_backends, set_default_context
from .engine.context import DEFAULT_SEED
from .reporting import save_artifact, save_json

__all__ = ["main"]


def _parse_widths(spec: Optional[str], default) -> List[int]:
    if not spec:
        return list(default)
    return [int(tok) for tok in spec.split(",") if tok]


def _cmd_table1(args, ctx) -> str:
    return ex.table1(_parse_widths(args.widths,
                                   (16, 32, 64, 128, 256, 512, 1024,
                                    2048, 4096)), ctx=ctx).render()


def _cmd_theorem1(args, ctx) -> str:
    return ex.theorem1(max_k=args.max_k, seed=args.seed, ctx=ctx).render()


def _cmd_schilling(args, ctx) -> str:
    return ex.schilling_table(ctx=ctx).render()


def _cmd_fig8(args, ctx) -> str:
    widths = _parse_widths(args.widths, ex.DEFAULT_BITWIDTHS)
    delay, area, chart_d, chart_a = ex.fig8_tables(bitwidths=widths, ctx=ctx)
    return "\n\n".join([delay.render(), area.render(), chart_d, chart_a])


def _cmd_fig7(args, ctx) -> str:
    table, diagram = ex.fig7_trace(width=args.width, operations=args.ops,
                                   seed=args.seed, ctx=ctx)
    return table.render() + "\n\nTiming diagram (first ops):\n" + diagram


def _cmd_errors(args, ctx) -> str:
    widths = _parse_widths(args.widths, (64, 128, 256, 512, 1024))
    return ex.error_rate_table(widths, samples=args.samples,
                               seed=args.seed, ctx=ctx).render()


def _cmd_sharing(args, ctx) -> str:
    widths = _parse_widths(args.widths, (64, 128, 256, 512))
    return ex.sharing_ablation(widths, ctx=ctx).render()


def _cmd_window(args, ctx) -> str:
    return ex.window_sweep(width=args.width, ctx=ctx).render()


def _cmd_attack(args, ctx) -> str:
    return ex.crypto_attack_experiment(
        corpus_bytes=args.corpus, key_bits=args.key_bits, ctx=ctx).render()


def _cmd_futurework(args, ctx) -> str:
    return ex.future_work_table(ctx=ctx).render()


def _cmd_faults(args, ctx) -> str:
    return ex.fault_table(width=min(args.width, 16), ctx=ctx).render()


def _cmd_cpu(args, ctx) -> str:
    return ex.processor_table(width=args.width, ctx=ctx).render()


def _cmd_dsp(args, ctx) -> str:
    return ex.dsp_table(ctx=ctx).render()


def _cmd_crosscheck(args, ctx) -> str:
    widths = _parse_widths(args.widths, (16, 32, 64))
    return ex.crosscheck_table(widths, vectors=args.samples,
                               ctx=ctx).render()


_COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "theorem1": _cmd_theorem1,
    "schilling": _cmd_schilling,
    "fig8": _cmd_fig8,
    "fig7": _cmd_fig7,
    "errors": _cmd_errors,
    "sharing": _cmd_sharing,
    "window": _cmd_window,
    "attack": _cmd_attack,
    "futurework": _cmd_futurework,
    "faults": _cmd_faults,
    "cpu": _cmd_cpu,
    "dsp": _cmd_dsp,
    "crosscheck": _cmd_crosscheck,
}


def _add_common_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", choices=available_backends(),
                   default="bigint",
                   help="engine backend for gate-level simulation")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                   help="root RNG seed (default: %(default)s)")
    p.add_argument("--manifest", action="store_true",
                   help="also write results/<command>_manifest.json")
    p.add_argument("--no-save", action="store_true",
                   help="print only, skip writing results/")


def _run_command(name: str, args) -> str:
    """Run one experiment command inside a fresh instrumented context."""
    ctx = RunContext(seed=args.seed, backend=args.backend, label=name)
    set_default_context(ctx)
    with ctx.phase(name):
        text = _COMMANDS[name](args, ctx)
    if args.manifest and not args.no_save:
        path = save_json(f"{name}_manifest.json", ctx.as_manifest())
        print(f"[manifest: {path}]", file=sys.stderr)
    return text


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="vlsa-repro",
        description="Regenerate tables/figures of the VLSA paper (DATE'08).")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _COMMANDS:
        p = sub.add_parser(name)
        p.add_argument("--widths", help="comma-separated bitwidths")
        p.add_argument("--width", type=int, default=64)
        p.add_argument("--ops", type=int, default=100000)
        p.add_argument("--samples", type=int, default=20000)
        p.add_argument("--max-k", dest="max_k", type=int, default=12)
        p.add_argument("--corpus", type=int, default=4096)
        p.add_argument("--key-bits", dest="key_bits", type=int, default=8)
        _add_common_flags(p)
    all_p = sub.add_parser("all", help="run every experiment")
    _add_common_flags(all_p)

    exp = sub.add_parser(
        "export", help="generate RTL for a design (the paper's tool)")
    exp.add_argument("kind", help="design kind, e.g. aca, vlsa, detector, "
                                  "recovery, multiplier, or any adder name")
    exp.add_argument("--width", type=int, default=64)
    exp.add_argument("--window", type=int, default=None)
    exp.add_argument("--out", default="rtl_out")
    exp.add_argument("--library", default="umc180")

    args = parser.parse_args(argv)

    if args.command == "export":
        from .generator import export_design

        written = export_design(args.kind, args.width, args.out,
                                window=args.window, library=args.library)
        for path in written:
            print(path)
        return 0

    if args.command == "all":
        chunks = []
        defaults = parser.parse_args(
            ["table1", "--backend", args.backend, "--seed", str(args.seed)]
            + (["--manifest"] if args.manifest else [])
            + (["--no-save"] if args.no_save else []))
        for name in _COMMANDS:
            defaults.command = name
            text = _run_command(name, defaults)
            chunks.append(f"==== {name} ====\n{text}")
            if not args.no_save:
                save_artifact(f"{name}.txt", text)
        print("\n\n".join(chunks))
        return 0

    text = _run_command(args.command, args)
    print(text)
    if not args.no_save:
        path = save_artifact(f"{args.command}.txt", text)
        print(f"\n[saved to {path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
