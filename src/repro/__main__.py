"""Module entry point: ``python -m repro <experiment>``."""

import os
import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # stdout was piped into something like ``head`` that closed early;
    # swallow the tail of the output instead of tracebacking.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(0)
