"""Pluggable cluster transports: the pipe/pickle path and a
zero-copy shared-memory ring-buffer path.

The router and its workers exchange :mod:`repro.cluster.protocol`
messages.  *How* those messages travel is this module's concern, behind
one small interface:

* :class:`PipeTransport` — the original wire: one duplex
  ``multiprocessing`` pipe per worker, pickle framing for free.  Kept
  both as the portable fallback and as the differential reference the
  shm path is verified against.
* :class:`ShmRingTransport` — two fixed-slot single-producer /
  single-consumer ring buffers per worker (one per direction) living in
  ``multiprocessing.shared_memory`` segments.  Operand blocks and
  result arrays cross the process boundary as **raw bytes plus a tiny
  binary header** — one ``memcpy`` in, numpy *views* out, no pickle on
  the hot path.  Control traffic (heartbeats, CONFIG, chaos hooks)
  still pickles, but into ring slots; a thin control *pipe* carries no
  data and exists only for instant peer-death detection plus a
  fallback lane for messages too large for a slot.

Ring protocol (per direction)
-----------------------------

The segment holds a 64-byte ring header followed by ``slots`` fixed
``slot_bytes`` slots::

    header:  [produced u64][consumed u64][slots u64][slot_bytes u64]
    slot:    [kind u32][flags u32][msg_id u64][nbytes u64][aux u64]
             [payload ...]

``produced`` and ``consumed`` are free-running sequence counters; slot
``seq`` lives at index ``seq % slots``.  The producer may write when
``produced - consumed < slots`` and **publishes by bumping
``produced`` only after the payload write completes**, so a consumer
can never observe a torn slot — a worker SIGKILLed mid-slot-write
simply never publishes, and the message is redelivered by the router's
failover path.  The consumer reads at its private cursor and retires
slots strictly in order by bumping ``consumed``, which is what gives
the producer back-pressure (block, or shed when the caller says the
message is disposable, e.g. heartbeats).  A pair of semaphores
(``items``/``space``) turns both waits into real blocking waits rather
than busy-polling — important on small hosts.

Segment lifecycle
-----------------

Segments are created by the **router** side only and tracked by a
process-wide :class:`ShmSegmentTracker`: spawn creates the pair,
worker death/restart and router shutdown destroy it (close + unlink),
and an ``atexit`` sweep catches anything a crashed test left behind —
``/dev/shm`` must be clean after every run.  Workers attach by name
*without* registering with ``resource_tracker`` (they never own the
segment), which avoids the well-known spurious leaked-segment warnings
on Python < 3.13.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import pickle
import queue
import struct
import threading
import time
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from . import protocol

__all__ = [
    "TRANSPORT_NAMES",
    "TransportError",
    "ChannelClosed",
    "SlotOverflow",
    "Ring",
    "RING_HEADER",
    "SLOT_HEADER",
    "RESULT_TRAILER",
    "encode_into",
    "decode_from",
    "batch_capacity_ops",
    "result_capacity_ops",
    "default_slot_bytes",
    "ShmSegmentTracker",
    "segment_tracker",
    "Transport",
    "PipeTransport",
    "ShmRingTransport",
    "make_transport",
    "open_worker_channel",
    "payload_nbytes",
]

#: Registered transport vocabulary (``ClusterConfig.transport``).
TRANSPORT_NAMES = ("pipe", "shm")

#: ``/dev/shm`` name prefix for every segment this module creates —
#: the leak assertions in tests and the nightly soak grep for it.
SEGMENT_PREFIX = "vlsa_ring"


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class ChannelClosed(TransportError):
    """The peer is gone (EOF/broken pipe/unlinked segment)."""


class SlotOverflow(TransportError):
    """A message does not fit one ring slot (takes the pipe fallback)."""


# ----------------------------------------------------------------------
# Binary slot codec
# ----------------------------------------------------------------------
RING_HEADER = 64
SLOT_HEADER = 32
#: RESULT trailer: cycles, start_cycle, counters(ops, stalls, batches,
#: cycles) — six uint64s after the four per-op sections.
RESULT_TRAILER = 48

_HDR = struct.Struct("<IIQQQ")        # kind, flags, msg_id, nbytes, aux
_TRAILER = struct.Struct("<QQQQQQ")
_CTR = struct.Struct("<Q")

_FLAG_PICKLED = 1

_KIND_CODES = {
    protocol.BATCH: 1,
    protocol.SHUTDOWN: 2,
    protocol.CONFIG: 3,
    protocol.HANG: 4,
    protocol.CRASH: 5,
    protocol.RESULT: 6,
    protocol.HEARTBEAT: 7,
    protocol.BYE: 8,
}
_CODE_KINDS = {v: k for k, v in _KIND_CODES.items()}

#: Per-op bytes of a binary RESULT: sums u64 + couts u64 + stalled u8
#: + spec_errors u8.
_RESULT_OP_BYTES = 18
#: Per-op bytes of a binary BATCH: one (a, b) uint64 pair.
_BATCH_OP_BYTES = 16


def batch_capacity_ops(slot_bytes: int) -> int:
    """Largest numpy BATCH (in additions) one slot can carry."""
    return max(0, (slot_bytes - SLOT_HEADER) // _BATCH_OP_BYTES)


def result_capacity_ops(slot_bytes: int) -> int:
    """Largest numpy RESULT (in additions) one slot can carry."""
    return max(0, (slot_bytes - SLOT_HEADER - RESULT_TRAILER)
               // _RESULT_OP_BYTES)


def default_slot_bytes(max_batch_ops: int) -> int:
    """Slot size that fits *max_batch_ops* in both directions.

    The RESULT layout is the wider one (18 B/op plus trailer); round
    up to a 4 KiB page multiple with headroom for pickled control
    blobs (heartbeats carry a full metrics snapshot).
    """
    need = SLOT_HEADER + RESULT_TRAILER + _RESULT_OP_BYTES * max_batch_ops
    # Floor covers pickled control traffic: a heartbeat's full metrics
    # snapshot (2048-sample histogram reservoir) is ~20 KiB.
    need = max(need, 32768)
    return (need + 4095) // 4096 * 4096


def payload_nbytes(msg: protocol.Message) -> int:
    """Wire payload size of *msg* (the copy-bytes accounting unit)."""
    kind = msg[0]
    if kind == protocol.BATCH:
        payload = msg[2]
        if isinstance(payload, np.ndarray):
            return int(payload.nbytes)
        return len(payload) * _BATCH_OP_BYTES
    if kind == protocol.RESULT:
        result = msg[2]
        return (len(result["sums"]) * _RESULT_OP_BYTES
                + RESULT_TRAILER)
    return 0


def _is_binary_batch(msg: protocol.Message) -> bool:
    return (msg[0] == protocol.BATCH
            and isinstance(msg[2], np.ndarray)
            and msg[2].dtype == np.uint64)


def _is_binary_result(msg: protocol.Message) -> bool:
    return (msg[0] == protocol.RESULT
            and isinstance(msg[2].get("sums"), np.ndarray))


def encode_into(msg: protocol.Message, mv: memoryview) -> int:
    """Write *msg* into slot buffer *mv*; return total bytes used.

    numpy BATCH/RESULT messages use the raw binary layout (one memcpy);
    everything else pickles into the slot.  Raises :class:`SlotOverflow`
    when the encoding does not fit ``len(mv)``.
    """
    cap = len(mv)
    if _is_binary_batch(msg):
        _, msg_id, arr = msg
        n = int(arr.shape[0])
        nbytes = n * _BATCH_OP_BYTES
        if SLOT_HEADER + nbytes > cap:
            raise SlotOverflow(f"batch of {n} ops needs "
                               f"{SLOT_HEADER + nbytes} B > slot {cap} B")
        _HDR.pack_into(mv, 0, _KIND_CODES[protocol.BATCH], 0,
                       msg_id, nbytes, n)
        if n:
            dst = np.frombuffer(mv, np.uint64, 2 * n, offset=SLOT_HEADER)
            dst.reshape(n, 2)[:] = arr
        return SLOT_HEADER + nbytes
    if _is_binary_result(msg):
        _, msg_id, result = msg
        sums = result["sums"]
        n = int(sums.shape[0])
        nbytes = n * _RESULT_OP_BYTES + RESULT_TRAILER
        if SLOT_HEADER + nbytes > cap:
            raise SlotOverflow(f"result of {n} ops needs "
                               f"{SLOT_HEADER + nbytes} B > slot {cap} B")
        _HDR.pack_into(mv, 0, _KIND_CODES[protocol.RESULT], 0,
                       msg_id, nbytes, n)
        off = SLOT_HEADER
        if n:
            np.frombuffer(mv, np.uint64, n, offset=off)[:] = result["couts"]
            np.frombuffer(mv, np.uint64, n,
                          offset=off + 8 * n)[:] = sums
            np.frombuffer(mv, np.uint8, n, offset=off + 16 * n)[:] = (
                np.asarray(result["stalled"], dtype=bool).view(np.uint8))
            np.frombuffer(mv, np.uint8, n, offset=off + 17 * n)[:] = (
                np.asarray(result["spec_errors"],
                           dtype=bool).view(np.uint8))
        ctr = result.get("counters") or {}
        _TRAILER.pack_into(
            mv, off + _RESULT_OP_BYTES * n,
            int(result["cycles"]), int(result["start_cycle"]),
            int(ctr.get("ops", 0)), int(ctr.get("stalls", 0)),
            int(ctr.get("batches", 0)), int(ctr.get("cycles", 0)))
        return SLOT_HEADER + nbytes
    blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    if SLOT_HEADER + len(blob) > cap:
        raise SlotOverflow(f"pickled {msg[0]!r} message of "
                           f"{len(blob)} B exceeds slot {cap} B")
    code = _KIND_CODES.get(msg[0], 0)
    _HDR.pack_into(mv, 0, code, _FLAG_PICKLED, 0, len(blob), 0)
    mv[SLOT_HEADER:SLOT_HEADER + len(blob)] = blob
    return SLOT_HEADER + len(blob)


def decode_from(mv: memoryview) -> protocol.Message:
    """Decode one message from slot buffer *mv*.

    Binary BATCH/RESULT payloads come back as numpy **views into the
    slot** — valid until the slot is retired; callers must finish with
    (or copy) them before releasing the slot lease.
    """
    code, flags, msg_id, nbytes, aux = _HDR.unpack_from(mv, 0)
    if flags & _FLAG_PICKLED:
        return pickle.loads(bytes(mv[SLOT_HEADER:SLOT_HEADER + nbytes]))
    kind = _CODE_KINDS.get(code)
    if kind == protocol.BATCH:
        n = aux
        arr = (np.frombuffer(mv, np.uint64, 2 * n,
                             offset=SLOT_HEADER).reshape(n, 2)
               if n else np.empty((0, 2), dtype=np.uint64))
        return (protocol.BATCH, msg_id, arr)
    if kind == protocol.RESULT:
        n = aux
        off = SLOT_HEADER
        if n:
            couts = np.frombuffer(mv, np.uint64, n, offset=off)
            sums = np.frombuffer(mv, np.uint64, n, offset=off + 8 * n)
            stalled = np.frombuffer(mv, np.uint8, n,
                                    offset=off + 16 * n).view(np.bool_)
            spec = np.frombuffer(mv, np.uint8, n,
                                 offset=off + 17 * n).view(np.bool_)
        else:
            sums = couts = np.empty(0, dtype=np.uint64)
            stalled = spec = np.empty(0, dtype=bool)
        (cycles, start_cycle, c_ops, c_stalls, c_batches,
         c_cycles) = _TRAILER.unpack_from(mv, off + _RESULT_OP_BYTES * n)
        result = {"sums": sums, "couts": couts, "stalled": stalled,
                  "spec_errors": spec, "cycles": cycles,
                  "start_cycle": start_cycle,
                  "counters": {"ops": c_ops, "stalls": c_stalls,
                               "batches": c_batches, "cycles": c_cycles}}
        return (protocol.RESULT, msg_id, result)
    raise TransportError(f"undecodable slot: code={code} flags={flags}")


# ----------------------------------------------------------------------
# The ring
# ----------------------------------------------------------------------
class Ring:
    """Fixed-slot SPSC ring over a shared buffer (see module docstring).

    The ring itself is synchronization-free (single writer per
    counter); blocking behaviour is provided by the channel layer's
    semaphores.  ``push``/``pop`` here are the non-blocking primitives
    plus an optional spin-free timed wait used directly by tests.
    """

    def __init__(self, buf, slots: int, slot_bytes: int,
                 create: bool = False):
        self._mv = memoryview(buf)
        self.slots = slots
        self.slot_bytes = slot_bytes
        if create:
            self._mv[:RING_HEADER] = bytes(RING_HEADER)
            struct.pack_into("<QQ", self._mv, 16, slots, slot_bytes)
        self._read = self.consumed  # consumer's private peek cursor
        #: producer-side shed/stall accounting (single-threaded access)
        self.pushed = 0
        self.shed = 0
        self.full_stalls = 0

    @staticmethod
    def size_for(slots: int, slot_bytes: int) -> int:
        return RING_HEADER + slots * slot_bytes

    # -- counters -------------------------------------------------------
    @property
    def produced(self) -> int:
        return _CTR.unpack_from(self._mv, 0)[0]

    @property
    def consumed(self) -> int:
        return _CTR.unpack_from(self._mv, 8)[0]

    @property
    def occupancy(self) -> int:
        """Published-but-unretired slots (submitted minus retired)."""
        return self.produced - self.consumed

    def _slot(self, seq: int) -> memoryview:
        off = RING_HEADER + (seq % self.slots) * self.slot_bytes
        return self._mv[off:off + self.slot_bytes]

    # -- producer -------------------------------------------------------
    def try_push(self, msg: protocol.Message) -> bool:
        """Write and publish *msg*; False when the ring is full.

        The publish (``produced`` bump) happens strictly after the
        payload write, so a crash between the two leaves the ring
        consistent — the slot is simply never visible.
        """
        seq = self.produced
        if seq - self.consumed >= self.slots:
            return False
        encode_into(msg, self._slot(seq))
        _CTR.pack_into(self._mv, 0, seq + 1)
        self.pushed += 1
        return True

    def push(self, msg: protocol.Message, timeout: Optional[float] = None,
             policy: str = "block", poll: float = 0.002) -> bool:
        """Push under back-pressure.

        ``policy="block"`` waits (bounded by *timeout*) for a free
        slot; ``policy="shed"`` drops the message immediately when
        full and counts it in :attr:`shed`.  Returns True when the
        message was published.
        """
        if self.try_push(msg):
            return True
        if policy == "shed":
            self.shed += 1
            return False
        self.full_stalls += 1
        deadline = None if timeout is None else time.monotonic() + timeout
        while deadline is None or time.monotonic() < deadline:
            time.sleep(poll)
            if self.try_push(msg):
                return True
        return False

    # -- consumer -------------------------------------------------------
    @property
    def readable(self) -> int:
        """Published slots not yet read by this consumer."""
        return self.produced - self._read

    def pop(self) -> Optional[Tuple[int, protocol.Message]]:
        """Read the next published slot (without retiring it).

        Returns ``(seq, msg)`` — *msg* may hold views into slot *seq*;
        call :meth:`retire` with that sequence once done.  ``None``
        when nothing is published.
        """
        seq = self._read
        if seq >= self.produced:
            return None
        msg = decode_from(self._slot(seq))
        self._read = seq + 1
        return seq, msg

    def retire(self, seq: int) -> None:
        """Retire slot *seq*; slots must retire strictly in order."""
        consumed = self.consumed
        if seq != consumed:
            raise TransportError(
                f"out-of-order retire: seq {seq} != consumed {consumed}")
        _CTR.pack_into(self._mv, 8, consumed + 1)

    def close(self) -> None:
        with contextlib.suppress(BufferError, ValueError):
            self._mv.release()


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
def _quiet_close(seg: shared_memory.SharedMemory) -> None:
    """Close *seg*'s mapping without ever raising or warning.

    ``close`` raises :class:`BufferError` while numpy views into the
    mapping are still alive (e.g. a worker exits with its last batch in
    scope).  The mapping is reclaimed when those views die — or by the
    OS at process exit — so on failure the finalizer is disarmed
    instead, which also silences the "Exception ignored in __del__"
    noise at interpreter shutdown.
    """
    try:
        seg.close()
    except BufferError:
        seg._buf = None    # the views' own refs keep the mmap alive
        seg._mmap = None


class ShmSegmentTracker:
    """Owns every shared-memory segment this process created.

    One deterministic place for the whole lifecycle: ``create`` on
    worker spawn, ``destroy`` on worker death/restart/shutdown, and a
    final ``sweep`` at interpreter exit so no test failure can leak a
    ``/dev/shm`` entry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def create(self, name: str, size: int) -> shared_memory.SharedMemory:
        seg = shared_memory.SharedMemory(name=name, create=True, size=size)
        with self._lock:
            self._segments[seg.name] = seg
        return seg

    def destroy(self, name: str) -> None:
        """Close + unlink *name* (idempotent, exception-proof).

        ``close`` can fail with :class:`BufferError` while numpy views
        into the mapping are still alive; the *unlink* still removes
        the ``/dev/shm`` entry, and the mapping itself is freed when
        the last view dies — nothing leaks either way.
        """
        with self._lock:
            seg = self._segments.pop(name, None)
        if seg is None:
            return
        _quiet_close(seg)
        with contextlib.suppress(FileNotFoundError):
            seg.unlink()

    def live_names(self) -> List[str]:
        with self._lock:
            return sorted(self._segments)

    def sweep(self) -> int:
        """Destroy every tracked segment; returns how many it found."""
        names = self.live_names()
        for name in names:
            self.destroy(name)
        return len(names)


#: Process-wide tracker (router side); swept at interpreter exit.
segment_tracker = ShmSegmentTracker()
atexit.register(segment_tracker.sweep)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource_tracker tracking.

    On Python < 3.13 a plain attach registers the segment with the
    *attaching* process's resource tracker, which later warns about —
    and may even unlink — a segment the attacher never owned.  The
    worker only ever borrows router-owned segments, so registration is
    suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= is 3.13+
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *_a, **_k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# ----------------------------------------------------------------------
# Channel state shared by both implementations
# ----------------------------------------------------------------------
_CLOSE = object()


class _Stats:
    """Plain-int I/O accounting updated by a channel's own threads.

    Each field is only ever written by one thread; the router reads a
    merged snapshot from the event loop via ``RouterChannel.stats()``.
    """

    __slots__ = ("tx_msgs", "tx_bytes", "rx_msgs", "rx_bytes",
                 "pipe_fallbacks", "ring_full_stalls", "shed")

    def __init__(self) -> None:
        self.tx_msgs = 0
        self.tx_bytes = 0
        self.rx_msgs = 0
        self.rx_bytes = 0
        self.pipe_fallbacks = 0
        self.ring_full_stalls = 0
        self.shed = 0


class RouterChannel:
    """Router-side endpoint of one worker's transport (abstract).

    Lifecycle: construct (allocates OS resources) → ``spawn_spec()``
    (picklable descriptor handed to the child) → ``after_spawn()``
    (drop child-side handles) → ``start_io(post, on_message, on_eof)``
    → ``send`` at will → ``close()``.
    """

    transport_name = "?"

    def __init__(self) -> None:
        self._stats = _Stats()
        self._out_q: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._stopping = False

    def spawn_spec(self):
        raise NotImplementedError

    def after_spawn(self) -> None:
        pass

    def start_io(self, post: Callable, on_message: Callable,
                 on_eof: Callable) -> None:
        raise NotImplementedError

    def send(self, msg: protocol.Message) -> None:
        """Queue *msg* for the writer thread (never blocks the loop)."""
        self._out_q.put(msg)

    def stats(self) -> Dict[str, int]:
        s = self._stats
        return {"tx_msgs": s.tx_msgs, "tx_bytes": s.tx_bytes,
                "rx_msgs": s.rx_msgs, "rx_bytes": s.rx_bytes,
                "pipe_fallbacks": s.pipe_fallbacks,
                "ring_full_stalls": s.ring_full_stalls,
                "shed": s.shed, "ring_tx_occupancy": 0,
                "ring_rx_occupancy": 0}

    def close(self) -> None:
        raise NotImplementedError

    def _spawn_thread(self, target: Callable, name: str) -> None:
        t = threading.Thread(target=target, name=name, daemon=True)
        t.start()
        self._threads.append(t)

    def _join_threads(self, timeout: float = 1.0) -> None:
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout)


class WorkerChannel:
    """Worker-side endpoint (abstract): serial ``recv``/``send``."""

    transport_name = "?"

    def recv(self, timeout: float) -> Optional[protocol.Message]:
        """Next message, or None after *timeout* of silence.

        Raises :class:`ChannelClosed` when the router is gone.
        """
        raise NotImplementedError

    def send(self, msg: protocol.Message,
             shed_if_full: bool = False) -> bool:
        """Ship *msg* to the router; returns False only when shed.

        Raises :class:`ChannelClosed` when the router is gone — the
        worker loop turns that into a structured death trace rather
        than a silent exit.
        """
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        return {}

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Pipe transport (the original path, now behind the interface)
# ----------------------------------------------------------------------
class _PipeRouterChannel(RouterChannel):
    transport_name = "pipe"

    def __init__(self, mp_ctx):
        super().__init__()
        self._parent, self._child = mp_ctx.Pipe(duplex=True)

    def spawn_spec(self):
        return ("pipe", {"conn": self._child})

    def after_spawn(self) -> None:
        self._child.close()  # parent must drop the child end to see EOF

    def start_io(self, post, on_message, on_eof) -> None:
        conn, stats = self._parent, self._stats

        def _reader():
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                stats.rx_msgs += 1
                stats.rx_bytes += payload_nbytes(msg)
                post(on_message, msg)
            post(on_eof)

        def _writer():
            while True:
                item = self._out_q.get()
                if item is _CLOSE:
                    break
                try:
                    conn.send(item)
                except (BrokenPipeError, OSError):
                    break  # reader will surface the EOF
                stats.tx_msgs += 1
                stats.tx_bytes += payload_nbytes(item)

        self._spawn_thread(_reader, "vlsa-pipe-r")
        self._spawn_thread(_writer, "vlsa-pipe-w")

    def close(self) -> None:
        self._stopping = True
        self._out_q.put(_CLOSE)
        with contextlib.suppress(OSError):
            self._parent.close()
        self._join_threads()


class _PipeWorkerChannel(WorkerChannel):
    transport_name = "pipe"

    def __init__(self, conn):
        self._conn = conn

    def recv(self, timeout: float) -> Optional[protocol.Message]:
        try:
            if not self._conn.poll(timeout):
                return None
            return self._conn.recv()
        except (EOFError, OSError):
            raise ChannelClosed("router pipe closed") from None

    def send(self, msg, shed_if_full: bool = False) -> bool:
        try:
            self._conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            raise ChannelClosed("router pipe closed") from None

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._conn.close()


# ----------------------------------------------------------------------
# Shared-memory ring transport
# ----------------------------------------------------------------------
class _ShmRouterChannel(RouterChannel):
    """Router endpoint: two segments, four semaphores, a control pipe.

    ``tx`` is router→worker, ``rx`` worker→router.  Data never touches
    the control pipe except for the oversized-message fallback; its
    real job is EOF: the instant the worker dies the reader thread
    sees it, drains every *published* rx slot (no delivered result is
    thrown away), and only then reports EOF.
    """

    transport_name = "shm"

    def __init__(self, mp_ctx, wid: int, slots: int, slot_bytes: int):
        super().__init__()
        self.slots = slots
        self.slot_bytes = slot_bytes
        token = os.urandom(3).hex()
        base = f"{SEGMENT_PREFIX}_{os.getpid()}_{wid}_{token}"
        size = Ring.size_for(slots, slot_bytes)
        self._seg_tx = segment_tracker.create(f"{base}_tx", size)
        self._seg_rx = segment_tracker.create(f"{base}_rx", size)
        self._ring_tx = Ring(self._seg_tx.buf, slots, slot_bytes,
                             create=True)
        self._ring_rx = Ring(self._seg_rx.buf, slots, slot_bytes,
                             create=True)
        self._tx_items = mp_ctx.Semaphore(0)
        self._tx_space = mp_ctx.Semaphore(slots)
        self._rx_items = mp_ctx.Semaphore(0)
        self._rx_space = mp_ctx.Semaphore(slots)
        self._parent, self._child = mp_ctx.Pipe(duplex=True)
        # In-order lease retirement: the loop thread releases result
        # leases, the reader thread releases control-message leases;
        # the lock keeps `consumed` advancing strictly sequentially.
        self._lease_lock = threading.Lock()
        self._lease_done: Dict[int, bool] = {}

    def spawn_spec(self):
        return ("shm", {
            "control": self._child,
            "tx_name": self._seg_tx.name, "rx_name": self._seg_rx.name,
            "slots": self.slots, "slot_bytes": self.slot_bytes,
            "tx_items": self._tx_items, "tx_space": self._tx_space,
            "rx_items": self._rx_items, "rx_space": self._rx_space,
        })

    def after_spawn(self) -> None:
        self._child.close()

    # -- lease management (rx ring) -------------------------------------
    def _release(self, seq: int) -> None:
        with self._lease_lock:
            self._lease_done[seq] = True
            while self._lease_done.get(self._ring_rx.consumed):
                done_seq = self._ring_rx.consumed
                del self._lease_done[done_seq]
                self._ring_rx.retire(done_seq)
                self._rx_space.release()

    def start_io(self, post, on_message, on_eof) -> None:
        stats = self._stats

        def _deliver(msg, seq):
            # Runs on the event loop: hand the (possibly view-backed)
            # message to the router, then retire the slot so the
            # worker regains the space.
            try:
                on_message(msg)
            finally:
                if seq is not None:
                    self._release(seq)

        def _pop_and_post() -> bool:
            popped = self._ring_rx.pop()
            if popped is None:
                return False
            seq, msg = popped
            stats.rx_msgs += 1
            stats.rx_bytes += payload_nbytes(msg)
            post(_deliver, msg, seq)
            return True

        def _reader():
            control = self._parent
            while not self._stopping:
                if self._rx_items.acquire(timeout=0.05):
                    _pop_and_post()
                    # opportunistically drain what else is published
                    while self._rx_items.acquire(block=False):
                        if not _pop_and_post():
                            break
                try:
                    has_control = control.poll(0)
                except OSError:
                    break  # control pipe closed under us (teardown)
                if has_control:
                    try:
                        msg = control.recv()
                    except (EOFError, OSError):
                        break
                    stats.rx_msgs += 1
                    stats.rx_bytes += payload_nbytes(msg)
                    stats.pipe_fallbacks += 1
                    post(_deliver, msg, None)
            # Worker gone (or closing): drain every published slot by
            # the counters — buffered replies beat the death report.
            while _pop_and_post():
                pass
            post(on_eof)

        def _writer():
            ring = self._ring_tx
            while True:
                item = self._out_q.get()
                if item is _CLOSE:
                    break
                size = payload_nbytes(item)
                if SLOT_HEADER + max(size, 0) > self.slot_bytes:
                    # Oversized for one slot: the control pipe is the
                    # always-correct slow lane.
                    try:
                        self._parent.send(item)
                        stats.pipe_fallbacks += 1
                        stats.tx_msgs += 1
                        stats.tx_bytes += size
                    except (BrokenPipeError, OSError):
                        break
                    continue
                # Block for slot space; bail out when closing or the
                # worker stops consuming entirely (EOF path cleans up).
                acquired = False
                while not self._stopping:
                    if self._tx_space.acquire(timeout=0.1):
                        acquired = True
                        break
                    stats.ring_full_stalls += 1
                if not acquired:
                    break
                try:
                    ring.try_push(item)
                except SlotOverflow:  # pickled blob grew past the slot
                    self._tx_space.release()
                    try:
                        self._parent.send(item)
                        stats.pipe_fallbacks += 1
                    except (BrokenPipeError, OSError):
                        break
                    continue
                stats.tx_msgs += 1
                stats.tx_bytes += size
                self._tx_items.release()

        self._spawn_thread(_reader, "vlsa-shm-r")
        self._spawn_thread(_writer, "vlsa-shm-w")

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        with contextlib.suppress(ValueError):  # released after close()
            out["ring_tx_occupancy"] = self._ring_tx.occupancy
            out["ring_rx_occupancy"] = self._ring_rx.occupancy
        return out

    def close(self) -> None:
        self._stopping = True
        self._out_q.put(_CLOSE)
        with contextlib.suppress(OSError):
            self._parent.close()
        self._join_threads()
        # Drop our ring views so the segment can actually unmap; any
        # message still queued on the loop keeps its own view alive
        # (and thereby the mapping) until it is processed.
        self._ring_tx.close()
        self._ring_rx.close()
        segment_tracker.destroy(self._seg_tx.name)
        segment_tracker.destroy(self._seg_rx.name)


class _ShmWorkerChannel(WorkerChannel):
    """Worker endpoint: strictly serial, so leases are implicit.

    The previous in-slot batch view is retired lazily — on the *next*
    ``recv``/``send`` — because by then the executor has consumed the
    operands.  That costs one slot of effective capacity and buys a
    worker loop that never touches lease bookkeeping.
    """

    transport_name = "shm"

    def __init__(self, spec: Dict[str, Any]):
        self._control = spec["control"]
        self._seg_tx = _attach_untracked(spec["tx_name"])
        self._seg_rx = _attach_untracked(spec["rx_name"])
        slots, slot_bytes = spec["slots"], spec["slot_bytes"]
        self._ring_in = Ring(self._seg_tx.buf, slots, slot_bytes)
        self._ring_out = Ring(self._seg_rx.buf, slots, slot_bytes)
        self._in_items = spec["tx_items"]
        self._in_space = spec["tx_space"]
        self._out_items = spec["rx_items"]
        self._out_space = spec["rx_space"]
        self._pending_retire: Optional[int] = None
        self.sheds = 0
        self.sent_ring = 0
        self.sent_fallback = 0

    def _retire_pending(self) -> None:
        if self._pending_retire is not None:
            self._ring_in.retire(self._pending_retire)
            self._in_space.release()
            self._pending_retire = None

    def recv(self, timeout: float) -> Optional[protocol.Message]:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if self._in_items.acquire(
                    timeout=max(0.0, min(0.05, remaining))):
                self._retire_pending()
                popped = self._ring_in.pop()
                if popped is None:  # counter/sem skew after chaos
                    continue
                seq, msg = popped
                self._pending_retire = seq
                return msg
            try:
                has_control = self._control.poll(0)
            except OSError:
                raise ChannelClosed("router control pipe closed") \
                    from None
            if has_control:
                try:
                    msg = self._control.recv()  # oversized fallback
                except (EOFError, OSError):
                    raise ChannelClosed("router control pipe closed") \
                        from None
                self._retire_pending()
                return msg
            if remaining <= 0:
                self._retire_pending()
                return None

    def send(self, msg, shed_if_full: bool = False) -> bool:
        self._retire_pending()
        size = payload_nbytes(msg)
        if SLOT_HEADER + size > self._ring_out.slot_bytes:
            try:
                self._control.send(msg)
            except (BrokenPipeError, OSError):
                raise ChannelClosed("router control pipe closed") \
                    from None
            self.sent_fallback += 1
            return True
        while True:
            if self._out_space.acquire(timeout=0 if shed_if_full
                                       else 0.1):
                break
            if shed_if_full:
                self.sheds += 1
                return False
            try:
                has_control = self._control.poll(0)
            except OSError:
                raise ChannelClosed("router gone while ring full") \
                    from None
            if has_control and self._control_eof():
                raise ChannelClosed("router gone while ring full")
        try:
            self._ring_out.try_push(msg)
        except SlotOverflow:
            self._out_space.release()
            try:
                self._control.send(msg)
            except (BrokenPipeError, OSError):
                raise ChannelClosed("router control pipe closed") \
                    from None
            self.sent_fallback += 1
            return True
        self.sent_ring += 1
        self._out_items.release()
        return True

    def _control_eof(self) -> bool:
        try:
            self._control.recv()
            return False  # a late fallback message; worker drops it
        except (EOFError, OSError):
            return True

    def stats(self) -> Dict[str, int]:
        return {"sheds": self.sheds, "sent_ring": self.sent_ring,
                "sent_fallback": self.sent_fallback}

    def close(self) -> None:
        self._retire_pending()
        self._ring_in.close()
        self._ring_out.close()
        for seg in (self._seg_tx, self._seg_rx):
            _quiet_close(seg)
        with contextlib.suppress(OSError):
            self._control.close()


# ----------------------------------------------------------------------
# Transport factories
# ----------------------------------------------------------------------
class Transport:
    """Factory for per-worker channels (one Transport per supervisor)."""

    name = "?"

    def open_router_channel(self, mp_ctx, cfg, wid: int) -> RouterChannel:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport-wide resources (supervisor shutdown)."""


class PipeTransport(Transport):
    name = "pipe"

    def open_router_channel(self, mp_ctx, cfg, wid: int) -> RouterChannel:
        return _PipeRouterChannel(mp_ctx)


class ShmRingTransport(Transport):
    name = "shm"

    def open_router_channel(self, mp_ctx, cfg, wid: int) -> RouterChannel:
        return _ShmRouterChannel(mp_ctx, wid, cfg.shm_slots,
                                 cfg.resolved_slot_bytes())


_TRANSPORTS = {"pipe": PipeTransport, "shm": ShmRingTransport}


def make_transport(name: str) -> Transport:
    try:
        return _TRANSPORTS[name]()
    except KeyError:
        raise ValueError(f"unknown transport {name!r}; expected one of "
                         f"{TRANSPORT_NAMES}") from None


def open_worker_channel(spec) -> WorkerChannel:
    """Build the worker-side channel from a ``spawn_spec`` descriptor."""
    kind, args = spec
    if kind == "pipe":
        return _PipeWorkerChannel(args["conn"])
    if kind == "shm":
        return _ShmWorkerChannel(args)
    raise ValueError(f"unknown worker channel spec {kind!r}")
