"""Worker-pool supervision: spawn, watch, kill, restart, fail over.

The :class:`WorkerSupervisor` owns every OS-level concern of the pool so
the router can stay a pure asyncio front end:

* **Spawn.**  Each slot gets a fresh process (``spawn`` start method by
  default — fork is unsafe once the I/O threads below exist) and a
  transport channel (:mod:`repro.cluster.transport`: pickle-over-pipe
  or zero-copy shared-memory rings) whose writer thread guarantees a
  full wire can never block the event loop and whose reader thread
  posts every message onto the loop.  Shared-memory segments are
  created at spawn and destroyed deterministically on worker death,
  restart and shutdown via the transport's segment tracker.
* **Liveness.**  Three independent detectors: the reader thread sees
  pipe EOF the instant a crashed worker's last buffered replies drain
  (so no delivered result is ever thrown away), the monitor tick checks
  ``Process.is_alive()`` (catches SIGKILL even when inherited
  descriptors keep the pipe open), and a silence-with-work-in-flight
  timer declares a live-but-wedged process hung and kills it.
* **Restart.**  Dead slots respawn after exponential backoff
  (``base * 2^(consecutive failures - 1)``, capped); a successful
  heartbeat resets the streak.  Every death first hands the slot's
  un-answered requests to the router's failover callback, which
  redirects them to surviving workers (or the degraded path) — crash
  recovery is the cluster's "rare slow path", exactly the paper's
  variable-latency shape one level up.
"""

from __future__ import annotations

import asyncio
import collections
import time
from typing import Any, Callable, Dict, List, Optional

from ..service.metrics import MetricsRegistry
from ..service.tracing import Tracer
from . import protocol
from .config import ClusterConfig
from .transport import RouterChannel, Transport, make_transport

__all__ = ["WorkerHandle", "WorkerSupervisor"]


class WorkerHandle:
    """One worker slot's process, transport channel and router state."""

    def __init__(self, wid: int, slot: int):
        self.wid = wid          # unique across restarts
        self.slot = slot        # stable pool position
        self.proc = None
        self.channel: Optional[RouterChannel] = None
        self.alive = False
        self.eof = False
        self.bye = False  # worker acknowledged SHUTDOWN (clean exit)
        self.started_at = 0.0
        self.last_msg = 0.0
        #: Router bookkeeping: requests queued for this worker, wire
        #: batches outstanding, and the total ops they represent.
        self.backlog: "collections.deque" = collections.deque()
        self.wire: Dict[int, Any] = {}
        self.backlog_ops = 0
        self.wire_ops = 0
        #: Last-known worker-side metrics (light per result, full per
        #: heartbeat) — survive the process for post-mortem accounting.
        self.counters: Dict[str, int] = {}
        self.metrics_state: Dict[str, Any] = {}

    @property
    def load_ops(self) -> int:
        """Additions this worker still owes answers for."""
        return self.backlog_ops + self.wire_ops

    def send(self, msg) -> None:
        """Queue *msg* on the channel (never blocks the loop)."""
        self.channel.send(msg)

    def transport_stats(self) -> Dict[str, int]:
        """Live wire accounting from the channel's I/O threads."""
        return self.channel.stats() if self.channel is not None else {}

    # -- lifecycle (called by the supervisor only) ----------------------
    def start(self, ctx, cfg: ClusterConfig, loop, transport: Transport,
              on_message: Callable, on_eof: Callable) -> None:
        self.channel = transport.open_router_channel(ctx, cfg, self.wid)
        self.proc = ctx.Process(
            target=_spawn_target, name=f"vlsa-worker-{self.slot}",
            args=(self.wid, self.channel.spawn_spec(), cfg.worker_dict()),
            daemon=True)
        self.proc.start()
        self.channel.after_spawn()  # drop child-side handles
        self.alive = True
        self.started_at = self.last_msg = time.monotonic()

        def _post(cb, *args):
            try:
                loop.call_soon_threadsafe(cb, *args)
            except RuntimeError:
                pass  # loop already closed during teardown

        self.channel.start_io(
            _post,
            lambda msg: on_message(self, msg),
            lambda: on_eof(self))

    def close(self, kill: bool = False, join_timeout: float = 0.5) -> None:
        """Stop the process and the channel (``kill=True`` skips SIGTERM).

        The process dies first so the channel teardown (which for shm
        destroys the shared segments) can never unmap memory a live
        worker is still writing.
        """
        self.alive = False
        if self.proc is not None and self.proc.is_alive():
            if kill:
                self.proc.kill()
            else:
                self.proc.terminate()
            self.proc.join(join_timeout)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(join_timeout)
        if self.channel is not None:
            self.channel.close()


def _spawn_target(wid: int, spawn_spec, cfg: Dict[str, Any]) -> None:
    # Imported lazily in the child so a ``spawn`` start pays the repro
    # import exactly once, inside the worker.
    from .transport import open_worker_channel
    from .worker import worker_main

    worker_main(wid, open_worker_channel(spawn_spec), cfg)


class WorkerSupervisor:
    """Owns the pool: slots, monitoring, restarts, graceful stop.

    Args:
        cfg: Shared cluster configuration.
        registry: Router-side metrics registry (restart/liveness
            instruments land here).
        tracer: Trace-event sink (spawn/death/restart events).
        on_message: ``(handle, message)`` callback, loop thread.
        on_failover: ``(handle)`` callback invoked after a death, with
            the handle's backlog/wire still intact for redistribution.
    """

    def __init__(self, cfg: ClusterConfig, registry: MetricsRegistry,
                 tracer: Tracer, on_message: Callable,
                 on_failover: Callable):
        self.cfg = cfg
        self.tracer = tracer
        self._on_message = on_message
        self._on_failover = on_failover
        self.transport = make_transport(cfg.transport)
        self._slots: List[Optional[WorkerHandle]] = [None] * cfg.workers
        self._failures = [0] * cfg.workers
        self._next_wid = 0
        self._mp_ctx = None
        self._loop = None
        self._monitor_task: "Optional[asyncio.Task]" = None
        self._restart_tasks: Dict[int, asyncio.Task] = {}
        self._stopping = False
        self.m_restarts = registry.counter(
            "worker_restarts_total", "worker processes respawned")
        self.m_failures = registry.counter(
            "worker_failures_total", "worker crash/hang events")
        self.m_heartbeats = registry.counter(
            "heartbeats_total", "worker heartbeats received")
        self.g_live = registry.gauge(
            "workers_live", "worker processes currently serving")

    # ------------------------------------------------------------------
    @property
    def slots(self) -> List[Optional[WorkerHandle]]:
        return list(self._slots)

    @property
    def live(self) -> List[WorkerHandle]:
        return [h for h in self._slots if h is not None and h.alive]

    async def start(self) -> None:
        import multiprocessing

        self._loop = asyncio.get_running_loop()
        self._mp_ctx = multiprocessing.get_context(
            self.cfg.resolve_start_method())
        for slot in range(self.cfg.workers):
            self._spawn(slot)
        self._monitor_task = self._loop.create_task(
            self._monitor(), name="vlsa-cluster-monitor")

    async def stop(self) -> None:
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for task in list(self._restart_tasks.values()):
            task.cancel()
        self._restart_tasks.clear()
        for handle in self.live:
            handle.send((protocol.SHUTDOWN,))
        deadline = time.monotonic() + max(1.0,
                                          4 * self.cfg.heartbeat_interval)
        while time.monotonic() < deadline and any(
                h.proc.is_alive() for h in self.live if h.proc):
            await asyncio.sleep(0.01)
        for handle in self._slots:
            if handle is not None:
                handle.close()
        self.transport.close()
        self.g_live.set(0)

    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> None:
        handle = WorkerHandle(self._next_wid, slot)
        self._next_wid += 1
        handle.start(self._mp_ctx, self.cfg, self._loop, self.transport,
                     self._handle_message, self._handle_eof)
        self._slots[slot] = handle
        self.g_live.set(len(self.live))
        self.tracer.emit("worker_spawn", slot=slot, wid=handle.wid,
                         pid=handle.proc.pid)

    def _handle_message(self, handle: WorkerHandle, msg) -> None:
        handle.last_msg = time.monotonic()
        kind = msg[0]
        if kind == protocol.HEARTBEAT:
            self.m_heartbeats.inc()
            handle.metrics_state = msg[2]
            uptime = time.monotonic() - handle.started_at
            if uptime >= self.cfg.healthy_after:
                self._failures[handle.slot] = 0  # healthy again
        elif kind == protocol.BYE:
            handle.metrics_state = msg[2]
            handle.bye = True
        self._on_message(handle, msg)

    def _handle_eof(self, handle: WorkerHandle) -> None:
        """Reader thread hit EOF: every buffered reply is already in."""
        handle.eof = True
        if not handle.alive:
            return
        if handle.bye and not handle.load_ops:
            # Clean exit after SHUTDOWN: not a failure, no restart.
            handle.alive = False
            self.g_live.set(len(self.live))
            handle.close()
            return
        self._declare_down(handle, "pipe_eof")

    def _declare_down(self, handle: WorkerHandle, reason: str,
                      kill: bool = False) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self.m_failures.inc()
        self._failures[handle.slot] += 1
        self.g_live.set(len(self.live))
        exitcode = handle.proc.exitcode if handle.proc is not None else None
        self.tracer.emit("worker_dead", slot=handle.slot, wid=handle.wid,
                         reason=reason, exitcode=exitcode,
                         inflight_ops=handle.load_ops)
        handle.close(kill=kill)
        self._on_failover(handle)
        if not self._stopping:
            self._schedule_restart(handle.slot)

    def _schedule_restart(self, slot: int) -> None:
        if slot in self._restart_tasks:
            return
        streak = max(1, self._failures[slot])
        backoff = min(
            self.cfg.restart_backoff_base * (2 ** (streak - 1)),
            self.cfg.restart_backoff_max)
        self.tracer.emit("worker_restart_scheduled", slot=slot,
                         backoff=round(backoff, 4), streak=streak)

        async def _restart() -> None:
            try:
                await asyncio.sleep(backoff)
                if self._stopping:
                    return
                self._spawn(slot)
                self.m_restarts.inc()
            finally:
                self._restart_tasks.pop(slot, None)

        self._restart_tasks[slot] = self._loop.create_task(
            _restart(), name=f"vlsa-restart-{slot}")

    async def _monitor(self) -> None:
        interval = self.cfg.heartbeat_interval
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for handle in self.live:
                if handle.bye and not handle.load_ops:
                    continue  # graceful exit in flight; EOF retires it
                if handle.proc is not None and not handle.proc.is_alive():
                    self._declare_down(handle, "process_exit")
                elif (handle.wire
                      and now - handle.last_msg > self.cfg.hang_timeout):
                    # Alive but silent with work outstanding: hung.
                    self.tracer.emit("worker_hung", slot=handle.slot,
                                     wid=handle.wid,
                                     silent_s=round(now - handle.last_msg,
                                                    3))
                    self._declare_down(handle, "hang", kill=True)
