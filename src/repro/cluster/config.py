"""Cluster configuration: one picklable dataclass shared by every layer.

The router, supervisor and worker processes all read the same
:class:`ClusterConfig`; the worker side receives :meth:`worker_dict`
(a plain dict) so the spawn start method only has to pickle primitives.
Defaults are production-ish (second-scale supervision timers); tests
shrink the timers to tens of milliseconds to exercise failover fast.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..families.base import get_family
from ..service.executor import EXECUTOR_BACKENDS

__all__ = ["ClusterConfig", "SHARD_POLICY_NAMES", "TRANSPORT_NAMES"]

#: Shard-policy vocabulary (implemented in :mod:`repro.cluster.router`).
SHARD_POLICY_NAMES = ("round_robin", "least_loaded", "hash")

#: Transport vocabulary (implemented in :mod:`repro.cluster.transport`).
TRANSPORT_NAMES = ("pipe", "shm")


@dataclass
class ClusterConfig:
    """Knobs for the multi-process serving cluster.

    Args:
        width: Operand bitwidth.
        window: The family's primary parameter (for ACA, the
            speculation window; default: the family's own choice).
        family: Registered adder family every worker serves.
        recovery_cycles: Extra cycles when the detector fires.
        workers: Worker processes in the pool.
        backend: Executor backend per worker (default: numpy when the
            width fits a machine word).
        shard_policy: ``round_robin`` | ``least_loaded`` | ``hash``
            (operand-hash affinity).
        max_batch_ops: Max additions coalesced into one wire batch.
        worker_queue_ops: Bound on additions backlogged per worker
            (queued + on the wire); beyond it submissions are rejected
            — the PR 2 backpressure-by-rejection semantics.
        wire_inflight: Wire batches a worker may have outstanding
            (pipelining depth: the worker computes batch k while the
            router packs batch k+1).
        heartbeat_interval: Worker heartbeat / supervision tick, sec.
        hang_timeout: Silence (with work in flight) after which a live
            process is declared hung and killed.
        restart_backoff_base: First restart delay; doubles per
            consecutive failure of the same slot.
        restart_backoff_max: Backoff ceiling, seconds.
        healthy_after: Uptime after which a heartbeat clears the slot's
            failure streak — a crash-looping worker that boots, beats
            once and dies keeps escalating its backoff.
        redirect_limit: Times one request may be redirected to another
            worker after failures before it errors out.
        degraded_mode: ``"exact"`` serves in-process exact (carry-
            complete, non-speculative) additions while zero workers are
            live; ``"error"`` fails submissions instead.
        start_method: multiprocessing start method (default: the
            ``REPRO_MP_START`` env var, else ``spawn`` — fork is faster
            to boot but unsafe with the router's I/O threads running).
        transport: Router↔worker wire: ``"pipe"`` (pickle over
            multiprocessing pipes — the portable fallback and the
            differential reference) or ``"shm"`` (zero-copy
            shared-memory ring buffers; see
            :mod:`repro.cluster.transport`).
        shm_slots: Ring depth per direction per worker (shm only).
        shm_slot_bytes: Slot payload capacity in bytes (shm only;
            default: sized so a ``max_batch_ops`` result fits one
            slot, rounded up to 4 KiB).
    """

    width: int = 64
    window: Optional[int] = None
    family: str = "aca"
    recovery_cycles: int = 1
    workers: int = 2
    backend: Optional[str] = None
    shard_policy: str = "round_robin"
    max_batch_ops: int = 8192
    worker_queue_ops: int = 65536
    wire_inflight: int = 2
    heartbeat_interval: float = 0.25
    hang_timeout: float = 5.0
    restart_backoff_base: float = 0.1
    restart_backoff_max: float = 5.0
    healthy_after: float = 1.0
    redirect_limit: int = 3
    degraded_mode: str = "exact"
    start_method: Optional[str] = None
    transport: str = "pipe"
    shm_slots: int = 8
    shm_slot_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        fam = get_family(self.family)
        params = fam.resolve_params(self.width, window=self.window)
        self.window = fam.primary_value(self.width, params)
        if self.workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.backend is None:
            self.backend = "numpy" if self.width <= 64 else "bigint"
        if self.backend not in EXECUTOR_BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"expected one of {EXECUTOR_BACKENDS}")
        if self.shard_policy not in SHARD_POLICY_NAMES:
            raise ValueError(f"unknown shard policy "
                             f"{self.shard_policy!r}; expected one of "
                             f"{SHARD_POLICY_NAMES}")
        if self.max_batch_ops < 1 or self.worker_queue_ops < 1:
            raise ValueError("batch/queue bounds must be positive")
        if self.wire_inflight < 1:
            raise ValueError("wire_inflight must be at least 1")
        if self.degraded_mode not in ("exact", "error"):
            raise ValueError("degraded_mode must be 'exact' or 'error'")
        if self.transport not in TRANSPORT_NAMES:
            raise ValueError(f"unknown transport {self.transport!r}; "
                             f"expected one of {TRANSPORT_NAMES}")
        if self.shm_slots < 2:
            raise ValueError("shm_slots must be at least 2 "
                             "(one in flight, one being filled)")
        if self.shm_slot_bytes is not None and self.shm_slot_bytes < 4096:
            raise ValueError("shm_slot_bytes must be at least 4096")

    def resolved_slot_bytes(self) -> int:
        """Effective shm slot size (explicit, or sized to the batch cap)."""
        if self.shm_slot_bytes is not None:
            return self.shm_slot_bytes
        from .transport import default_slot_bytes
        return default_slot_bytes(self.max_batch_ops)

    def reconfigure(self, window: Optional[int] = None,
                    family: Optional[str] = None,
                    max_batch_ops: Optional[int] = None) -> Dict[str, Any]:
        """Re-resolve the serving knobs in place (the autotune path).

        Mutates this config so future worker (re)spawns inherit the new
        configuration; returns :meth:`worker_dict` for broadcasting to
        already-live workers.  ``window`` follows the constructor
        convention (the family's primary knob; ``None`` with a family
        change = the new family's default).
        """
        if family is not None:
            get_family(family)  # fail fast before mutating
            self.family = family
        if window is not None or family is not None:
            fam = get_family(self.family)
            params = fam.resolve_params(self.width, window=window)
            self.window = fam.primary_value(self.width, params)
        if max_batch_ops is not None:
            if max_batch_ops < 1:
                raise ValueError("max_batch_ops must be positive")
            self.max_batch_ops = max_batch_ops
        return self.worker_dict()

    def resolve_start_method(self) -> str:
        method = (self.start_method
                  or os.environ.get("REPRO_MP_START", "spawn"))
        if method not in multiprocessing.get_all_start_methods():
            raise ValueError(f"start method {method!r} unavailable here")
        return method

    def worker_dict(self) -> Dict[str, Any]:
        """The subset a worker process needs, as picklable primitives."""
        return {
            "width": self.width,
            "window": self.window,
            "family": self.family,
            "recovery_cycles": self.recovery_cycles,
            "backend": self.backend,
            "heartbeat_interval": self.heartbeat_interval,
        }
