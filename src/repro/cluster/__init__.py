"""Multi-process VLSA serving cluster (layer 8).

A sharded pool of worker processes behind an asyncio router that keeps
the single-process service's submission contract — plus supervision
(heartbeats, crash/hang detection, backoff restarts), failover with a
degraded exact-addition fallback, and cluster-wide metrics aggregation.
See :mod:`repro.cluster.router` for the data path,
:mod:`repro.cluster.supervisor` for the control path, and
:mod:`repro.cluster.transport` for the wire (pickle-over-pipe or
zero-copy shared-memory rings).
"""

from .config import SHARD_POLICY_NAMES, TRANSPORT_NAMES, ClusterConfig
from .router import (
    SHARD_POLICIES,
    ClusterRouter,
    ClusterUnhealthyError,
    register_shard_policy,
)
from .supervisor import WorkerHandle, WorkerSupervisor
from .sync import SyncCluster, close_shared_cluster, shared_cluster
from .transport import (
    PipeTransport,
    Ring,
    ShmRingTransport,
    Transport,
    make_transport,
)

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterUnhealthyError",
    "PipeTransport",
    "Ring",
    "SHARD_POLICIES",
    "SHARD_POLICY_NAMES",
    "ShmRingTransport",
    "SyncCluster",
    "Transport",
    "TRANSPORT_NAMES",
    "make_transport",
    "WorkerHandle",
    "WorkerSupervisor",
    "close_shared_cluster",
    "register_shard_policy",
    "shared_cluster",
]
