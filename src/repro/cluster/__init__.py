"""Multi-process VLSA serving cluster (layer 8).

A sharded pool of worker processes behind an asyncio router that keeps
the single-process service's submission contract — plus supervision
(heartbeats, crash/hang detection, backoff restarts), failover with a
degraded exact-addition fallback, and cluster-wide metrics aggregation.
See :mod:`repro.cluster.router` for the data path and
:mod:`repro.cluster.supervisor` for the control path.
"""

from .config import SHARD_POLICY_NAMES, ClusterConfig
from .router import (
    SHARD_POLICIES,
    ClusterRouter,
    ClusterUnhealthyError,
    register_shard_policy,
)
from .supervisor import WorkerHandle, WorkerSupervisor
from .sync import SyncCluster, close_shared_cluster, shared_cluster

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterUnhealthyError",
    "SHARD_POLICIES",
    "SHARD_POLICY_NAMES",
    "SyncCluster",
    "WorkerHandle",
    "WorkerSupervisor",
    "close_shared_cluster",
    "register_shard_policy",
    "shared_cluster",
]
