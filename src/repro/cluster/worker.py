"""The cluster worker process: one executor, one channel, one loop.

``worker_main`` is the spawn target.  It owns a
:class:`~repro.service.executor.VlsaBatchExecutor` (the same kernels the
single-process service runs), a private
:class:`~repro.service.metrics.MetricsRegistry`, and a worker-local
virtual cycle clock; it reads wire batches off its transport channel
(pipe or shared-memory ring — see :mod:`repro.cluster.transport`),
executes them, and replies with array-native results (numpy backend) or
lists (bigint fallback).

The worker is deliberately synchronous and single-threaded: the paper's
datapath is a serial accelerator, and a worker models exactly one of
them.  Parallelism is the *pool's* job.  Heartbeats ride the gaps —
``channel.recv(interval)`` doubles as the idle timer — and every
heartbeat ships the full metrics state so the router's cluster-wide
aggregation is never staler than one interval.  Heartbeats are the one
message class a full shm ring may shed (they are idempotent and the
next one carries strictly newer state); results always block for space.

When the router vanishes the worker does **not** exit silently: it
prints one structured ``VLSA_WORKER_TRACE`` JSON line to stderr first,
so supervisor restarts stay attributable in tests and post-mortems.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict

from ..service.executor import VlsaBatchExecutor
from ..service.metrics import MetricsRegistry
from . import protocol
from .transport import ChannelClosed, WorkerChannel

__all__ = ["worker_main", "DEATH_TRACE_MARKER"]

#: stderr marker prefixing the structured death-trace JSON line.
DEATH_TRACE_MARKER = "VLSA_WORKER_TRACE"


def _death_trace(reason: str, worker_id: int,
                 registry: MetricsRegistry, channel: WorkerChannel) -> None:
    """Emit a structured death event before exiting.

    The channel to the router is gone by definition here, so stderr is
    the only remaining lane; the supervisor's restart shows up in the
    router trace, this line explains *why* from the worker's side.
    """
    state = registry.state()

    def _val(name: str) -> int:
        return state.get(name, {}).get("state", {}).get("value", 0)

    record = {
        "event": "worker_channel_closed",
        "reason": reason,
        "worker_id": worker_id,
        "pid": os.getpid(),
        "transport": channel.transport_name,
        "ops_total": _val("worker_ops_total"),
        "batches_total": _val("worker_batches_total"),
    }
    print(f"{DEATH_TRACE_MARKER} {json.dumps(record, sort_keys=True)}",
          file=sys.stderr, flush=True)


def worker_main(worker_id: int, channel: WorkerChannel,
                cfg: Dict[str, Any]) -> None:
    """Entry point of one worker process (see module docstring).

    Args:
        worker_id: Slot index, echoed in heartbeats.
        channel: The worker-side transport endpoint.
        cfg: :meth:`~repro.cluster.config.ClusterConfig.worker_dict`.
    """
    executor = VlsaBatchExecutor(cfg["width"], window=cfg["window"],
                                 recovery_cycles=cfg["recovery_cycles"],
                                 backend=cfg["backend"],
                                 family=cfg.get("family", "aca"))
    registry = MetricsRegistry()
    m_ops = registry.counter(
        "worker_ops_total", "additions executed by this worker")
    m_stalls = registry.counter(
        "worker_stalls_total", "additions that took the recovery path")
    m_batches = registry.counter(
        "worker_batches_total", "wire batches executed")
    m_reconfigs = registry.counter(
        "worker_reconfigs_total", "live configuration swaps applied")
    m_sheds = registry.counter(
        "worker_heartbeat_sheds_total",
        "heartbeats dropped because the outbound ring was full")
    m_cycles = registry.gauge(
        "worker_cycles", "virtual cycles on this worker's accelerator")
    h_batch = registry.histogram(
        "worker_batch_size_ops", "additions per wire batch",
        reservoir_size=2048)
    registry.gauge("worker_pid", "OS pid of the worker process").set(
        os.getpid())

    interval = cfg["heartbeat_interval"]
    cycle = 0
    last_beat = 0.0  # force an immediate readiness heartbeat

    def beat() -> None:
        nonlocal last_beat
        if not channel.send(protocol.heartbeat_msg(worker_id,
                                                   registry.state()),
                            shed_if_full=True):
            m_sheds.inc()
        last_beat = time.monotonic()

    while True:
        try:
            msg = channel.recv(interval)
            if msg is None:
                beat()
                continue
        except ChannelClosed:
            _death_trace("recv", worker_id, registry, channel)
            channel.close()
            return  # router went away; nothing left to serve
        kind = msg[0]
        if kind == protocol.SHUTDOWN:
            try:
                channel.send(protocol.bye_msg(worker_id, registry.state()))
            except ChannelClosed:
                _death_trace("bye_send", worker_id, registry, channel)
            channel.close()
            return
        if kind == protocol.CONFIG:
            # Live reconfiguration (autotune): rebuild the executor
            # from the merged config.  The loop is serial, so this
            # always lands between batches; recovery is exact at every
            # configuration, so results stay bit-identical.
            cfg = {**cfg, **msg[1]}
            executor = VlsaBatchExecutor(
                cfg["width"], window=cfg["window"],
                recovery_cycles=cfg["recovery_cycles"],
                backend=cfg["backend"],
                family=cfg.get("family", "aca"))
            m_reconfigs.inc()
            continue
        if kind == protocol.HANG:  # chaos hook: go silent
            time.sleep(msg[1])
            continue
        if kind == protocol.CRASH:  # chaos hook: die without cleanup
            os._exit(msg[1])
        if kind != protocol.BATCH:
            continue  # unknown kinds are ignored, not fatal
        _, msg_id, payload = msg

        if executor.backend == "numpy":
            arrays = executor.execute_arrays(
                executor.coerce_pairs_array(payload))
            n, stalls = arrays.size, arrays.stall_count
            result = {"sums": arrays.sums, "couts": arrays.couts,
                      "stalled": arrays.stalled,
                      "spec_errors": arrays.spec_errors,
                      "cycles": arrays.cycles}
        else:
            outcome = executor.execute(payload)
            n, stalls = outcome.size, outcome.stall_count
            result = {"sums": outcome.sums, "couts": outcome.couts,
                      "stalled": outcome.stalled,
                      "spec_errors": outcome.spec_errors,
                      "cycles": outcome.cycles}
        result["start_cycle"] = cycle
        cycle += result["cycles"]
        m_ops.inc(n)
        m_stalls.inc(stalls)
        m_batches.inc()
        m_cycles.set(cycle)
        h_batch.record(n)
        result["counters"] = protocol.light_counters(
            m_ops.value, m_stalls.value, m_batches.value, cycle)
        try:
            channel.send(protocol.result_msg(msg_id, result))
        except ChannelClosed:
            # The silent-exit bug this replaces: dying here without a
            # trace made supervisor restarts unattributable.
            _death_trace("result_send", worker_id, registry, channel)
            channel.close()
            return
        if time.monotonic() - last_beat >= interval:
            beat()
