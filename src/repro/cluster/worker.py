"""The cluster worker process: one executor, one pipe, one loop.

``worker_main`` is the spawn target.  It owns a
:class:`~repro.service.executor.VlsaBatchExecutor` (the same kernels the
single-process service runs), a private
:class:`~repro.service.metrics.MetricsRegistry`, and a worker-local
virtual cycle clock; it reads wire batches off its pipe, executes them,
and replies with array-native results (numpy backend) or lists (bigint
fallback).

The worker is deliberately synchronous and single-threaded: the paper's
datapath is a serial accelerator, and a worker models exactly one of
them.  Parallelism is the *pool's* job.  Heartbeats ride the gaps —
``conn.poll(interval)`` doubles as the idle timer — and every heartbeat
ships the full metrics state so the router's cluster-wide aggregation
is never staler than one interval.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from ..service.executor import VlsaBatchExecutor
from ..service.metrics import MetricsRegistry
from . import protocol

__all__ = ["worker_main"]


def worker_main(worker_id: int, conn, cfg: Dict[str, Any]) -> None:
    """Entry point of one worker process (see module docstring).

    Args:
        worker_id: Slot index, echoed in heartbeats.
        conn: The child end of a duplex ``multiprocessing.Pipe``.
        cfg: :meth:`~repro.cluster.config.ClusterConfig.worker_dict`.
    """
    executor = VlsaBatchExecutor(cfg["width"], window=cfg["window"],
                                 recovery_cycles=cfg["recovery_cycles"],
                                 backend=cfg["backend"],
                                 family=cfg.get("family", "aca"))
    registry = MetricsRegistry()
    m_ops = registry.counter(
        "worker_ops_total", "additions executed by this worker")
    m_stalls = registry.counter(
        "worker_stalls_total", "additions that took the recovery path")
    m_batches = registry.counter(
        "worker_batches_total", "wire batches executed")
    m_reconfigs = registry.counter(
        "worker_reconfigs_total", "live configuration swaps applied")
    m_cycles = registry.gauge(
        "worker_cycles", "virtual cycles on this worker's accelerator")
    h_batch = registry.histogram(
        "worker_batch_size_ops", "additions per wire batch",
        reservoir_size=2048)
    registry.gauge("worker_pid", "OS pid of the worker process").set(
        os.getpid())

    interval = cfg["heartbeat_interval"]
    cycle = 0
    last_beat = 0.0  # force an immediate readiness heartbeat

    def beat() -> None:
        nonlocal last_beat
        conn.send(protocol.heartbeat_msg(worker_id, registry.state()))
        last_beat = time.monotonic()

    while True:
        try:
            if not conn.poll(interval):
                beat()
                continue
            msg = conn.recv()
        except (EOFError, OSError):
            return  # router went away; nothing left to serve
        kind = msg[0]
        if kind == protocol.SHUTDOWN:
            conn.send(protocol.bye_msg(worker_id, registry.state()))
            return
        if kind == protocol.CONFIG:
            # Live reconfiguration (autotune): rebuild the executor
            # from the merged config.  The loop is serial, so this
            # always lands between batches; recovery is exact at every
            # configuration, so results stay bit-identical.
            cfg = {**cfg, **msg[1]}
            executor = VlsaBatchExecutor(
                cfg["width"], window=cfg["window"],
                recovery_cycles=cfg["recovery_cycles"],
                backend=cfg["backend"],
                family=cfg.get("family", "aca"))
            m_reconfigs.inc()
            continue
        if kind == protocol.HANG:  # chaos hook: go silent
            time.sleep(msg[1])
            continue
        if kind == protocol.CRASH:  # chaos hook: die without cleanup
            os._exit(msg[1])
        if kind != protocol.BATCH:
            continue  # unknown kinds are ignored, not fatal
        _, msg_id, payload = msg

        if executor.backend == "numpy":
            arrays = executor.execute_arrays(
                executor.coerce_pairs_array(payload))
            n, stalls = arrays.size, arrays.stall_count
            result = {"sums": arrays.sums, "couts": arrays.couts,
                      "stalled": arrays.stalled,
                      "spec_errors": arrays.spec_errors,
                      "cycles": arrays.cycles}
        else:
            outcome = executor.execute(payload)
            n, stalls = outcome.size, outcome.stall_count
            result = {"sums": outcome.sums, "couts": outcome.couts,
                      "stalled": outcome.stalled,
                      "spec_errors": outcome.spec_errors,
                      "cycles": outcome.cycles}
        result["start_cycle"] = cycle
        cycle += result["cycles"]
        m_ops.inc(n)
        m_stalls.inc(stalls)
        m_batches.inc()
        m_cycles.set(cycle)
        h_batch.record(n)
        result["counters"] = protocol.light_counters(
            m_ops.value, m_stalls.value, m_batches.value, cycle)
        try:
            conn.send(protocol.result_msg(msg_id, result))
        except (BrokenPipeError, OSError):
            return
        if time.monotonic() - last_beat >= interval:
            beat()
