"""Synchronous facade over :class:`~repro.cluster.router.ClusterRouter`.

The differential verifier (and any other plain-function caller) wants
``run(pairs) -> results`` with no event loop in sight.  ``SyncCluster``
runs a private asyncio loop on a daemon thread, starts a router on it,
and exposes blocking ``add`` / ``add_batch`` calls bridged with
``asyncio.run_coroutine_threadsafe``.

Because a cluster spawns OS processes (~half a second each with the
``spawn`` start method), :func:`shared_cluster` keeps a small LRU
cache: repeated requests for the same configuration reuse one running
pool — two slots, so the verifier can hold the pipe and shm transports
live side by side — and whatever is live at interpreter exit is torn
down by an ``atexit`` hook.  The verifier's eight in-process implementations
stay as cheap as ever; only the cluster adapter pays the boot cost, and
only once per configuration.
"""

from __future__ import annotations

import asyncio
import atexit
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from .config import ClusterConfig
from .router import ClusterRouter

__all__ = ["SyncCluster", "shared_cluster", "close_shared_cluster"]

Pair = Tuple[int, int]


class SyncCluster:
    """Blocking wrapper: one router, one loop thread, simple calls."""

    def __init__(self, cfg: Optional[ClusterConfig] = None, *,
                 ready_timeout: float = 60.0, **cfg_kwargs):
        self.cfg = cfg if cfg is not None else ClusterConfig(**cfg_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="vlsa-sync-cluster",
            daemon=True)
        self._thread.start()
        self.router = ClusterRouter(self.cfg)
        self._call(self.router.start(), timeout=ready_timeout)
        self._call(self.router.wait_ready(timeout=ready_timeout),
                   timeout=ready_timeout + 5.0)
        self._closed = False

    def _call(self, coro, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(timeout)

    # -- blocking API ----------------------------------------------------
    def add(self, a: int, b: int, timeout: Optional[float] = None):
        """One addition; returns :class:`~repro.service.AddResponse`."""
        return self._call(self.router.submit(a, b), timeout)

    def add_batch(self, pairs: Sequence[Pair],
                  timeout: Optional[float] = None):
        """One batch; returns :class:`~repro.service.BatchResponse`."""
        return self._call(self.router.submit_batch(pairs), timeout)

    def metrics_json(self):
        return self.router.metrics_json()

    @property
    def backend_name(self) -> str:
        return self.router.backend_name

    def close(self, timeout: float = 15.0) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self.router.stop(), timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop.close()

    def __enter__(self) -> "SyncCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Shared pool cache (process-wide, for the verifier)
# ----------------------------------------------------------------------
_shared_lock = threading.Lock()
_shared: "OrderedDict[Tuple, SyncCluster]" = OrderedDict()
#: Verifying the pipe and shm transports against each other needs two
#: live pools at once; anything beyond that is an idle pool hoarding
#: worker processes, so the least recently used one is torn down.
_SHARED_SLOTS = 2


def _key(cfg: ClusterConfig) -> Tuple:
    return (cfg.width, cfg.window, cfg.recovery_cycles, cfg.workers,
            cfg.backend, cfg.shard_policy, cfg.family, cfg.transport)


def shared_cluster(cfg: Optional[ClusterConfig] = None,
                   **cfg_kwargs) -> SyncCluster:
    """A process-wide cached :class:`SyncCluster` for *cfg*.

    Up to ``_SHARED_SLOTS`` configurations stay warm — the differential
    verifier interleaves the pipe and shm transports chunk by chunk, so
    a single slot would reboot a pool per chunk.  A request beyond the
    cap tears the least recently used pool down first.
    """
    cfg = cfg if cfg is not None else ClusterConfig(**cfg_kwargs)
    key = _key(cfg)
    with _shared_lock:
        cluster = _shared.get(key)
        if cluster is not None:
            _shared.move_to_end(key)
            return cluster
        while len(_shared) >= _SHARED_SLOTS:
            _, oldest = _shared.popitem(last=False)
            oldest.close()
        cluster = SyncCluster(cfg)
        _shared[key] = cluster
        return cluster


def close_shared_cluster() -> None:
    """Tear down every cached cluster (idempotent; also runs at exit)."""
    with _shared_lock:
        while _shared:
            _, cluster = _shared.popitem(last=False)
            cluster.close()


atexit.register(close_shared_cluster)
