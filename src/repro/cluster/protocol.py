"""Wire protocol between the cluster router and its worker processes.

Messages are plain tuples ``(kind, *payload)`` sent over
``multiprocessing`` pipe connections (pickle framing comes for free and
numpy arrays serialise as buffer copies).  Keeping the vocabulary in one
module — with constructors and a tiny validator — means the router,
supervisor, worker and the tests all speak from the same sheet.

Router -> worker:

* ``(BATCH, msg_id, payload)`` — one coalesced wire batch.  *payload*
  is a ``(n, 2)`` uint64 ndarray on the numpy backend, else a list of
  ``(a, b)`` int tuples (arbitrary-width bigint path).
* ``(SHUTDOWN,)`` — finish in-hand work, ship a final snapshot, exit 0.
* ``(CONFIG, cfg)`` — live reconfiguration (autotune): *cfg* is a
  partial :meth:`~repro.cluster.config.ClusterConfig.worker_dict`; the
  worker rebuilds its executor with the merged configuration before the
  next batch.  The worker loop is serial, so the swap is atomic with
  respect to batches — exactly the service's between-micro-batch
  guarantee.
* ``(HANG, seconds)`` / ``(CRASH, exit_code)`` — chaos hooks for the
  supervision tests (a real deployment never sends them).

Worker -> router:

* ``(RESULT, msg_id, result)`` — *result* is a dict: ``sums`` /
  ``couts`` / ``stalled`` / ``spec_errors`` (arrays or lists),
  ``cycles``, ``start_cycle`` (worker-local clock) and ``counters``
  (lightweight running totals, see :func:`light_counters`).
* ``(HEARTBEAT, worker_id, state)`` — liveness beacon carrying the full
  :meth:`~repro.service.metrics.MetricsRegistry.state` snapshot.
* ``(BYE, worker_id, state)`` — graceful-shutdown acknowledgement with
  the final snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = [
    "BATCH", "SHUTDOWN", "CONFIG", "HANG", "CRASH",
    "RESULT", "HEARTBEAT", "BYE",
    "batch_msg", "config_msg", "result_msg", "heartbeat_msg", "bye_msg",
    "light_counters",
]

# Router -> worker kinds.
BATCH = "batch"
SHUTDOWN = "shutdown"
CONFIG = "config"
HANG = "hang"
CRASH = "crash"

# Worker -> router kinds.
RESULT = "result"
HEARTBEAT = "hb"
BYE = "bye"

Message = Tuple[Any, ...]


def batch_msg(msg_id: int, payload: Any) -> Message:
    return (BATCH, msg_id, payload)


def config_msg(cfg: Dict[str, Any]) -> Message:
    return (CONFIG, cfg)


def result_msg(msg_id: int, result: Dict[str, Any]) -> Message:
    return (RESULT, msg_id, result)


def heartbeat_msg(worker_id: int, state: Dict[str, Any]) -> Message:
    return (HEARTBEAT, worker_id, state)


def bye_msg(worker_id: int, state: Dict[str, Any]) -> Message:
    return (BYE, worker_id, state)


def light_counters(ops: int, stalls: int, batches: int,
                   cycles: int) -> Dict[str, int]:
    """Cheap per-result running totals (full state rides heartbeats).

    Attached to every RESULT so the router's last-known view of a
    worker is never staler than its last delivered batch — the metrics
    conservation identity (worker-reported ops >= router-delivered
    ops) holds even when a crash eats the final heartbeat.
    """
    return {"ops": ops, "stalls": stalls, "batches": batches,
            "cycles": cycles}
