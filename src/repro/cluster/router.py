"""`ClusterRouter` — the asyncio front door of the worker pool.

The router is to the cluster what :class:`~repro.service.VlsaService` is
to one process: the same submission API (``submit`` / ``submit_batch``
with timeout, retry and cancellation), the same backpressure-by-
rejection contract, the same response dataclasses — so every existing
client, the TCP server and the load generator drive it unchanged.  What
differs is what happens behind admission:

* **Sharding.**  A pluggable policy picks the worker: ``round_robin``
  (scan from a rotating cursor), ``least_loaded`` (fewest additions
  owed), or ``hash`` (operand-hash affinity — the same operand pair
  always lands on the same live worker).  Policies are registered in
  :data:`SHARD_POLICIES`; tests register mutants the same way.
* **Bounded per-worker queues.**  Each worker may owe at most
  ``worker_queue_ops`` additions (backlog + on the wire).  When the
  policy finds no worker with headroom the submission is rejected with
  :class:`~repro.service.ServiceOverloadedError` — memory stays bounded
  under any offered load, exactly the PR 2 semantics.
* **Wire coalescing.**  Per worker, queued requests are packed into
  batches of up to ``max_batch_ops`` additions with a bounded number in
  flight (``wire_inflight``), so the worker computes batch *k* while
  the router packs *k+1* — the micro-batcher pattern, stretched over a
  pipe.
* **Failover and degraded mode.**  When the supervisor declares a
  worker dead its un-answered requests are redirected to survivors
  (at most ``redirect_limit`` times each); with zero live workers the
  router either serves exact (carry-complete, non-speculative)
  additions in-process — counted in ``degraded_requests_total`` — or
  fails fast, per ``degraded_mode``.  Results are resolved exactly
  once: a late reply from a worker already failed over is dropped, and
  a redirected request only answers through its new owner.
* **Cluster-wide observability.**  The router's own registry holds the
  authoritative request/op accounting; workers ship their registries in
  heartbeats and result piggybacks, and :meth:`metrics_json` /
  :meth:`metrics_prometheus` export the merged view plus per-worker
  breakdowns (dead workers' final states are retired, not lost).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.error_model import expected_latency_cycles
from ..families import get_family
from ..engine.context import RunContext
from ..service.metrics import MetricsRegistry
from ..service.service import (
    AddResponse,
    BatchResponse,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..service.tracing import Tracer
from . import protocol
from .config import ClusterConfig
from .supervisor import WorkerHandle, WorkerSupervisor

__all__ = ["ClusterRouter", "ClusterUnhealthyError", "SHARD_POLICIES",
           "register_shard_policy"]

Pair = Tuple[int, int]


class ClusterUnhealthyError(ServiceError):
    """No live worker and the degraded fallback is disabled."""


@dataclass
class _Pending:
    """One admitted request (scalar add or client batch)."""

    payload: Any            # (n, 2) uint64 ndarray, or list of pairs
    future: "asyncio.Future"
    scalar: bool
    ops: int
    id: int = 0
    enqueued_at: float = 0.0
    attempts: int = 0
    scalar_pair: Optional[Pair] = None


@dataclass
class _WireBatch:
    """One message on a worker's pipe awaiting its result."""

    pendings: List[_Pending]
    offsets: List[int]      # op offset of each pending in the payload
    ops: int
    sent_at: float = field(default_factory=time.monotonic)


# ----------------------------------------------------------------------
# Shard policies
# ----------------------------------------------------------------------
def _has_room(router: "ClusterRouter", handle: WorkerHandle) -> bool:
    # Strictly below the bound: a worker with an empty ledger can take
    # any batch, so oversized batches still make progress.
    return handle.load_ops < router.cfg.worker_queue_ops


def _policy_round_robin(router: "ClusterRouter", live, ops: int,
                        key: Optional[Pair]):
    start = next(router._rr) % len(live)
    for i in range(len(live)):
        handle = live[(start + i) % len(live)]
        if _has_room(router, handle):
            return handle
    return None


def _policy_least_loaded(router: "ClusterRouter", live, ops: int,
                         key: Optional[Pair]):
    handle = min(live, key=lambda h: h.load_ops)
    return handle if _has_room(router, handle) else None


def _policy_hash(router: "ClusterRouter", live, ops: int,
                 key: Optional[Pair]):
    a, b = key if key is not None else (0, 0)
    mixed = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    handle = live[(mixed >> 32) % len(live)]
    # Affinity is strict: a full affine worker rejects rather than
    # spilling (spilling would silently break same-operand locality).
    return handle if _has_room(router, handle) else None


SHARD_POLICIES: Dict[str, Callable] = {
    "round_robin": _policy_round_robin,
    "least_loaded": _policy_least_loaded,
    "hash": _policy_hash,
}


def register_shard_policy(name: str, policy: Callable) -> None:
    """Register a custom ``(router, live, ops, key) -> handle`` policy."""
    SHARD_POLICIES[name] = policy


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class ClusterRouter:
    """Multi-process sharded serving front end (see module docstring).

    Args:
        cfg: Cluster configuration (pool size, policy, bounds, timers).
        ctx: Optional run context (trace events, counters).
        registry: Router-side metrics registry (default: fresh).
    """

    def __init__(self, cfg: Optional[ClusterConfig] = None,
                 ctx: Optional[RunContext] = None,
                 registry: Optional[MetricsRegistry] = None,
                 **cfg_kwargs):
        if cfg is None:
            cfg = ClusterConfig(**cfg_kwargs)
        elif cfg_kwargs:
            raise ValueError("pass either cfg or keyword knobs, not both")
        self.cfg = cfg
        self.width = cfg.width
        self.window = cfg.window
        self.family = cfg.family
        self.recovery_cycles = cfg.recovery_cycles
        self.max_batch_ops = cfg.max_batch_ops
        self._operand_mask = (1 << self.width) - 1
        self.ctx = ctx
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(ctx=ctx)
        self._policy = SHARD_POLICIES[cfg.shard_policy]
        self._rr = itertools.count()
        self._ids = itertools.count()
        self._msg_ids = itertools.count()
        self._cycle = 0
        self._running = False
        self._retired = MetricsRegistry()  # dead workers' final states
        self.supervisor = WorkerSupervisor(
            cfg, self.registry, self.tracer,
            on_message=self._on_message, on_failover=self._on_failover)
        self._make_metrics()

    def _make_metrics(self) -> None:
        reg = self.registry
        self.m_ops = reg.counter(
            "ops_total", "additions served to completion")
        self.m_requests = reg.counter(
            "requests_total", "requests admitted by the router")
        self.m_stalls = reg.counter(
            "stalls_total", "additions that took the recovery path")
        self.m_spec_errors = reg.counter(
            "speculative_errors_total",
            "additions whose speculative sum was actually wrong")
        self.m_batches = reg.counter(
            "batches_total", "wire batches completed")
        self.m_rejected = reg.counter(
            "rejected_total", "submissions refused for backpressure")
        self.m_timeouts = reg.counter(
            "timeouts_total", "requests abandoned by caller deadline")
        self.m_cancelled = reg.counter(
            "cancelled_total", "requests abandoned by caller cancellation")
        self.m_retries = reg.counter(
            "retries_total", "admission retries after overload")
        self.m_redirected = reg.counter(
            "redirected_requests_total",
            "requests re-routed away from a dead worker")
        self.m_degraded = reg.counter(
            "degraded_requests_total",
            "requests served by the in-process exact fallback")
        self.m_degraded_ops = reg.counter(
            "degraded_ops_total", "additions served by the exact fallback")
        self.m_failed = reg.counter(
            "failed_requests_total",
            "requests that exhausted redirects or died with the cluster")
        self.m_reconfigs = reg.counter(
            "reconfigurations_total",
            "live configuration swaps broadcast to the pool")
        self.m_queue_depth = reg.gauge(
            "queue_depth", "additions backlogged across all workers")
        self.m_inflight = reg.gauge(
            "inflight_requests", "requests admitted but not yet resolved")
        self.m_cycles = reg.gauge(
            "accelerator_cycles", "virtual cycles summed over all workers")
        self.h_batch = reg.histogram(
            "batch_size_ops", "additions per completed wire batch")
        self.h_latency = reg.histogram(
            "latency_cycles", "per-addition latency in cycles")
        self.h_wall = reg.histogram(
            "request_wall_seconds", "request wall time, admission to response")
        # Transport-layer accounting, synced from the per-worker
        # channels' I/O threads (deltas for counters, sums for gauges).
        self.m_tx_bytes = reg.counter(
            "transport_tx_bytes_total",
            "payload bytes shipped router -> workers")
        self.m_rx_bytes = reg.counter(
            "transport_rx_bytes_total",
            "payload bytes shipped workers -> router")
        self.m_tx_msgs = reg.counter(
            "transport_tx_msgs_total", "messages shipped router -> workers")
        self.m_rx_msgs = reg.counter(
            "transport_rx_msgs_total", "messages shipped workers -> router")
        self.m_pipe_fallback = reg.counter(
            "transport_pipe_fallback_total",
            "messages too large for a ring slot, sent via the control pipe")
        self.m_ring_stalls = reg.counter(
            "transport_ring_full_stalls_total",
            "producer waits on a full ring (back-pressure events)")
        self.g_ring_tx = reg.gauge(
            "ring_tx_occupancy_slots",
            "router->worker ring slots published but not retired")
        self.g_ring_rx = reg.gauge(
            "ring_rx_occupancy_slots",
            "worker->router ring slots published but not retired")
        self._tstats_seen: Dict[int, Dict[str, int]] = {}

    def _sync_transport_metrics(self) -> None:
        """Fold channel I/O-thread accounting into the registry.

        Counters accumulate deltas per worker id (channels die with
        their workers); occupancy gauges are instantaneous sums over
        the live pool.
        """
        tx_occ = rx_occ = 0
        for handle in self.supervisor.live:
            stats = handle.transport_stats()
            if not stats:
                continue
            tx_occ += stats.get("ring_tx_occupancy", 0)
            rx_occ += stats.get("ring_rx_occupancy", 0)
            self._fold_channel_stats(handle.wid, stats)
        self.g_ring_tx.set(tx_occ)
        self.g_ring_rx.set(rx_occ)

    def _fold_channel_stats(self, wid: int, stats: Dict[str, int]) -> None:
        seen = self._tstats_seen.setdefault(wid, {})
        for key, counter in (("tx_bytes", self.m_tx_bytes),
                             ("rx_bytes", self.m_rx_bytes),
                             ("tx_msgs", self.m_tx_msgs),
                             ("rx_msgs", self.m_rx_msgs),
                             ("pipe_fallbacks", self.m_pipe_fallback),
                             ("ring_full_stalls", self.m_ring_stalls)):
            value = stats.get(key, 0)
            delta = value - seen.get(key, 0)
            if delta > 0:
                counter.inc(delta)
            seen[key] = value

    # -- analytic model / descriptors -----------------------------------
    @property
    def analytic_stall_probability(self) -> float:
        fam = get_family(self.family)
        params = fam.resolve_params(self.width, window=self.window)
        return float(fam.error_model(self.width, **params).flag_rate)

    @property
    def analytic_latency_cycles(self) -> float:
        return expected_latency_cycles(self.analytic_stall_probability,
                                       self.recovery_cycles)

    @property
    def backend_name(self) -> str:
        return f"cluster:{self.cfg.workers}x{self.cfg.backend}"

    @property
    def cycle(self) -> int:
        """Virtual cycles summed over all workers (plus degraded adds)."""
        return self._cycle

    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        return sum(h.backlog_ops for h in self.supervisor.live)

    @property
    def mean_latency_cycles(self) -> float:
        return self.h_latency.mean if self.h_latency.count else 0.0

    def reconfigure(self, window: Optional[int] = None,
                    family: Optional[str] = None,
                    max_batch_ops: Optional[int] = None) -> Dict[str, Any]:
        """Reconfigure the whole pool live (the autotune path).

        The shared :class:`~repro.cluster.config.ClusterConfig` is
        mutated first — workers (re)spawned later inherit the new
        knobs — then a ``CONFIG`` message is broadcast to every live
        worker, which swaps its executor between wire batches.  Batches
        already on the wire complete under the old configuration;
        either way every result is bit-exact, so no fence is needed.
        Returns the applied configuration.
        """
        wd = self.cfg.reconfigure(window=window, family=family,
                                  max_batch_ops=max_batch_ops)
        old = {"window": self.window, "family": self.family,
               "max_batch_ops": self.max_batch_ops}
        self.window = self.cfg.window
        self.family = self.cfg.family
        self.max_batch_ops = self.cfg.max_batch_ops
        patch = {"window": wd["window"], "family": wd["family"]}
        for handle in self.supervisor.live:
            handle.send(protocol.config_msg(patch))
        applied = {"window": self.window, "family": self.family,
                   "max_batch_ops": self.max_batch_ops}
        self.m_reconfigs.inc()
        self.tracer.emit("cluster_reconfigured", old=old, new=applied,
                         live_workers=len(self.supervisor.live))
        return applied

    def describe(self) -> Dict[str, Any]:
        return {"width": self.width, "window": self.window,
                "family": self.family,
                "recovery_cycles": self.recovery_cycles,
                "backend": self.backend_name,
                "workers": self.cfg.workers,
                "transport": self.cfg.transport,
                "shard_policy": self.cfg.shard_policy,
                "worker_queue_ops": self.cfg.worker_queue_ops,
                "max_batch_ops": self.max_batch_ops,
                "degraded_mode": self.cfg.degraded_mode,
                "analytic_latency_cycles": self.analytic_latency_cycles}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ClusterRouter":
        if self._running:
            return self
        self._running = True
        await self.supervisor.start()
        self.tracer.emit("cluster_start", workers=self.cfg.workers,
                         width=self.width, window=self.window,
                         backend=self.cfg.backend,
                         policy=self.cfg.shard_policy,
                         start_method=self.cfg.resolve_start_method())
        return self

    async def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every slot has heartbeated once (spawn done)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            live = self.supervisor.live
            if (len(live) == self.cfg.workers
                    and all(h.metrics_state for h in live)):
                return
            await asyncio.sleep(0.01)
        raise TimeoutError(f"cluster not ready within {timeout}s")

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Drain answered work, retire workers, fail what remains."""
        if not self._running:
            return
        self._running = False
        deadline = time.monotonic() + drain_timeout
        while time.monotonic() < deadline and any(
                h.backlog or h.wire for h in self.supervisor.live):
            await asyncio.sleep(0.005)
        # Retire final metric states before the processes go away.
        for handle in self.supervisor.live:
            handle.send((protocol.SHUTDOWN,))
        grace = time.monotonic() + max(0.5,
                                       4 * self.cfg.heartbeat_interval)
        while time.monotonic() < grace and any(
                not h.metrics_state for h in self.supervisor.live):
            await asyncio.sleep(0.005)
        await self.supervisor.stop()
        leftovers = 0
        for handle in self.supervisor.slots:
            if handle is None:
                continue
            self._retire_worker(handle)
            for pending in self._strip_pendings(handle):
                leftovers += 1
                pending.future.set_exception(
                    ServiceClosedError("cluster stopped"))
        self.tracer.emit("cluster_stop", cycles=self._cycle,
                         ops=self.m_ops.value, leftover_requests=leftovers)

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- submission -----------------------------------------------------
    def _coerce_payload(self, pairs: Sequence[Pair]) -> Tuple[Any, int]:
        if len(pairs) == 0:
            return (np.empty((0, 2), dtype=np.uint64)
                    if self.cfg.backend == "numpy" else []), 0
        if self.cfg.backend == "numpy":
            if (isinstance(pairs, np.ndarray)
                    and pairs.dtype == np.uint64 and pairs.ndim == 2):
                return pairs, int(pairs.shape[0])
            try:
                arr = np.asarray(pairs, dtype=np.uint64)
            except (OverflowError, ValueError, TypeError):
                mask = self._operand_mask
                arr = np.array([[a & mask, b & mask] for a, b in pairs],
                               dtype=np.uint64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("expected (n, 2) operand pairs")
            return arr, int(arr.shape[0])
        mask = self._operand_mask
        masked = [(a & mask, b & mask) for a, b in pairs]
        return masked, len(masked)

    def _first_pair(self, payload: Any) -> Pair:
        if isinstance(payload, np.ndarray):
            return int(payload[0, 0]), int(payload[0, 1])
        return payload[0]

    def _admit(self, payload: Any, ops: int, scalar: bool,
               scalar_pair: Optional[Pair] = None) -> _Pending:
        if not self._running:
            raise ServiceClosedError("cluster is not running; use "
                                     "'async with ClusterRouter(...)'")
        loop = asyncio.get_running_loop()
        pending = _Pending(payload=payload, future=loop.create_future(),
                           scalar=scalar, ops=ops, id=next(self._ids),
                           enqueued_at=loop.time(),
                           scalar_pair=scalar_pair)
        live = self.supervisor.live
        if not live:
            self._resolve_degraded(pending)
            self.m_requests.inc()
            self.m_inflight.inc()
            return pending
        handle = self._policy(self, live, ops, self._first_pair(payload))
        if handle is None:
            self.m_rejected.inc()
            self.tracer.emit("request_rejected", id=pending.id, ops=ops)
            raise ServiceOverloadedError(
                f"every worker is over its {self.cfg.worker_queue_ops}-op "
                f"queue bound")
        self.m_requests.inc()
        self.m_inflight.inc()
        self._enqueue(handle, pending)
        return pending

    def _enqueue(self, handle: WorkerHandle, pending: _Pending) -> None:
        handle.backlog.append(pending)
        handle.backlog_ops += pending.ops
        self.m_queue_depth.set(self.queue_depth)
        self._kick(handle)

    async def _await_response(self, pending: _Pending,
                              timeout: Optional[float]):
        try:
            if timeout is None:
                return await pending.future
            return await asyncio.wait_for(
                asyncio.shield(pending.future), timeout)
        except asyncio.TimeoutError:
            self.m_timeouts.inc()
            self.tracer.emit("request_timeout", id=pending.id)
            pending.future.cancel()
            raise RequestTimeoutError(
                f"no response within {timeout}s") from None
        except asyncio.CancelledError:
            if pending.future.cancelled() or not pending.future.done():
                pending.future.cancel()
                self.m_cancelled.inc()
                self.tracer.emit("request_cancelled", id=pending.id)
            raise
        finally:
            self.m_inflight.dec()

    async def submit(self, a: int, b: int, timeout: Optional[float] = None,
                     retries: int = 0,
                     retry_backoff: float = 0.005) -> AddResponse:
        """Serve one addition (same contract as ``VlsaService.submit``)."""
        a &= self._operand_mask
        b &= self._operand_mask
        payload, ops = self._coerce_payload([(a, b)])
        for attempt in range(retries + 1):
            try:
                pending = self._admit(payload, ops, scalar=True,
                                      scalar_pair=(a, b))
                break
            except ServiceOverloadedError:
                if attempt == retries:
                    raise
                self.m_retries.inc()
                await asyncio.sleep(retry_backoff * (1 << attempt))
        return await self._await_response(pending, timeout)

    async def submit_batch(self, pairs: Sequence[Pair],
                           timeout: Optional[float] = None,
                           retries: int = 0,
                           retry_backoff: float = 0.005) -> BatchResponse:
        """Serve a client batch as one routed request (one shard)."""
        payload, ops = self._coerce_payload(pairs)
        if not ops:
            return BatchResponse([], [], [], [], accept_cycle=self._cycle)
        for attempt in range(retries + 1):
            try:
                pending = self._admit(payload, ops, scalar=False)
                break
            except ServiceOverloadedError:
                if attempt == retries:
                    raise
                self.m_retries.inc()
                await asyncio.sleep(retry_backoff * (1 << attempt))
        return await self._await_response(pending, timeout)

    # -- wire packing ---------------------------------------------------
    def _kick(self, handle: WorkerHandle) -> None:
        """Pack backlog into wire batches up to the pipelining depth."""
        while (handle.alive and handle.backlog
               and len(handle.wire) < self.cfg.wire_inflight):
            group: List[_Pending] = []
            offsets: List[int] = []
            ops = 0
            while handle.backlog and ops < self.max_batch_ops:
                pending = handle.backlog.popleft()
                handle.backlog_ops -= pending.ops
                if pending.future.done():
                    continue  # timed out / cancelled while queued
                offsets.append(ops)
                group.append(pending)
                ops += pending.ops
            if not group:
                continue
            if len(group) == 1:
                payload = group[0].payload
            elif self.cfg.backend == "numpy":
                payload = np.concatenate([p.payload for p in group])
            else:
                payload = [pair for p in group for pair in p.payload]
            msg_id = next(self._msg_ids)
            handle.wire[msg_id] = _WireBatch(pendings=group,
                                             offsets=offsets, ops=ops)
            handle.wire_ops += ops
            handle.send(protocol.batch_msg(msg_id, payload))
        self.m_queue_depth.set(self.queue_depth)

    # -- result / failover handling (loop thread) -----------------------
    def _on_message(self, handle: WorkerHandle, msg) -> None:
        if msg[0] != protocol.RESULT:
            return  # heartbeats/byes are consumed by the supervisor
        _, msg_id, result = msg
        wb = handle.wire.pop(msg_id, None)
        if wb is None:
            return  # already failed over; the redirect will answer
        handle.wire_ops -= wb.ops
        handle.counters = result.get("counters", handle.counters)
        self._resolve_wire_batch(wb, result)
        self._sync_transport_metrics()
        self._kick(handle)

    def _resolve_wire_batch(self, wb: _WireBatch,
                            result: Dict[str, Any]) -> None:
        sums, couts = result["sums"], result["couts"]
        stalled, spec = result["stalled"], result["spec_errors"]
        cycles, start_cycle = result["cycles"], result["start_cycle"]
        is_np = isinstance(sums, np.ndarray)
        n = wb.ops
        stall_count = int(stalled.sum()) if is_np else sum(stalled)
        rc = self.recovery_cycles
        self._cycle += cycles
        self.m_ops.inc(n)
        self.m_stalls.inc(stall_count)
        self.m_spec_errors.inc(int(spec.sum()) if is_np else sum(spec))
        self.m_batches.inc()
        self.m_cycles.set(self._cycle)
        self.h_batch.record(n)
        if n - stall_count:
            self.h_latency.record(1, count=n - stall_count)
        if stall_count:
            self.h_latency.record(1 + rc, count=stall_count)
        now = time.monotonic()
        accept = start_cycle
        for pending, lo in zip(wb.pendings, wb.offsets):
            hi = lo + pending.ops
            seg_stalls = (int(stalled[lo:hi].sum()) if is_np
                          else sum(stalled[lo:hi]))
            seg_cycles = pending.ops + rc * seg_stalls
            if not pending.future.done():
                self.h_wall.record(now - pending.enqueued_at)
                pending.future.set_result(self._build_response(
                    pending, sums[lo:hi], couts[lo:hi], stalled[lo:hi],
                    accept, seg_cycles, seg_stalls, is_np))
            accept += seg_cycles

    def _build_response(self, pending: _Pending, sums, couts, stalled,
                        accept: int, seg_cycles: int, seg_stalls: int,
                        is_np: bool):
        rc = self.recovery_cycles
        if is_np:
            sums, couts, stalled = (sums.tolist(), couts.tolist(),
                                    stalled.tolist())
        if pending.scalar:
            a, b = pending.scalar_pair
            return AddResponse(
                a=a, b=b, sum_out=sums[0], cout=couts[0],
                stalled=stalled[0],
                latency_cycles=1 + (rc if stalled[0] else 0),
                accept_cycle=accept)
        return BatchResponse(
            sums=sums, couts=couts, stalled=stalled,
            latencies=[1 + (rc if f else 0) for f in stalled],
            accept_cycle=accept, cycles=seg_cycles,
            stall_count=seg_stalls)

    def _strip_pendings(self, handle: WorkerHandle) -> List[_Pending]:
        """Take every un-answered request off *handle* (ledger reset)."""
        stripped: List[_Pending] = []
        for msg_id in sorted(handle.wire):
            stripped.extend(handle.wire[msg_id].pendings)
        handle.wire.clear()
        stripped.extend(handle.backlog)
        handle.backlog.clear()
        handle.backlog_ops = handle.wire_ops = 0
        return [p for p in stripped if not p.future.done()]

    def _on_failover(self, handle: WorkerHandle) -> None:
        """Supervisor declared *handle* dead: retire and redirect."""
        self._retire_worker(handle)
        pendings = self._strip_pendings(handle)
        if not pendings:
            return
        self.tracer.emit("failover", wid=handle.wid, slot=handle.slot,
                         requests=len(pendings))
        for pending in pendings:
            pending.attempts += 1
            if pending.attempts > self.cfg.redirect_limit:
                self.m_failed.inc()
                pending.future.set_exception(ServiceError(
                    f"request redirected {pending.attempts - 1} times "
                    f"without an answer"))
                continue
            live = self.supervisor.live
            if not live:
                self._resolve_degraded(pending)
                continue
            # Redirected work bypasses the admission bound (it was
            # already admitted once); least-loaded keeps it fair.
            self.m_redirected.inc()
            self._enqueue(min(live, key=lambda h: h.load_ops), pending)

    # -- degraded path --------------------------------------------------
    def _resolve_degraded(self, pending: _Pending) -> None:
        """Exact in-process addition while the pool is unhealthy."""
        if self.cfg.degraded_mode != "exact":
            self.m_failed.inc()
            pending.future.set_exception(ClusterUnhealthyError(
                "no live worker and degraded mode is disabled"))
            return
        width, mask = self.width, self._operand_mask
        payload, n = pending.payload, pending.ops
        if isinstance(payload, np.ndarray):
            arrays = _exact_add_arrays(payload, width)
            sums, couts = arrays
            sums, couts = sums.tolist(), couts.tolist()
        else:
            sums, couts = [], []
            for a, b in payload:
                total = (a & mask) + (b & mask)
                sums.append(total & mask)
                couts.append(total >> width)
        self.m_degraded.inc()
        self.m_degraded_ops.inc(n)
        self.m_ops.inc(n)
        self._cycle += n  # exact adder: always one (longer) cycle
        self.m_cycles.set(self._cycle)
        self.h_latency.record(1, count=n)
        self.h_wall.record(0.0)
        self.tracer.emit("degraded_request", id=pending.id, ops=n)
        accept = self._cycle - n
        if pending.scalar:
            a, b = pending.scalar_pair
            pending.future.set_result(AddResponse(
                a=a, b=b, sum_out=sums[0], cout=couts[0], stalled=False,
                latency_cycles=1, accept_cycle=accept))
        else:
            pending.future.set_result(BatchResponse(
                sums=sums, couts=couts, stalled=[False] * n,
                latencies=[1] * n, accept_cycle=accept, cycles=n,
                stall_count=0))

    # -- cluster-wide metrics aggregation -------------------------------
    def _patched_worker_state(self, handle: WorkerHandle) -> Dict[str, Any]:
        """Last full snapshot, bumped by fresher result piggybacks."""
        state = {name: {"kind": e["kind"], "help": e["help"],
                        "state": dict(e["state"])}
                 for name, e in handle.metrics_state.items()}
        light = handle.counters
        if light:
            for key, name, kind in (
                    ("ops", "worker_ops_total", "counter"),
                    ("stalls", "worker_stalls_total", "counter"),
                    ("batches", "worker_batches_total", "counter"),
                    ("cycles", "worker_cycles", "gauge")):
                entry = state.setdefault(
                    name, {"kind": kind, "help": "",
                           "state": ({"value": 0} if kind == "counter"
                                     else {"value": 0, "peak": 0})})
                entry["state"]["value"] = max(entry["state"]["value"],
                                              light[key])
                if kind == "gauge":
                    entry["state"]["peak"] = max(entry["state"]["peak"],
                                                 light[key])
        return state

    def _retire_worker(self, handle: WorkerHandle) -> None:
        """Fold a finished worker's final state into the retired bank."""
        stats = handle.transport_stats()
        if stats:
            self._fold_channel_stats(handle.wid, stats)
        self._tstats_seen.pop(handle.wid, None)
        state = self._patched_worker_state(handle)
        if state:
            self._retired.merge_snapshot(state)

    def merged_registry(self) -> MetricsRegistry:
        """Router + retired + live worker registries, merged fresh."""
        self._sync_transport_metrics()
        merged = MetricsRegistry(namespace=self.registry.namespace)
        merged.merge_snapshot(self.registry.state())
        merged.merge_snapshot(self._retired.state())
        for handle in self.supervisor.live:
            merged.merge_snapshot(self._patched_worker_state(handle))
        return merged

    def per_worker_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Per-live-worker metric snapshots, keyed ``slotN/widM``."""
        out: Dict[str, Dict[str, Any]] = {}
        for handle in self.supervisor.live:
            view = MetricsRegistry()
            view.merge_snapshot(self._patched_worker_state(handle))
            out[f"slot{handle.slot}/wid{handle.wid}"] = view.to_json()
        return out

    def metrics_json(self) -> Dict[str, Any]:
        """Merged cluster snapshot plus per-worker breakdowns."""
        out = self.merged_registry().to_json()
        out["per_worker"] = self.per_worker_metrics()
        return out

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition of the merged cluster registry."""
        return self.merged_registry().to_prometheus()


def _exact_add_arrays(arr: np.ndarray, width: int):
    int_mask = (1 << width) - 1
    mask = np.uint64(int_mask if width < 64 else 0xFFFFFFFFFFFFFFFF)
    a = arr[:, 0] & mask
    b = arr[:, 1] & mask
    s = (a + b) & mask
    if width < 64:
        couts = ((a + b) >> np.uint64(width)).astype(np.uint64)
    else:
        couts = (s < a).astype(np.uint64)
    return s, couts
