"""Minimal cycle-based sequential simulation substrate.

The VLSA is a synchronous design (paper Fig. 6): registers, a clock whose
period is set by the error-detection path, and a VALID/STALL handshake.
This module provides just enough RTL-style machinery to model it cycle by
cycle: :class:`Register` state elements updated by a two-phase
:class:`ClockDomain` (compute next values combinationally, then commit on
the clock edge), so feedback loops behave like real flip-flops.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Optional, TypeVar

T = TypeVar("T")

__all__ = ["Register", "ClockDomain"]


class Register(Generic[T]):
    """An edge-triggered state element.

    Args:
        init: Reset value.
        name: Optional name for traces.

    Combinational code reads :attr:`q` (the current state) and schedules
    the next state with :meth:`set_next`; the clock domain commits all
    registers simultaneously, so evaluation order within a cycle does not
    matter.
    """

    def __init__(self, init: T, name: str = ""):
        self.name = name
        self._reset = init
        self.q: T = init
        self._next: T = init
        self._pending = False

    def set_next(self, value: T) -> None:
        """Schedule *value* to be latched at the next clock edge."""
        self._next = value
        self._pending = True

    def hold(self) -> None:
        """Keep the current value through the next edge (explicit enable=0)."""
        self._pending = False

    def _tick(self) -> None:
        if self._pending:
            self.q = self._next
            self._pending = False

    def reset(self) -> None:
        """Return to the reset value immediately."""
        self.q = self._reset
        self._pending = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Register({self.name or id(self):x}, q={self.q!r})"


class ClockDomain:
    """A set of registers advanced together by :meth:`tick`.

    Attributes:
        cycle: Number of completed clock cycles since reset.
        period: Clock period in time units (ns); :attr:`now` is
            ``cycle * period``.
    """

    def __init__(self, period: float = 1.0):
        if period <= 0:
            raise ValueError("clock period must be positive")
        self.period = period
        self.cycle = 0
        self._registers: List[Register] = []

    def register(self, init: T, name: str = "") -> Register:
        """Create a :class:`Register` owned by this domain."""
        reg = Register(init, name)
        self._registers.append(reg)
        return reg

    @property
    def now(self) -> float:
        """Current simulation time (completed cycles x period)."""
        return self.cycle * self.period

    def tick(self) -> None:
        """Commit all scheduled register updates (one rising clock edge)."""
        for reg in self._registers:
            reg._tick()
        self.cycle += 1

    def reset(self) -> None:
        """Reset every register and the cycle counter."""
        for reg in self._registers:
            reg.reset()
        self.cycle = 0
