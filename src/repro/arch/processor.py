"""A tiny accumulator processor with a variable-latency ALU adder.

Paper Section 4.2: "this adder could be used inside a processor: ACA
additions and error/no-error signals are quickly produced in a single
cycle ... in the rare event of an error, the processor must wait an
additional cycle or two."  This module makes that concrete: a minimal
accumulator ISA whose ADD/SUB go through either a fixed-latency exact
adder or the VLSA, so whole programs can be compared cycle for cycle.

The fixed adder is given the latency corresponding to its longer critical
path (2 VLSA clock periods by the Fig. 8 measurement that a traditional
adder takes ~1.5-1.7x the VLSA clock, rounded up to whole cycles); the
VLSA takes 1 cycle plus a recovery cycle on stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..mc.fastsim import AcaModel
from ..analysis.error_model import choose_window

__all__ = ["Instruction", "Program", "CpuResult", "TinyCpu", "assemble"]

_OPS = ("LOADI", "ADD", "ADDI", "SUB", "STORE", "LOAD", "JNZ", "HALT")


@dataclass(frozen=True)
class Instruction:
    """One instruction: ``op`` plus an immediate/address operand."""

    op: str
    arg: int = 0

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown opcode {self.op!r}")


Program = Sequence[Instruction]


def assemble(source: str) -> List[Instruction]:
    """Assemble newline-separated ``OP [arg]`` text into instructions."""
    program: List[Instruction] = []
    for raw in source.strip().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        op = parts[0].upper()
        arg = int(parts[1], 0) if len(parts) > 1 else 0
        program.append(Instruction(op, arg))
    return program


@dataclass
class CpuResult:
    """Execution outcome: final state plus cycle accounting."""

    accumulator: int
    memory: Dict[int, int]
    instructions_executed: int
    cycles: int
    add_stalls: int

    def cpi(self) -> float:
        if self.instructions_executed == 0:
            return 0.0
        return self.cycles / self.instructions_executed


class TinyCpu:
    """Accumulator machine with a pluggable-latency adder.

    Args:
        width: Datapath width.
        adder: ``"vlsa"`` (1 cycle, +recovery on stall) or ``"exact"``
            (fixed multi-cycle traditional adder).
        window: VLSA speculation window (default: 99.99 % window).
        exact_add_cycles: Latency of the traditional adder in cycles of
            the (shorter) VLSA clock; 2 reflects the Fig. 8 ratio.
    """

    def __init__(self, width: int = 32, adder: str = "vlsa",
                 window: Optional[int] = None, exact_add_cycles: int = 2):
        if adder not in ("vlsa", "exact"):
            raise ValueError("adder must be 'vlsa' or 'exact'")
        self.width = width
        self.mask = (1 << width) - 1
        self.adder = adder
        self.exact_add_cycles = exact_add_cycles
        self.model = AcaModel(width, window or choose_window(width))

    def _add(self, a: int, b: int) -> Tuple[int, int, bool]:
        """Returns (sum, cycles, stalled)."""
        exact_sum, _ = self.model.exact(a, b)
        if self.adder == "exact":
            return exact_sum, self.exact_add_cycles, False
        if self.model.flags_error(a, b):
            return exact_sum, 2, True  # speculative cycle + recovery
        spec_sum, _ = self.model.add(a, b)
        return spec_sum, 1, False

    def run(self, program: Program, max_instructions: int = 1_000_000
            ) -> CpuResult:
        """Execute *program* until HALT (or the instruction cap)."""
        acc = 0
        memory: Dict[int, int] = {}
        pc = 0
        cycles = 0
        executed = 0
        stalls = 0

        while 0 <= pc < len(program):
            if executed >= max_instructions:
                raise RuntimeError("instruction limit exceeded (no HALT?)")
            inst = program[pc]
            executed += 1
            pc += 1
            if inst.op == "HALT":
                cycles += 1
                break
            if inst.op == "LOADI":
                acc = inst.arg & self.mask
                cycles += 1
            elif inst.op == "LOAD":
                acc = memory.get(inst.arg, 0)
                cycles += 1
            elif inst.op == "STORE":
                memory[inst.arg] = acc
                cycles += 1
            elif inst.op in ("ADD", "ADDI"):
                operand = (memory.get(inst.arg, 0) if inst.op == "ADD"
                           else inst.arg & self.mask)
                acc, c, stalled = self._add(acc, operand)
                cycles += c
                stalls += stalled
            elif inst.op == "SUB":
                operand = memory.get(inst.arg, 0)
                # a - b = a + ~b + 1; fold the +1 as a second speculative
                # add of the complement plus one (still one ALU pass).
                acc, c, stalled = self._add(acc,
                                            ((~operand) + 1) & self.mask)
                cycles += c
                stalls += stalled
            elif inst.op == "JNZ":
                cycles += 1
                if acc != 0:
                    pc = inst.arg
        return CpuResult(acc, memory, executed, cycles, stalls)
