"""Sequential substrate: clocking, the VLSA machine (Fig. 6/7), VCD export."""

from .clocking import ClockDomain, Register
from .vcd import VcdWriter
from .vlsa_machine import VlsaMachine, VlsaOpResult, VlsaTrace
from .processor import CpuResult, Instruction, TinyCpu, assemble

__all__ = ["ClockDomain", "Register", "VcdWriter",
           "VlsaMachine", "VlsaOpResult", "VlsaTrace",
           "CpuResult", "Instruction", "TinyCpu", "assemble"]
