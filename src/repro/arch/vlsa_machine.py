"""Cycle-accurate VLSA machine (paper Fig. 6) and its timing trace (Fig. 7).

The machine wraps the functional ACA model in the synchronous handshake
the paper describes: operands are accepted when ``STALL`` is low; one cycle
later the speculative sum and the error flag appear; if the flag is clear
the result is ``VALID`` and new operands are accepted, otherwise the
pipeline stalls for the recovery cycles and then presents the corrected
sum.  Average latency over a stream therefore comes out to
``1 + P(error) * recovery_cycles`` cycles — the quantity the paper reports
as ~1.0002 for the 99.99 % window.

Functional results come from :class:`repro.mc.fastsim.AcaModel`, which the
test suite proves bit-equivalent to the gate-level circuits; this keeps
million-operation streams cheap while staying faithful.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..engine.context import RunContext
from ..engine.functional import functional_model
from ..families.base import get_family
from .clocking import ClockDomain
from .vcd import VcdWriter

__all__ = ["VlsaOpResult", "VlsaTrace", "VlsaMachine"]


@dataclass
class VlsaOpResult:
    """Outcome of one addition through the VLSA pipeline.

    Attributes:
        index: Position of the operation in the input stream.
        a, b: Operands.
        sum_out: Final (always correct) sum presented on the output.
        cout: Final carry out.
        speculative_correct: Whether the 1-cycle speculative result was
            already correct.
        stalled: Whether the detector requested recovery.
        latency_cycles: Cycles from operand acceptance to VALID.
        accept_cycle: Cycle at which the operands were accepted.
    """

    index: int
    a: int
    b: int
    sum_out: int
    cout: int
    speculative_correct: bool
    stalled: bool
    latency_cycles: int
    accept_cycle: int


@dataclass
class VlsaTrace:
    """Full trace of a stream run through the VLSA machine."""

    width: int
    window: int
    clock_period: float
    recovery_cycles: int
    family: str = "aca"
    results: List[VlsaOpResult] = field(default_factory=list)
    total_cycles: int = 0

    @property
    def operations(self) -> int:
        return len(self.results)

    @property
    def stall_count(self) -> int:
        return sum(1 for r in self.results if r.stalled)

    @property
    def average_latency_cycles(self) -> float:
        """Mean cycles per addition (the paper's ~1.0002 figure)."""
        if not self.results:
            return 0.0
        return sum(r.latency_cycles for r in self.results) / len(self.results)

    @property
    def average_latency_time(self) -> float:
        return self.average_latency_cycles * self.clock_period

    def speedup_over(self, traditional_delay: float) -> float:
        """Average-time speedup versus a single-cycle traditional adder."""
        if not self.results:
            raise ValueError("empty trace")
        return traditional_delay / self.average_latency_time

    # ------------------------------------------------------------------
    def timing_diagram(self, first: int = 8) -> str:
        """ASCII rendition of the paper's Fig. 7 timing diagram."""
        shown = self.results[:first]
        if not shown:
            return "(empty trace)"
        horizon = shown[-1].accept_cycle + shown[-1].latency_cycles + 1
        rows = {
            "CLK   ": "",
            "ACCEPT": "",
            "VALID ": "",
            "STALL ": "",
            "OP    ": "",
        }
        accept = {r.accept_cycle: r.index for r in shown}
        valid = {r.accept_cycle + r.latency_cycles - 1: r for r in shown}
        stall = set()
        for r in shown:
            if r.stalled:
                for c in range(r.accept_cycle + 1,
                               r.accept_cycle + r.latency_cycles):
                    stall.add(c)
        for c in range(horizon):
            rows["CLK   "] += "|‾|_"
            rows["ACCEPT"] += " A  " if c in accept else " .  "
            rows["VALID "] += " V  " if c in valid else " .  "
            rows["STALL "] += " S  " if c in stall else " .  "
            rows["OP    "] += (f"{accept[c]:^4d}" if c in accept else "    ")
        return "\n".join(f"{k} {v}" for k, v in rows.items())

    def to_vcd(self) -> str:
        """Render the trace as a VCD waveform (1 timestamp per cycle)."""
        vcd = VcdWriter(module="vlsa")
        s_valid = vcd.add_signal("valid", 1)
        s_stall = vcd.add_signal("stall", 1)
        s_a = vcd.add_signal("a", self.width)
        s_b = vcd.add_signal("b", self.width)
        s_sum = vcd.add_signal("sum", self.width)
        vcd.change(s_valid, 0, 0)
        vcd.change(s_stall, 0, 0)
        for r in self.results:
            t_in = r.accept_cycle
            t_out = r.accept_cycle + r.latency_cycles
            vcd.change(s_a, t_in, r.a)
            vcd.change(s_b, t_in, r.b)
            if r.stalled:
                vcd.change(s_stall, t_in + 1, 1)
                vcd.change(s_stall, t_out, 0)
            vcd.change(s_sum, t_out, r.sum_out)
            vcd.change(s_valid, t_out, 1)
        return vcd.render()


class VlsaMachine:
    """Synchronous VALID/STALL wrapper around the speculative adder.

    Args:
        width: Operand bitwidth.
        window: The family's primary parameter — for ACA, the
            speculation window (default: the family's own choice; for
            ACA the 99.99 % window, as in the paper's experiments).
        recovery_cycles: Extra cycles needed to apply the correction
            (paper: "an additional cycle or two"; default 1).
        clock_period: Clock period in ns — by Fig. 6 this should be just
            above the error-detection path delay; default 1.0 (abstract
            cycles).
        ctx: Optional :class:`repro.engine.RunContext`; streams update
            its ``vlsa_ops``/``vlsa_stalls`` counters and the
            ``vlsa_run`` phase timer.
        family: Registered adder family whose functional model drives
            the pipeline (default the paper's ``"aca"``).
    """

    def __init__(self, width: int, window: Optional[int] = None,
                 recovery_cycles: int = 1, clock_period: float = 1.0,
                 ctx: Optional[RunContext] = None, family: str = "aca"):
        fam = get_family(family)
        params = fam.resolve_params(width, window=window)
        if recovery_cycles < 1:
            raise ValueError("recovery needs at least one extra cycle")
        self.ctx = ctx
        self.family = family
        self.window = fam.primary_value(width, params)
        # The functional fast path, resolved through the engine registry
        # (bit-equivalence with the gate-level circuits is proven in
        # the verify suite).
        self.model = functional_model(family, width=width,
                                      window=self.window)
        self.width = width
        self.recovery_cycles = recovery_cycles
        self.clock = ClockDomain(clock_period)
        # Architectural state (Fig. 6): operand register, busy counter.
        self._op_a = self.clock.register(0, "op_a")
        self._op_b = self.clock.register(0, "op_b")
        self._busy = self.clock.register(0, "busy")

    def run(self, pairs: Iterable[Tuple[int, int]]) -> VlsaTrace:
        """Stream operand *pairs* through the pipeline, one per free cycle.

        Returns:
            A :class:`VlsaTrace` with per-operation outcomes and the cycle
            count actually consumed.
        """
        trace = VlsaTrace(self.width, self.window, self.clock.period,
                          self.recovery_cycles, family=self.family)
        self.clock.reset()
        timer = (self.ctx.phase("vlsa_run") if self.ctx is not None
                 else contextlib.nullcontext())
        with timer:
            self._run_stream(pairs, trace)
        if self.ctx is not None:
            self.ctx.add("vlsa_ops", trace.operations)
            self.ctx.add("vlsa_stalls", trace.stall_count)
        return trace

    def _run_stream(self, pairs: Iterable[Tuple[int, int]],
                    trace: VlsaTrace) -> None:
        for index, (a, b) in enumerate(pairs):
            accept_cycle = self.clock.cycle
            self._op_a.set_next(a)
            self._op_b.set_next(b)
            self._busy.set_next(1)
            self.clock.tick()  # operands latched; ACA + detector evaluate

            a_r, b_r = self._op_a.q, self._op_b.q
            spec_sum, spec_cout = self.model.add(a_r, b_r)
            flagged = self.model.flags_error(a_r, b_r)
            exact_sum, exact_cout = self.model.exact(a_r, b_r)

            if flagged:
                # STALL: recovery result replaces the speculative one.
                for _ in range(self.recovery_cycles):
                    self._busy.set_next(1)
                    self.clock.tick()
                sum_out, cout = exact_sum, exact_cout
                latency = 1 + self.recovery_cycles
            else:
                sum_out, cout = spec_sum, spec_cout
                latency = 1

            spec_ok = (spec_sum, spec_cout) == (exact_sum, exact_cout)
            assert flagged or spec_ok, "detector must never miss an error"
            trace.results.append(VlsaOpResult(
                index=index, a=a, b=b, sum_out=sum_out, cout=cout,
                speculative_correct=spec_ok, stalled=flagged,
                latency_cycles=latency, accept_cycle=accept_cycle))
            self._busy.set_next(0)
        trace.total_cycles = self.clock.cycle
