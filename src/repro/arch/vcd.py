"""Value Change Dump (VCD) writer for waveform inspection.

Traces produced by the VLSA machine (and anything else cycle-based) can be
exported to the standard VCD format and opened in GTKWave & co.  Only the
subset of VCD needed for synchronous traces is implemented: scalar and
vector wires, one timescale, value changes on integer timestamps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["VcdWriter"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


class VcdWriter:
    """Accumulates signal declarations and changes, then renders VCD text.

    Example::

        vcd = VcdWriter(timescale="1 ns")
        clk = vcd.add_signal("clk", 1)
        data = vcd.add_signal("data", 8)
        vcd.change(clk, 0, 1)
        vcd.change(data, 0, 0xAB)
        print(vcd.render())
    """

    def __init__(self, timescale: str = "1 ns", module: str = "top"):
        self.timescale = timescale
        self.module = module
        self._signals: List[Tuple[str, int, str]] = []  # (name, width, id)
        self._changes: Dict[int, List[Tuple[str, int, int]]] = {}

    def add_signal(self, name: str, width: int = 1) -> str:
        """Declare a signal; returns the handle used by :meth:`change`."""
        if width <= 0:
            raise ValueError("signal width must be positive")
        ident = self._make_id(len(self._signals))
        self._signals.append((name, width, ident))
        return ident

    @staticmethod
    def _make_id(index: int) -> str:
        base = len(_ID_CHARS)
        out = ""
        index += 1
        while index:
            index, rem = divmod(index - 1, base)
            out = _ID_CHARS[rem] + out
        return out

    def change(self, ident: str, time: int, value: int) -> None:
        """Record that signal *ident* takes *value* at *time*."""
        width = next(w for (_, w, i) in self._signals if i == ident)
        self._changes.setdefault(time, []).append((ident, width, value))

    def render(self) -> str:
        """Produce the complete VCD file contents."""
        lines = [
            f"$timescale {self.timescale} $end",
            f"$scope module {self.module} $end",
        ]
        for name, width, ident in self._signals:
            lines.append(f"$var wire {width} {ident} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        for time in sorted(self._changes):
            lines.append(f"#{time}")
            for ident, width, value in self._changes[time]:
                if width == 1:
                    lines.append(f"{value & 1}{ident}")
                else:
                    bits = format(value & ((1 << width) - 1), "b")
                    lines.append(f"b{bits} {ident}")
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        """Write the VCD file to *path*."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())
