"""Exact error statistics for block-boundary carry speculation.

Both new adder families (and the ACA itself, viewed through the right
lens) share one structure: the operands are cut at a set of *boundaries*
and the carry into each boundary is predicted from a bounded
*lookahead* window of the bits immediately below it, assuming no carry
enters that window.  The prediction is the window's group generate, so
it can only *under*-estimate the true carry: the speculative result is
wrong at a boundary exactly when the lookahead window is all-propagate
and a true carry enters it from below.

For uniform operands each bit position is independently propagate with
probability 1/2 and generate/kill with probability 1/4 each, so every
event of interest is a function of a small Markov chain over
``(trailing propagate-run length, carry entering the run)`` — the same
chain :func:`repro.analysis.error_model.aca_error_probability` walks,
generalised here to arbitrary boundary sets, to per-boundary marginals,
and (following Wu et al., arXiv:1703.03522) to the **exact distribution
of the error distance**.

Everything is computed with integer weights over the common denominator
``4^width`` — one DP pass yields exact :class:`fractions.Fraction`
results and their float projections for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Boundary",
    "BoundaryRates",
    "EdDistribution",
    "boundary_rates",
    "ed_distribution",
    "MAX_ED_STATES",
]

#: Bit-type weights out of 4: kill, generate, propagate.
_W_KILL = 1
_W_GEN = 1
_W_PROP = 2

#: Default cap on the ED-distribution DP state count (the support grows
#: like ``3^blocks``; beyond ~10 blocks the exact distribution stops
#: being the right tool and callers should stick to the rate DP).
MAX_ED_STATES = 200_000


@dataclass(frozen=True)
class Boundary:
    """One speculation cut: the carry into bit *pos* is predicted from
    the ``lookahead`` bits directly below it (window
    ``[pos - lookahead, pos - 1]``).

    Anchored cuts (``lookahead >= pos``) see every lower bit plus the
    external carry-in and are therefore exact; callers simply do not
    list them.
    """

    pos: int
    lookahead: int

    def __post_init__(self) -> None:
        if self.pos <= 0:
            raise ValueError("boundary position must be positive")
        if self.lookahead <= 0:
            raise ValueError("boundary lookahead must be positive")
        if self.lookahead >= self.pos:
            raise ValueError(
                f"boundary at {self.pos} with lookahead {self.lookahead} "
                f"is anchored (exact) and must not be listed")


@dataclass
class BoundaryRates:
    """Exact speculation-failure statistics over uniform operands.

    All counts are integers over the denominator ``4^width``.

    Attributes:
        width: Operand bitwidth.
        error_count: Operand pairs (times ``2^(2*width - ...)``) with at
            least one wrong boundary prediction.
        flag_count: Pairs on which the detector fires.
        boundary_error_counts: Per-boundary marginal error counts, in
            boundary order.
    """

    width: int
    error_count: int
    flag_count: int
    boundary_error_counts: List[int]

    @property
    def denominator(self) -> int:
        return 1 << (2 * self.width)

    def error_rate(self, exact: bool = False):
        frac = Fraction(self.error_count, self.denominator)
        return frac if exact else float(frac)

    def flag_rate(self, exact: bool = False):
        frac = Fraction(self.flag_count, self.denominator)
        return frac if exact else float(frac)


def boundary_rates(width: int, boundaries: Sequence[Boundary],
                   flag_event: str = "window") -> BoundaryRates:
    """Exact error/detector rates for a set of speculation boundaries.

    Args:
        width: Operand bitwidth.
        boundaries: Non-anchored cuts, any order (sorted internally).
        flag_event: What makes the detector fire at a boundary —
            ``"window"`` (the conservative ACA-style detector: the
            lookahead window is all-propagate, regardless of the
            incoming carry) or ``"error"`` (an exact detector that
            fires iff the prediction is actually wrong, the CESA-R
            rectifier).

    Returns:
        Exact counts over the ``4^width`` equally-likely operand pairs.
    """
    if flag_event not in ("window", "error"):
        raise ValueError(f"unknown flag event {flag_event!r}")
    cuts = sorted(boundaries, key=lambda bd: bd.pos)
    for bd in cuts:
        if bd.pos >= width:
            raise ValueError(f"boundary {bd.pos} outside width {width}")
    rcap = max((bd.lookahead for bd in cuts), default=1)
    by_pos: Dict[int, Boundary] = {bd.pos: bd for bd in cuts}
    if len(by_pos) != len(cuts):
        raise ValueError("duplicate boundary positions")

    # State: (run, carry, erred, flagged) -> integer weight.  ``run`` is
    # the trailing propagate-run length capped at rcap; ``carry`` the
    # carry entering that run (cin = 0 below bit 0).
    states: Dict[Tuple[int, int, int, int], int] = {(0, 0, 0, 0): 1}
    marginals: List[int] = []

    for pos in range(width + 1):
        bd = by_pos.get(pos)
        if bd is not None:
            nxt: Dict[Tuple[int, int, int, int], int] = {}
            marg = 0
            for (run, carry, erred, flagged), w in states.items():
                hit = run >= bd.lookahead
                err = hit and carry == 1
                if err:
                    marg += w
                fired = err if flag_event == "error" else hit
                key = (run, carry, erred | err, flagged | fired)
                nxt[key] = nxt.get(key, 0) + w
            states = nxt
            marginals.append(marg)
        if pos == width:
            break
        nxt = {}
        for (run, carry, erred, flagged), w in states.items():
            for drun, dcarry, dw in ((0, 0, _W_KILL), (0, 1, _W_GEN),
                                     (min(run + 1, rcap), carry, _W_PROP)):
                key = (drun, dcarry, erred, flagged)
                nxt[key] = nxt.get(key, 0) + w * dw
        states = nxt

    scale = {pos: 4 ** (width - pos) for pos in by_pos}
    err_count = sum(w for (r, c, e, f), w in states.items() if e)
    flag_count = sum(w for (r, c, e, f), w in states.items() if f)
    # Marginals were measured mid-sweep with only 4^pos mass expanded.
    per_boundary = [m * scale[bd.pos]
                    for m, bd in zip(marginals, cuts)]
    return BoundaryRates(width=width, error_count=err_count,
                         flag_count=flag_count,
                         boundary_error_counts=per_boundary)


@dataclass
class EdDistribution:
    """Exact distribution of the error distance ``E = exact - spec``.

    The error distance is measured on the full ``width + 1``-bit output
    value (sum plus carry-out), matching the repo's bit-identical
    correctness contract.  ``counts[e]`` is the number of operand pairs
    (weighted over ``4^width``) whose speculative result is off by
    exactly ``e``.
    """

    width: int
    counts: Dict[int, int]

    @property
    def denominator(self) -> int:
        return 1 << (2 * self.width)

    def probability(self, value: int, exact: bool = False):
        frac = Fraction(self.counts.get(value, 0), self.denominator)
        return frac if exact else float(frac)

    def error_rate(self, exact: bool = False):
        frac = Fraction(self.denominator - self.counts.get(0, 0),
                        self.denominator)
        return frac if exact else float(frac)

    def mean_abs(self, exact: bool = False):
        total = sum(abs(v) * w for v, w in self.counts.items())
        frac = Fraction(total, self.denominator)
        return frac if exact else float(frac)

    def mean(self, exact: bool = False):
        total = sum(v * w for v, w in self.counts.items())
        frac = Fraction(total, self.denominator)
        return frac if exact else float(frac)

    def second_moment(self, exact: bool = False):
        total = sum(v * v * w for v, w in self.counts.items())
        frac = Fraction(total, self.denominator)
        return frac if exact else float(frac)

    def max_abs(self) -> int:
        return max((abs(v) for v in self.counts), default=0)


def ed_distribution(width: int, boundaries: Sequence[Boundary],
                    max_states: int = MAX_ED_STATES) -> EdDistribution:
    """Exact error-distance distribution (Wu et al. style).

    A wrong prediction at boundary ``b_j`` makes the true result larger
    by ``2^(b_j)`` — unless the block ``[b_j, b_{j+1})`` it feeds is
    itself all-propagate, in which case the missing carry would have
    wrapped the block and rippled out of it: the block's contribution
    flips to ``2^(b_j) - 2^(b_{j+1})``.  (The final block's overflow
    lands in the carry-out, which the error distance includes, so it
    never wraps.)  The DP below tracks the trailing-run state plus the
    pending-wrap flag and the accumulated distance.

    Args:
        width: Operand bitwidth.
        boundaries: Non-anchored cuts, as for :func:`boundary_rates`.
        max_states: Abort bound on the DP state count (the support is
            exponential in the number of blocks).

    Raises:
        ValueError: When the state count exceeds *max_states*.
    """
    cuts = sorted(boundaries, key=lambda bd: bd.pos)
    for bd in cuts:
        if bd.pos >= width:
            raise ValueError(f"boundary {bd.pos} outside width {width}")
    positions = [bd.pos for bd in cuts]
    if len(set(positions)) != len(positions):
        raise ValueError("duplicate boundary positions")
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    rcap = max([bd.lookahead for bd in cuts] + gaps + [1])
    by_pos = {bd.pos: (i, bd) for i, bd in enumerate(cuts)}

    # State: (run, carry, pending, distance) -> weight.  ``pending`` is
    # set when the previous boundary mispredicted and the wrap of the
    # block it feeds is still undecided.
    states: Dict[Tuple[int, int, int, int], int] = {(0, 0, 0, 0): 1}

    for pos in range(width):
        entry = by_pos.get(pos)
        if entry is not None:
            idx, bd = entry
            gap = gaps[idx - 1] if idx > 0 else None
            nxt: Dict[Tuple[int, int, int, int], int] = {}
            for (run, carry, pending, dist), w in states.items():
                if pending and gap is not None and run >= gap:
                    # Previous block was all-propagate: its missed
                    # carry wraps the block and escapes into this one.
                    dist -= 1 << pos
                err = run >= bd.lookahead and carry == 1
                if err:
                    dist += 1 << pos
                key = (run, carry, 1 if err else 0, dist)
                nxt[key] = nxt.get(key, 0) + w
            states = nxt
        nxt = {}
        for (run, carry, pending, dist), w in states.items():
            for drun, dcarry, dw in ((0, 0, _W_KILL), (0, 1, _W_GEN),
                                     (min(run + 1, rcap), carry, _W_PROP)):
                key = (drun, dcarry, pending, dist)
                nxt[key] = nxt.get(key, 0) + w * dw
        states = nxt
        if len(states) > max_states:
            raise ValueError(
                f"error-distance support exceeds {max_states} DP states "
                f"at bit {pos}; use boundary_rates for this geometry")

    counts: Dict[int, int] = {}
    for (run, carry, pending, dist), w in states.items():
        counts[dist] = counts.get(dist, 0) + w
    return EdDistribution(width=width, counts=counts)
