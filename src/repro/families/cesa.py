"""CESA-R: carry-estimating simultaneous adder with rectification.

Following arXiv:2008.11591, the operand is cut into ``block``-bit
segments that add simultaneously; the carry into each segment is
*estimated* as the generate of the single top bit of the previous
segment (a 1-bit lookahead, so the estimate can only under-predict).
The rectification stage computes the true segment carries with a
segment-level lookahead and compares them against the estimates —
making the CESA-R the zoo's *exact-detector* family: the flag fires if
and only if the speculative sum is actually wrong, so its flag rate
equals its error rate (no conservative over-stalling, at the price of a
detector that is as deep as the recovery carry chain).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional

from ..circuit import Circuit
from ..engine.functional import register_functional
from .base import (AdderFamily, FamilyErrorModel, KernelBatch,
                   SpeculativeModel, functional_factory, register_family)
from .blocks import (BlockSpecModel, block_boundaries, block_numpy_kernel,
                     build_block_datapath, build_block_speculative)
from .stats import EdDistribution, boundary_rates, ed_distribution

__all__ = ["CesaFamily", "CesaModel", "FAMILY"]

#: The CESA estimates each segment carry from one bit.
_LOOKAHEAD = 1


class CesaModel(BlockSpecModel):
    """Functional CESA-R configured once, reused across many additions."""

    def __init__(self, width: int, block: int):
        super().__init__(width, block, _LOOKAHEAD, detector="exact")


class CesaFamily(AdderFamily):
    """Carry-estimating simultaneous adder with rectification."""

    name = "cesa"
    title = "Carry-Estimating Simultaneous Adder (CESA-R)"
    paper = "arXiv:2008.11591"
    primary_param = "block"

    def default_params(self, width: int) -> Dict[str, int]:
        # Four simultaneous segments balance segment ripple against the
        # number of estimated cuts (the paper's headline configuration).
        return {"block": max(2, (width + 3) // 4)}

    def build_speculative(self, width: int, block: int) -> Circuit:
        return build_block_speculative(
            f"cesa{width}_b{block}", width, block, _LOOKAHEAD,
            primary=block)

    def build_circuit(self, width: int, block: int) -> Circuit:
        return build_block_datapath(
            f"cesa_r{width}_b{block}", width, block, _LOOKAHEAD,
            detector="exact", primary=block)

    def functional(self, width: int, block: int) -> SpeculativeModel:
        return CesaModel(width, block)

    def numpy_kernel(self, width: int, block: int
                     ) -> Optional[Callable[..., KernelBatch]]:
        if width > 64:
            return None
        return block_numpy_kernel(width, block, _LOOKAHEAD,
                                  detector="exact")

    def _error_model(self, width: int, block: int) -> FamilyErrorModel:
        block = min(max(1, block), width)
        cuts = block_boundaries(width, block, _LOOKAHEAD)
        rates = boundary_rates(width, cuts, flag_event="error")
        return FamilyErrorModel(
            width=width, params={"block": block},
            exact_error_rate=rates.error_rate(exact=True),
            exact_flag_rate=rates.flag_rate(exact=True),
            boundary_error_rates=tuple(
                Fraction(c, rates.denominator)
                for c in rates.boundary_error_counts))

    def error_distribution(self, width: int, block: int
                           ) -> Optional[EdDistribution]:
        cuts = block_boundaries(width, min(max(1, block), width),
                                _LOOKAHEAD)
        try:
            return ed_distribution(width, cuts)
        except ValueError:
            return None


FAMILY = register_family(CesaFamily())
register_functional("cesa", functional_factory(FAMILY))
