"""Cross-family delay/area/error-rate Pareto study.

For every registered family a sweep of configurations is built
gate-level, characterised under one technology library (speculative,
detector and recovery path delays; cell area), and paired with the
family's *exact* analytic error statistics.  Each point is then scored
with the VLSA average-time model — clock period set by
``max(speculative, detector)`` delay, recovery taking however many of
those cycles its path needs — and compared against the repo's
best-of-library exact adder at the same width, reproducing the
comparisons of the CESA-R (arXiv:2008.11591) and block-based-adder
(arXiv:1703.03522) papers on equal footing.

``repro pareto`` drives :func:`run_pareto_study` and writes
``results/pareto_families.{json,md}`` via :func:`write_pareto_report`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..adders import adder_names, build_adder
from ..circuit import get_library
from ..circuit.stats import collect_stats
from ..core.vlsa import characterize_vlsa
from .base import get_family, family_names

__all__ = [
    "BaselinePoint",
    "ParetoPoint",
    "ParetoReport",
    "run_pareto_study",
    "write_pareto_report",
]

#: Candidate values for a family's primary knob (filtered per width).
_SWEEP_VALUES = (2, 3, 4, 6, 8, 12, 16, 24, 32)


@dataclass
class BaselinePoint:
    """One exact library adder at one width."""

    name: str
    width: int
    delay: float
    area: float
    gates: int


@dataclass
class ParetoPoint:
    """One family configuration, characterised and scored."""

    family: str
    width: int
    params: Dict[str, int]
    label: str
    gates: int
    area: float
    spec_delay: float
    detect_delay: float
    recovery_delay: float
    clock_period: float
    recovery_cycles: int
    error_rate: float
    flag_rate: float
    expected_cycles: float
    avg_time: float
    speedup_vs_baseline: float
    on_front: bool = False


@dataclass
class ParetoReport:
    """Everything the study produced, JSON-serialisable."""

    library: str
    widths: List[int]
    baselines: List[BaselinePoint]
    points: List[ParetoPoint]
    best_baseline: Dict[int, str] = field(default_factory=dict)

    def to_json_dict(self) -> Dict:
        return {
            "library": self.library,
            "widths": list(self.widths),
            "best_baseline": {str(w): n
                              for w, n in sorted(self.best_baseline.items())},
            "baselines": [asdict(b) for b in self.baselines],
            "points": [asdict(p) for p in self.points],
        }


def _sweep(family, width: int) -> List[Dict[str, int]]:
    """Deduplicated parameter sweep for one family at one width."""
    default = family.default_params(width)
    values = {family.primary_value(width, default)}
    values.update(v for v in _SWEEP_VALUES if 1 <= v <= width)
    configs: List[Dict[str, int]] = []
    seen = set()
    for v in sorted(values):
        if family.name == "blockspec":
            # Sweep the equal-segment diagonal (block == lookahead),
            # the configuration the paper's comparison uses.
            params = family.resolve_params(width, window=v, block=v)
        else:
            params = family.resolve_params(width, window=v)
        key = tuple(sorted(params.items()))
        if key not in seen:
            seen.add(key)
            configs.append(params)
    return configs


def _mark_front(points: List[ParetoPoint]) -> None:
    """Mark the per-width 3D Pareto front over (avg_time, area,
    error_rate), minimising all three."""
    by_width: Dict[int, List[ParetoPoint]] = {}
    for p in points:
        by_width.setdefault(p.width, []).append(p)
    for group in by_width.values():
        for p in group:
            dominated = any(
                q is not p
                and q.avg_time <= p.avg_time
                and q.area <= p.area
                and q.error_rate <= p.error_rate
                and (q.avg_time < p.avg_time or q.area < p.area
                     or q.error_rate < p.error_rate)
                for q in group)
            p.on_front = not dominated


def run_pareto_study(widths: Sequence[int] = (8, 16, 32, 64),
                     families: Optional[Sequence[str]] = None,
                     library: str = "umc180") -> ParetoReport:
    """Characterise every family sweep against the library baseline.

    Args:
        widths: Operand bitwidths to study.
        families: Family names (default: every registered family).
        library: Technology library name for timing/area.
    """
    lib = get_library(library)
    names = sorted(families) if families else family_names()
    baselines: List[BaselinePoint] = []
    best: Dict[int, Tuple[str, float]] = {}
    for width in widths:
        for adder in adder_names():
            stats = collect_stats(build_adder(adder, width), lib)
            baselines.append(BaselinePoint(
                name=adder, width=width, delay=stats.critical_delay,
                area=stats.area, gates=stats.gates))
            cur = best.get(width)
            if cur is None or stats.critical_delay < cur[1]:
                best[width] = (adder, stats.critical_delay)

    points: List[ParetoPoint] = []
    for width in widths:
        base_delay = best[width][1]
        for name in names:
            family = get_family(name)
            for params in _sweep(family, width):
                circuit = family.build_circuit(width, **params)
                stats = collect_stats(circuit, lib)
                timing = characterize_vlsa(circuit, lib)
                model = family.error_model(width, **params)
                clock = timing.clock_period
                recovery_cycles = max(
                    1, math.ceil(timing.recovery_delay / clock - 1e-9))
                expected = 1.0 + model.flag_rate * recovery_cycles
                avg_time = clock * expected
                points.append(ParetoPoint(
                    family=name, width=width, params=dict(params),
                    label=family.label(width, params),
                    gates=stats.gates, area=stats.area,
                    spec_delay=timing.aca_delay,
                    detect_delay=timing.detect_delay,
                    recovery_delay=timing.recovery_delay,
                    clock_period=clock,
                    recovery_cycles=recovery_cycles,
                    error_rate=model.error_rate,
                    flag_rate=model.flag_rate,
                    expected_cycles=expected,
                    avg_time=avg_time,
                    speedup_vs_baseline=base_delay / avg_time,
                ))
    _mark_front(points)
    return ParetoReport(
        library=library, widths=list(widths), baselines=baselines,
        points=points,
        best_baseline={w: n for w, (n, _d) in best.items()})


def _markdown(report: ParetoReport) -> str:
    lines = [
        "# Cross-family delay/area/error-rate Pareto study",
        "",
        f"Library: `{report.library}`.  Baseline per width: the fastest "
        "exact adder in the repo's library.  `avg time` is the VLSA "
        "average-time model (clock = max(speculative, detector) delay; "
        "recovery pays `recovery_cycles` extra clocks at the analytic "
        "flag rate).  `*` marks the per-width Pareto front over "
        "(avg time, area, error rate).",
        "",
    ]
    base_by_width = {(b.width, b.name): b for b in report.baselines}
    for width in report.widths:
        best_name = report.best_baseline[width]
        base = base_by_width[(width, best_name)]
        lines.append(f"## width {width}")
        lines.append("")
        lines.append(f"Baseline: `{best_name}` — delay {base.delay:.3f}, "
                     f"area {base.area:.1f}.")
        lines.append("")
        lines.append("| | family | params | clock | avg time | speedup | "
                     "area | error rate | flag rate |")
        lines.append("|---|---|---|---|---|---|---|---|---|")
        pts = sorted((p for p in report.points if p.width == width),
                     key=lambda p: (p.avg_time, p.area))
        for p in pts:
            params = ", ".join(f"{k}={v}"
                               for k, v in sorted(p.params.items()))
            lines.append(
                f"| {'*' if p.on_front else ''} | {p.family} | {params} "
                f"| {p.clock_period:.3f} | {p.avg_time:.3f} "
                f"| {p.speedup_vs_baseline:.2f}x | {p.area:.1f} "
                f"| {p.error_rate:.3g} | {p.flag_rate:.3g} |")
        lines.append("")
    return "\n".join(lines)


def write_pareto_report(report: ParetoReport, out_dir: str = "results",
                        basename: str = "pareto_families") -> List[str]:
    """Write ``<basename>.json`` and ``<basename>.md`` under *out_dir*."""
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, f"{basename}.json")
    md_path = os.path.join(out_dir, f"{basename}.md")
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(report.to_json_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    with open(md_path, "w", encoding="utf-8") as f:
        f.write(_markdown(report))
        f.write("\n")
    return [json_path, md_path]
