"""Shared substrate for block-boundary speculative adders.

The CESA-R and the configurable block-based approximate adder (and the
ACA itself, viewed the right way) all cut the operands into blocks and
speculate the carry into each block from a bounded ``lookahead`` window
of the bits directly below the cut, assuming no carry enters that
window.  This module holds everything the two new families share:

* gate-level builders (speculative core and full VLSA-style datapath)
  on top of :class:`repro.core.aca.AcaBuilder`'s prefix strips, so the
  detector and recovery reuse the speculative core's range products the
  same way the paper's ACA does;
* the big-int functional model (:class:`BlockSpecModel`);
* the vectorised uint64 batch kernel for widths up to 64;
* the mapping onto :mod:`repro.families.stats` boundaries.

Two detector disciplines exist:

* ``"window"`` — conservative (Wu et al. style): fire when a lookahead
  window is all-propagate, whether or not a carry actually arrives;
* ``"exact"`` — the CESA-R rectifier: compare each estimate against the
  true block carry (from the recovery lookahead), so the flag fires iff
  the speculative result is actually wrong.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..adders.base import adder_ports
from ..adders.cla import lookahead_carries
from ..circuit import Circuit, CircuitError, or_tree
from ..core.aca import AcaBuilder
from .base import KernelBatch, SpeculativeModel
from .stats import Boundary

__all__ = [
    "DETECTORS",
    "block_bounds",
    "block_boundaries",
    "BlockSpecModel",
    "build_block_speculative",
    "build_block_datapath",
    "block_numpy_kernel",
]

#: Detector disciplines (see module docstring).
DETECTORS = ("window", "exact")

#: OR-tree arity for the error-flag reduction (matches core.error_detect).
_OR_ARITY = 4


def block_bounds(width: int, block: int) -> List[Tuple[int, int]]:
    """``(lo, hi)`` spans of the ``block``-bit blocks, LSB block first
    (the top block may be short)."""
    if block < 1:
        raise ValueError("block must be >= 1")
    bounds: List[Tuple[int, int]] = []
    lo = 0
    while lo < width:
        hi = min(lo + block, width) - 1
        bounds.append((lo, hi))
        lo = hi + 1
    return bounds


def block_boundaries(width: int, block: int,
                     lookahead: int) -> List[Boundary]:
    """The non-anchored speculation cuts of this geometry.

    Cuts with ``lookahead >= lo`` see every lower bit (plus the external
    carry-in) and are exact, so they carry no error probability and are
    excluded — mirroring the gate-level builder and the functional model.
    """
    return [Boundary(lo, lookahead)
            for lo, _ in block_bounds(width, block)
            if 0 < lo and lookahead < lo]


# ----------------------------------------------------------------------
# Functional model
# ----------------------------------------------------------------------
class BlockSpecModel(SpeculativeModel):
    """Big-int functional model of a block-boundary speculative adder.

    Args:
        width: Operand bitwidth.
        block: Block size ``k`` (clamped to *width*).
        lookahead: Carry-estimate window ``t`` (clamped to *width*).
        detector: ``"window"`` or ``"exact"`` (see module docstring).
    """

    def __init__(self, width: int, block: int, lookahead: int,
                 detector: str = "window"):
        if width <= 0:
            raise ValueError("width must be positive")
        if detector not in DETECTORS:
            raise ValueError(f"unknown detector {detector!r}; "
                             f"expected one of {DETECTORS}")
        self.width = width
        self.block = min(max(1, block), width)
        self.lookahead = min(max(1, lookahead), width)
        self.detector = detector
        self.bounds = block_bounds(width, self.block)

    def _estimate(self, a: int, b: int, cin: int, lo: int) -> int:
        """Carry estimate into the block starting at *lo* (hardware
        semantics: anchored cuts are exact, others see ``lookahead``
        bits with an assumed zero carry below)."""
        if lo == 0:
            return cin & 1
        t = self.lookahead
        if t >= lo:
            low_mask = (1 << lo) - 1
            return ((a & low_mask) + (b & low_mask) + (cin & 1)) >> lo
        w_mask = (1 << t) - 1
        wa = (a >> (lo - t)) & w_mask
        wb = (b >> (lo - t)) & w_mask
        return (wa + wb) >> t

    def add(self, a: int, b: int, cin: int = 0) -> Tuple[int, int]:
        """Speculative ``(sum, cout)`` exactly as the hardware computes
        it: each block adds its operand slice to its carry estimate; the
        carry out comes from the top block."""
        mask = self._mask()
        a &= mask
        b &= mask
        result = 0
        carry_out = 0
        for lo, hi in self.bounds:
            blk_len = hi - lo + 1
            blk_mask = (1 << blk_len) - 1
            est = self._estimate(a, b, cin, lo)
            total = ((a >> lo) & blk_mask) + ((b >> lo) & blk_mask) + est
            result |= (total & blk_mask) << lo
            carry_out = total >> blk_len
        return result, carry_out

    def flags_error(self, a: int, b: int) -> bool:
        """The detector decision (computed at ``cin = 0``, like the
        ACA's; the gate-level datapath agrees whenever it is built
        without a carry-in port, which is how every serving/verify layer
        instantiates it)."""
        mask = self._mask()
        a &= mask
        b &= mask
        if self.detector == "exact":
            return self.add(a, b) != self.exact(a, b)
        p = a ^ b
        t = self.lookahead
        w_mask = (1 << t) - 1
        for lo, _ in self.bounds:
            if lo == 0 or t >= lo:
                continue
            if (p >> (lo - t)) & w_mask == w_mask:
                return True
        return False


# ----------------------------------------------------------------------
# Gate-level builders
# ----------------------------------------------------------------------
def _prefix_builder(circuit: Circuit, a: List[int], b: List[int],
                    block: int, lookahead: int,
                    cin: Optional[int]) -> AcaBuilder:
    reach = min(max(block, lookahead), len(a))
    return AcaBuilder(circuit, a, b, reach, cin).build_prefix()


def _attach_block_spec(builder: AcaBuilder, block: int, lookahead: int
                       ) -> Tuple[List[int], int, List[int],
                                  List[Tuple[int, int]]]:
    """Speculative sum/cout nets on top of built prefix strips.

    Returns ``(sums, cout, estimates, bounds)`` where ``estimates[j]``
    is the carry net fed into block ``j`` (the nets the exact detector
    compares against the true block carries).
    """
    c = builder.circuit
    n = builder.width
    bounds = block_bounds(n, block)
    zero = c.const(0)

    ests: List[int] = []
    for lo, _hi in bounds:
        if lo == 0:
            ests.append(builder.cin if builder.cin is not None else zero)
        elif lookahead >= lo:
            # Anchored cut: the window reaches bit 0 and absorbs cin,
            # so the "estimate" is the true carry into the block.
            g_low, p_low = builder.range_product(0, lo - 1)
            if builder.cin is not None:
                ests.append(c.add_gate("AO21", p_low, builder.cin, g_low,
                                       pos=float(lo)))
            else:
                ests.append(g_low)
        else:
            g_win, _p_win = builder.range_product(lo - lookahead, lo - 1)
            ests.append(g_win)

    sums: List[int] = []
    for (lo, hi), est in zip(bounds, ests):
        for i in range(lo, hi + 1):
            if i == lo:
                carry = est
            else:
                g_pre, p_pre = builder.range_product(lo, i - 1)
                carry = c.add_gate("AO21", p_pre, est, g_pre, pos=float(i))
            sums.append(c.add_gate("XOR", builder.p[i], carry,
                                   pos=float(i)))

    top_lo, top_hi = bounds[-1]
    g_blk, p_blk = builder.range_product(top_lo, top_hi)
    cout = c.add_gate("AO21", p_blk, ests[-1], g_blk, pos=float(n))
    return sums, cout, ests, bounds


def _stamp_attrs(circuit: Circuit, block: int, lookahead: int,
                 primary: int) -> None:
    circuit.attrs["block"] = block
    circuit.attrs["lookahead"] = lookahead
    # Timing/report layers read the generic knob under "window".
    circuit.attrs["window"] = primary


def build_block_speculative(name: str, width: int, block: int,
                            lookahead: int, cin: bool = False,
                            primary: Optional[int] = None) -> Circuit:
    """The speculative core: buses ``a``/``b`` (and ``cin``), outputs
    ``sum`` and (speculative) ``cout``."""
    if block < 1 or lookahead < 1:
        raise CircuitError("block and lookahead must be >= 1")
    block = min(block, width)
    lookahead = min(lookahead, width)
    circuit, a, b, cin_net = adder_ports(name, width, cin)
    builder = _prefix_builder(circuit, a, b, block, lookahead, cin_net)
    sums, cout, _ests, _bounds = _attach_block_spec(builder, block,
                                                    lookahead)
    circuit.set_output("sum", sums)
    circuit.set_output("cout", cout)
    _stamp_attrs(circuit, block, lookahead,
                 primary if primary is not None else lookahead)
    return circuit


def build_block_datapath(name: str, width: int, block: int, lookahead: int,
                         detector: str = "window", cin: bool = False,
                         primary: Optional[int] = None) -> Circuit:
    """The full variable-latency datapath with fully shared logic.

    Outputs follow the repo's VLSA convention: ``sum``/``cout``
    (speculative, 1-cycle path), ``err`` (the detector), ``sum_exact``/
    ``cout_exact`` (the recovery path).  The recovery is a block-level
    carry lookahead over the same block products the speculative core
    already computed; with the ``"exact"`` detector the rectifier
    compares each estimate against the true block carry, so ``err``
    fires iff the speculative result is actually wrong.
    """
    if detector not in DETECTORS:
        raise CircuitError(f"unknown detector {detector!r}; "
                           f"expected one of {DETECTORS}")
    if block < 1 or lookahead < 1:
        raise CircuitError("block and lookahead must be >= 1")
    block = min(block, width)
    lookahead = min(lookahead, width)
    circuit, a, b, cin_net = adder_ports(name, width, cin)
    builder = _prefix_builder(circuit, a, b, block, lookahead, cin_net)
    sums, cout, ests, bounds = _attach_block_spec(builder, block, lookahead)

    # Recovery: true carry into every block from a classic lookahead
    # over the block (G, P) products, then intra-block prefixes.
    grp = [builder.range_product(lo, hi) for lo, hi in bounds]
    block_carries, exact_cout = lookahead_carries(
        circuit, [g for g, _ in grp], [p for _, p in grp], cin_net,
        pos_step=float(block))
    exact_sums: List[int] = []
    for k, (lo, hi) in enumerate(bounds):
        c_blk = block_carries[k]
        for i in range(lo, hi + 1):
            if i == lo:
                carry = c_blk
            else:
                g_pre, p_pre = builder.range_product(lo, i - 1)
                carry = circuit.add_gate("AO21", p_pre, c_blk, g_pre,
                                         pos=float(i))
            exact_sums.append(circuit.add_gate("XOR", builder.p[i], carry,
                                               pos=float(i)))

    # Detector over the non-anchored cuts.
    terms: List[int] = []
    for j, (lo, _hi) in enumerate(bounds):
        if lo == 0 or lookahead >= lo:
            continue
        if detector == "exact":
            terms.append(circuit.add_gate("XOR", ests[j], block_carries[j],
                                          pos=float(lo)))
        else:
            _g_win, p_win = builder.range_product(lo - lookahead, lo - 1)
            terms.append(p_win)
    err = (or_tree(circuit, terms, max_arity=_OR_ARITY) if terms
           else circuit.const(0))

    circuit.set_output("sum", sums)
    circuit.set_output("cout", cout)
    circuit.set_output("err", err)
    circuit.set_output("sum_exact", exact_sums)
    circuit.set_output("cout_exact", exact_cout)
    _stamp_attrs(circuit, block, lookahead,
                 primary if primary is not None else lookahead)
    return circuit


# ----------------------------------------------------------------------
# Vectorised batch kernel
# ----------------------------------------------------------------------
def block_numpy_kernel(width: int, block: int, lookahead: int,
                       detector: str = "window"
                       ) -> Callable[[np.ndarray, np.ndarray], KernelBatch]:
    """uint64 batch kernel bit-identical to :class:`BlockSpecModel`.

    Supports widths up to 64 (the per-block slice arithmetic needs one
    spare bit, which the block decomposition always leaves unless the
    whole operand is a single — then exact — block).
    """
    if width > 64:
        raise ValueError("numpy kernels support widths up to 64 bits")
    if detector not in DETECTORS:
        raise ValueError(f"unknown detector {detector!r}")
    block = min(max(1, block), width)
    lookahead = min(max(1, lookahead), width)
    bounds = block_bounds(width, block)
    int_mask = (1 << width) - 1
    mask = np.uint64(int_mask if width < 64 else 0xFFFFFFFFFFFFFFFF)

    def kernel(a: np.ndarray, b: np.ndarray) -> KernelBatch:
        a = np.asarray(a, dtype=np.uint64) & mask
        b = np.asarray(b, dtype=np.uint64) & mask
        s = (a + b) & mask  # uint64 wraparound == mod 2^64 at width 64
        if width < 64:
            exact_couts = ((a + b) >> np.uint64(width)).astype(np.uint64)
        else:
            exact_couts = (s < a).astype(np.uint64)
        p = a ^ b

        if len(bounds) == 1:
            # Single (anchored) block: the adder is exact by geometry.
            zero_flags = np.zeros(a.shape, dtype=bool)
            return KernelBatch(spec_sums=s.copy(), spec_couts=exact_couts,
                               exact_sums=s, exact_couts=exact_couts,
                               flags=zero_flags,
                               spec_errors=zero_flags.copy())

        spec = np.zeros_like(a)
        spec_cout = np.zeros_like(a)
        flags = np.zeros(a.shape, dtype=bool)
        for lo, hi in bounds:
            blk_len = hi - lo + 1
            blk_mask = np.uint64((1 << blk_len) - 1)
            blk_a = (a >> np.uint64(lo)) & blk_mask
            blk_b = (b >> np.uint64(lo)) & blk_mask
            if lo == 0:
                est = np.zeros_like(a)
            elif lookahead >= lo:
                low_mask = np.uint64((1 << lo) - 1)
                est = ((a & low_mask) + (b & low_mask)) >> np.uint64(lo)
            else:
                w_mask = np.uint64((1 << lookahead) - 1)
                wa = (a >> np.uint64(lo - lookahead)) & w_mask
                wb = (b >> np.uint64(lo - lookahead)) & w_mask
                est = (wa + wb) >> np.uint64(lookahead)
                if detector == "window":
                    flags |= ((p >> np.uint64(lo - lookahead)) & w_mask
                              ) == w_mask
            total = blk_a + blk_b + est  # blk_len <= 63 here: no overflow
            spec |= (total & blk_mask) << np.uint64(lo)
            spec_cout = total >> np.uint64(blk_len)
        spec_errors = (spec != s) | (spec_cout != exact_couts)
        if detector == "exact":
            flags = spec_errors.copy()
        return KernelBatch(spec_sums=spec, spec_couts=spec_cout,
                           exact_sums=s, exact_couts=exact_couts,
                           flags=flags, spec_errors=spec_errors)

    return kernel
