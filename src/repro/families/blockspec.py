"""Configurable block-based approximate adder (Wu et al. style).

Following arXiv:1703.03522, the operand is cut into ``block``-bit
sub-adders and the carry into each cut is predicted from the
``lookahead`` bits directly below it (assuming no carry enters the
prediction window).  Both knobs are free, which makes this the zoo's
*configurable* family:

* ``block = 1, lookahead = w`` is (up to the speculative carry-out
  construction) the paper's ACA;
* ``lookahead = 1`` is the CESA estimate discipline;
* larger blocks with modest lookahead trade error rate against the
  detector/recovery depth.

The detector is the conservative ACA-style one — fire whenever a
prediction window is all-propagate — and the analytic error model is
the exact boundary DP of :mod:`repro.families.stats`, including the
error-distance distribution that is this paper's main analytical
contribution.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional

from ..analysis.error_model import choose_window
from ..circuit import Circuit
from ..engine.functional import register_functional
from .base import (AdderFamily, FamilyErrorModel, KernelBatch,
                   SpeculativeModel, functional_factory, register_family)
from .blocks import (BlockSpecModel, block_boundaries, block_numpy_kernel,
                     build_block_datapath, build_block_speculative)
from .stats import EdDistribution, boundary_rates, ed_distribution

__all__ = ["BlockSpecFamily", "FAMILY"]


class BlockSpecFamily(AdderFamily):
    """Block-based approximate adder with configurable block/lookahead."""

    name = "blockspec"
    title = "Block-based approximate adder (Wu et al.)"
    paper = "arXiv:1703.03522"
    primary_param = "lookahead"

    def default_params(self, width: int) -> Dict[str, int]:
        # Same accuracy target as the ACA's 99.99 % window, with the
        # block size matched to the prediction depth (the paper's
        # equal-segment configuration).
        w = choose_window(width)
        return {"block": w, "lookahead": w}

    def build_speculative(self, width: int, block: int,
                          lookahead: int) -> Circuit:
        return build_block_speculative(
            f"blockspec{width}_b{block}_t{lookahead}", width, block,
            lookahead, primary=lookahead)

    def build_circuit(self, width: int, block: int,
                      lookahead: int) -> Circuit:
        return build_block_datapath(
            f"blockspec_r{width}_b{block}_t{lookahead}", width, block,
            lookahead, detector="window", primary=lookahead)

    def functional(self, width: int, block: int,
                   lookahead: int) -> SpeculativeModel:
        return BlockSpecModel(width, block, lookahead, detector="window")

    def numpy_kernel(self, width: int, block: int, lookahead: int
                     ) -> Optional[Callable[..., KernelBatch]]:
        if width > 64:
            return None
        return block_numpy_kernel(width, block, lookahead,
                                  detector="window")

    def _error_model(self, width: int, block: int,
                    lookahead: int) -> FamilyErrorModel:
        block = min(max(1, block), width)
        lookahead = min(max(1, lookahead), width)
        cuts = block_boundaries(width, block, lookahead)
        rates = boundary_rates(width, cuts, flag_event="window")
        return FamilyErrorModel(
            width=width, params={"block": block, "lookahead": lookahead},
            exact_error_rate=rates.error_rate(exact=True),
            exact_flag_rate=rates.flag_rate(exact=True),
            boundary_error_rates=tuple(
                Fraction(c, rates.denominator)
                for c in rates.boundary_error_counts))

    def error_distribution(self, width: int, block: int, lookahead: int
                           ) -> Optional[EdDistribution]:
        cuts = block_boundaries(width, min(max(1, block), width),
                                min(max(1, lookahead), width))
        try:
            return ed_distribution(width, cuts)
        except ValueError:
            return None


FAMILY = register_family(BlockSpecFamily())
register_functional("blockspec", functional_factory(FAMILY))
