"""The ``AdderFamily`` protocol and registry.

A *family* is one speculative-addition architecture made first-class
across every layer of the repo.  Each family binds together:

* ``build_speculative`` — the approximate adder core as a gate-level
  circuit (standard ``a``/``b`` -> ``sum``/``cout`` interface);
* ``build_circuit`` — the full variable-latency datapath: speculative
  core + error detector + rectification/recovery netlists (outputs
  ``sum``, ``cout``, ``err``, ``sum_exact``, ``cout_exact``);
* ``functional`` — a closed-form big-int model of the *actual hardware
  behaviour* (speculative result, detector flag, exact recovery),
  exposing the uniform contract of :class:`SpeculativeModel`;
* ``numpy_kernel`` — a vectorised batch kernel bit-identical to the
  functional model (the serving hot path), where the width allows one;
* ``error_model`` / ``error_distribution`` — exact analytic error-rate
  and error-distance statistics the verify layer cross-checks observed
  counts against;
* parameter defaulting — ``resolve_params`` is the *single* place a
  deployment knob (CLI ``--window``, service configs, the generator)
  is turned into concrete family parameters.

The registry is deterministically sorted; ``family_names()`` is the
discovery surface the CLI help, the verify registry and the bench
suites all share.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from fractions import Fraction
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..circuit import Circuit
from .stats import EdDistribution

__all__ = [
    "AdderFamily",
    "FamilyError",
    "FamilyErrorModel",
    "KernelBatch",
    "SpeculativeModel",
    "register_family",
    "unregister_family",
    "get_family",
    "family_names",
    "resolve_params",
    "functional_factory",
]


class FamilyError(ValueError):
    """Raised for unknown families or invalid family parameters."""


# ----------------------------------------------------------------------
# Batch kernel output
# ----------------------------------------------------------------------
@dataclass
class KernelBatch:
    """Vectorised output of one family numpy kernel.

    Everything the speculative/detect/recover path produces for a
    batch, as arrays: the raw speculative result, the detector word,
    the recovered (always correct) result, and the subset of flags
    that were actual errors.
    """

    spec_sums: Any
    spec_couts: Any
    exact_sums: Any
    exact_couts: Any
    flags: Any
    spec_errors: Any


# ----------------------------------------------------------------------
# Functional-model contract
# ----------------------------------------------------------------------
class SpeculativeModel:
    """Uniform big-int contract every family functional model obeys.

    Subclasses implement :meth:`add` (the speculative hardware result)
    and :meth:`flags_error` (the detector).  ``exact``, ``is_correct``
    and the bus-level ``run_ints`` interface are shared — so the
    machine, the service executor and the verify reference can treat
    every family identically (:class:`repro.mc.fastsim.AcaModel`
    predates this class but satisfies the same contract).
    """

    width: int

    def _mask(self) -> int:
        return (1 << self.width) - 1

    def add(self, a: int, b: int, cin: int = 0) -> Tuple[int, int]:
        """Speculative ``(sum, cout)`` exactly as the hardware computes it."""
        raise NotImplementedError

    def flags_error(self, a: int, b: int) -> bool:
        """Whether the detector requests a recovery cycle."""
        raise NotImplementedError

    def exact(self, a: int, b: int, cin: int = 0) -> Tuple[int, int]:
        """Reference ``(sum, cout)``."""
        mask = self._mask()
        total = (a & mask) + (b & mask) + (cin & 1)
        return total & mask, total >> self.width

    def is_correct(self, a: int, b: int, cin: int = 0) -> bool:
        """Whether speculation succeeds on this operand pair."""
        return self.add(a, b, cin) == self.exact(a, b, cin)

    def run_ints(self, vectors: Mapping[str, Union[int, Sequence[int]]]
                 ) -> Dict[str, Union[int, List[int]]]:
        """Bus-level interface mirroring the gate-level circuit.

        Same contract as :func:`repro.engine.execute_ints` on the
        family's speculative circuit: inputs ``a``/``b`` (optionally
        ``cin``), outputs ``sum``/``cout``; scalars in, scalars out.
        """
        scalar = isinstance(vectors["a"], int)

        def as_list(value: Union[int, Sequence[int]]) -> List[int]:
            return [value] if isinstance(value, int) else list(value)

        a_vals = as_list(vectors["a"])
        b_vals = as_list(vectors["b"])
        cin_vals = as_list(vectors.get("cin", [0] * len(a_vals)))
        sums: List[int] = []
        couts: List[int] = []
        for a, b, cin in zip(a_vals, b_vals, cin_vals):
            s, c = self.add(a, b, cin)
            sums.append(s)
            couts.append(c)
        if scalar:
            return {"sum": sums[0], "cout": couts[0]}
        return {"sum": sums, "cout": couts}


# ----------------------------------------------------------------------
# Analytic error model
# ----------------------------------------------------------------------
@dataclass
class FamilyErrorModel:
    """Exact analytic error statistics of one family configuration.

    The rational fields are exact over uniform operands (denominator a
    divisor of ``4^width``) — the verify layer multiplies them by
    ``4^width`` and demands *integer equality* with brute-force counts.
    """

    width: int
    params: Dict[str, int]
    exact_error_rate: Fraction
    exact_flag_rate: Fraction
    #: Marginal per-boundary error probabilities, LSB-most first (empty
    #: for families without a block decomposition).
    boundary_error_rates: Tuple[Fraction, ...] = ()

    @property
    def error_rate(self) -> float:
        """P(speculative result wrong) on uniform operands."""
        return float(self.exact_error_rate)

    @property
    def flag_rate(self) -> float:
        """P(detector fires); >= :attr:`error_rate` (conservative)."""
        return float(self.exact_flag_rate)

    def expected_latency_cycles(self, recovery_cycles: int = 1) -> float:
        """Mean VLSA latency: 1 cycle + the penalty when flagged."""
        return 1.0 + self.flag_rate * recovery_cycles


# ----------------------------------------------------------------------
# The family protocol
# ----------------------------------------------------------------------
class AdderFamily(abc.ABC):
    """One speculative-adder architecture, end to end.

    Attributes:
        name: Registry key (stable, lowercase).
        title: Human-readable architecture name.
        paper: Reference the architecture reproduces.
        primary_param: The parameter a bare integer knob (the CLI's
            ``--window``) maps onto for this family.
    """

    name: str = "?"
    title: str = "?"
    paper: str = "?"
    primary_param: str = "window"

    # -- parameters ----------------------------------------------------
    @abc.abstractmethod
    def default_params(self, width: int) -> Dict[str, int]:
        """Default parameters for *width* (the family's 'paper' config)."""

    def normalize_params(self, width: int,
                         params: Dict[str, int]) -> Dict[str, int]:
        """Clamp/validate *params*; default clamps every value to
        ``[1, width]``."""
        out = {}
        for key, value in params.items():
            value = int(value)
            if value < 1:
                raise FamilyError(
                    f"{self.name}: parameter {key} must be >= 1")
            out[key] = min(value, width)
        return out

    def resolve_params(self, width: int,
                       window: Optional[int] = None,
                       **overrides: Optional[int]) -> Dict[str, int]:
        """Resolve the deployment knobs into concrete parameters.

        This is the single defaulting point every entry layer (CLI,
        generator, service, cluster, verify, bench) goes through.

        Args:
            width: Operand bitwidth.
            window: Bare integer knob; sets :attr:`primary_param`.
            **overrides: Per-parameter overrides (``None`` values are
                ignored so call sites can forward optional flags).
        """
        if width <= 0:
            raise FamilyError("width must be positive")
        params = dict(self.default_params(width))
        if window is not None:
            params[self.primary_param] = int(window)
        for key, value in overrides.items():
            if value is None:
                continue
            if key not in params:
                raise FamilyError(
                    f"{self.name} has no parameter {key!r}; "
                    f"available: {sorted(params)}")
            params[key] = int(value)
        return self.normalize_params(width, params)

    def primary_value(self, width: int,
                      params: Mapping[str, int]) -> int:
        """The primary knob's value (used for report/window columns)."""
        return int(params[self.primary_param])

    # -- hardware ------------------------------------------------------
    @abc.abstractmethod
    def build_speculative(self, width: int, **params: int) -> Circuit:
        """The approximate adder core (``a``/``b`` -> ``sum``/``cout``)."""

    @abc.abstractmethod
    def build_circuit(self, width: int, **params: int) -> Circuit:
        """The full datapath: speculative core + detector + recovery
        (outputs ``sum``, ``cout``, ``err``, ``sum_exact``,
        ``cout_exact``)."""

    def design_kinds(self) -> Dict[str, Callable[[int, Optional[int]],
                                                 Circuit]]:
        """Generator entries this family contributes to ``DESIGN_KINDS``.

        Default: ``<name>`` (speculative core) and ``<name>_r``
        (datapath with rectification/recovery), both resolving their
        parameters through :meth:`resolve_params`.
        """
        def spec(width: int, window: Optional[int] = None) -> Circuit:
            return self.build_speculative(
                width, **self.resolve_params(width, window))

        def datapath(width: int, window: Optional[int] = None) -> Circuit:
            return self.build_circuit(
                width, **self.resolve_params(width, window))

        return {self.name: spec, f"{self.name}_r": datapath}

    # -- software ------------------------------------------------------
    @abc.abstractmethod
    def functional(self, width: int, **params: int) -> SpeculativeModel:
        """Bit-accurate big-int model of the hardware behaviour."""

    def numpy_kernel(self, width: int, **params: int
                     ) -> Optional[Callable[..., KernelBatch]]:
        """Vectorised uint64 batch kernel ``kernel(a, b) -> KernelBatch``
        bit-identical to :meth:`functional`, or ``None`` when the
        width/family has no vectorised path."""
        return None

    # -- analytics -----------------------------------------------------
    def error_model(self, width: int, **params: int) -> FamilyErrorModel:
        """Exact analytic error-rate statistics (uniform operands).

        Memoized per family instance: the model is a pure function of
        ``(width, params)`` and the exact-Fraction computation is
        expensive enough (longest-run DPs over ``2^width``) that hot
        callers like the verifier's per-run rate checks must not pay
        it repeatedly.
        """
        key = (width, tuple(sorted(params.items())))
        cache = self.__dict__.setdefault("_error_model_cache", {})
        if key not in cache:
            cache[key] = self._error_model(width, **params)
        return cache[key]

    @abc.abstractmethod
    def _error_model(self, width: int, **params: int) -> FamilyErrorModel:
        """Compute the analytic model (uncached; see :meth:`error_model`)."""

    def error_distribution(self, width: int, **params: int
                           ) -> Optional[EdDistribution]:
        """Exact error-distance distribution, where tractable."""
        return None

    # -- misc ----------------------------------------------------------
    def label(self, width: int, params: Mapping[str, int]) -> str:
        tail = "_".join(f"{k[0]}{v}" for k, v in sorted(params.items()))
        return f"{self.name}{width}_{tail}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AdderFamily {self.name}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FAMILIES: Dict[str, AdderFamily] = {}


def register_family(family: AdderFamily) -> AdderFamily:
    """Register *family* (replacing any previous entry of that name)."""
    if not isinstance(family, AdderFamily):
        raise FamilyError("register_family expects an AdderFamily")
    _FAMILIES[family.name] = family
    return family


def unregister_family(name: str) -> None:
    """Remove a registered family (test cleanup; builtins come back on
    the next :func:`_ensure_builtin`)."""
    _FAMILIES.pop(name, None)


def _ensure_builtin() -> None:
    if "aca" not in _FAMILIES:
        from . import aca, blockspec, cesa  # noqa: F401  (register)


def family_names() -> List[str]:
    """Registered family names, deterministically sorted."""
    _ensure_builtin()
    return sorted(_FAMILIES)


def get_family(name: str) -> AdderFamily:
    """Look up a registered family by name."""
    _ensure_builtin()
    try:
        return _FAMILIES[name]
    except KeyError:
        raise FamilyError(
            f"unknown adder family {name!r}; available: "
            f"{', '.join(family_names())}") from None


def resolve_params(name: str, width: int, window: Optional[int] = None,
                   **overrides: Optional[int]) -> Dict[str, int]:
    """Shorthand: ``get_family(name).resolve_params(...)``."""
    return get_family(name).resolve_params(width, window=window,
                                           **overrides)


def functional_factory(family: AdderFamily
                       ) -> Callable[..., SpeculativeModel]:
    """Adapter registering a family with the engine's functional-model
    registry: ``factory(width, window=None, **overrides)`` resolves the
    knobs through the family and instantiates its functional model."""
    def make(width: int, window: Optional[int] = None,
             **overrides: Optional[int]) -> SpeculativeModel:
        params = family.resolve_params(width, window=window, **overrides)
        return family.functional(width, **params)
    return make
