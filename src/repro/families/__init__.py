"""The approximate-adder zoo: ``AdderFamily`` protocol + registry.

Importing this package registers the built-in families (ACA, CESA-R,
block-based speculative) with both the family registry and the engine's
functional-model registry.
"""

from .base import (AdderFamily, FamilyError, FamilyErrorModel, KernelBatch,
                   SpeculativeModel, family_names, functional_factory,
                   get_family, register_family, resolve_params,
                   unregister_family)
from .stats import (Boundary, BoundaryRates, EdDistribution, boundary_rates,
                    ed_distribution)
from .blocks import (BlockSpecModel, block_boundaries, block_bounds,
                     block_numpy_kernel, build_block_datapath,
                     build_block_speculative)
from . import aca, blockspec, cesa  # noqa: F401  (register builtins)
from .aca import AcaFamily, aca_numpy_kernel
from .blockspec import BlockSpecFamily
from .cesa import CesaFamily, CesaModel
from .pareto import (ParetoPoint, ParetoReport, run_pareto_study,
                     write_pareto_report)

__all__ = [
    "AdderFamily",
    "FamilyError",
    "FamilyErrorModel",
    "KernelBatch",
    "SpeculativeModel",
    "family_names",
    "functional_factory",
    "get_family",
    "register_family",
    "resolve_params",
    "unregister_family",
    "Boundary",
    "BoundaryRates",
    "EdDistribution",
    "boundary_rates",
    "ed_distribution",
    "BlockSpecModel",
    "block_boundaries",
    "block_bounds",
    "block_numpy_kernel",
    "build_block_datapath",
    "build_block_speculative",
    "AcaFamily",
    "aca_numpy_kernel",
    "BlockSpecFamily",
    "CesaFamily",
    "CesaModel",
    "ParetoPoint",
    "ParetoReport",
    "run_pareto_study",
    "write_pareto_report",
]
