"""The Almost Correct Adder as the first registered :class:`AdderFamily`.

This wraps the repo's original subject — the paper's ACA speculative
core, its all-propagate-run detector and its shared-logic recovery path
(:mod:`repro.core`) plus the :class:`~repro.mc.fastsim.AcaModel`
functional fast path — behind the family protocol, so every layer that
went through ACA-specific entry points now goes through the registry.

Boundary view (used by the shared statistics): the ACA is the block
family with 1-bit blocks and an ``window``-bit lookahead at every cut.
Its analytic rates keep using :mod:`repro.analysis.error_model`, which
predates the boundary DP and is cross-checked against brute force in
the verify suite.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional

import numpy as np

from ..analysis.error_model import aca_error_probability, choose_window
from ..analysis.runs import count_max_run_at_most
from ..circuit import Circuit
from ..core.aca import build_aca
from ..core.vlsa import build_vlsa_datapath
from ..engine.functional import register_functional
from ..mc.fastsim import AcaModel
from .base import (AdderFamily, FamilyErrorModel, KernelBatch,
                   SpeculativeModel, register_family)

__all__ = ["AcaFamily", "aca_numpy_kernel", "FAMILY"]


def _window_generate_np(g: np.ndarray, p: np.ndarray,
                        window: int) -> np.ndarray:
    """Bit ``i`` = group generate of ``[max(0, i-window+1), i]``.

    Word-level Kogge-Stone doubling with one final (possibly
    overlapping) combine — the carry operator is idempotent across
    overlapping ranges, so the partial last step stays exact.  Bit ``i``
    is therefore the ACA's speculative carry *out of* bit ``i`` at
    ``cin = 0`` (anchored windows clamp at bit 0).
    """
    certified = 1
    G = g.copy()
    P = p.copy()
    while certified < window:
        step = min(certified, window - certified)
        G = G | (P & (G << np.uint64(step)))
        P = P & (P << np.uint64(step))
        certified += step
    return G


def _window_all_ones_np(word: np.ndarray, window: int) -> np.ndarray:
    """Vectorised :func:`repro.mc.fastsim.window_all_ones` on uint64."""
    certified = 1
    out = word.copy()
    while certified < window:
        step = min(certified, window - certified)
        out &= out >> np.uint64(step)
        certified += step
    return out


def aca_numpy_kernel(width: int, window: int
                     ) -> Callable[[np.ndarray, np.ndarray], KernelBatch]:
    """uint64 batch kernel bit-identical to :class:`AcaModel`."""
    if width > 64:
        raise ValueError("numpy kernels support widths up to 64 bits")
    window = min(max(1, window), width)
    int_mask = (1 << width) - 1
    mask = np.uint64(int_mask if width < 64 else 0xFFFFFFFFFFFFFFFF)

    def kernel(a: np.ndarray, b: np.ndarray) -> KernelBatch:
        a = np.asarray(a, dtype=np.uint64) & mask
        b = np.asarray(b, dtype=np.uint64) & mask
        s = (a + b) & mask  # uint64 wraparound == mod 2^64 at width 64
        if width < 64:
            exact_couts = ((a + b) >> np.uint64(width)).astype(np.uint64)
        else:
            exact_couts = (s < a).astype(np.uint64)
        p = a ^ b
        g = a & b
        spec_carries = _window_generate_np(g, p, window)
        spec = (p ^ (spec_carries << np.uint64(1))) & mask
        spec_couts = (spec_carries >> np.uint64(width - 1)) & np.uint64(1)
        if window >= width:
            # Every window is anchored: the speculative sum is exact,
            # but the reference detector still fires on an all-propagate
            # word (see fastsim.detector_flag).
            flags = p == mask
            spec_err = np.zeros(a.shape, dtype=bool)
        else:
            starts = _window_all_ones_np(p, window)
            flags = starts != 0
            # Wrong iff a non-anchored all-propagate window receives a
            # carry; carry into bit i is bit i of (a + b) ^ a ^ b.
            carries = s ^ p
            spec_err = (starts & carries & ~np.uint64(1)) != 0
        return KernelBatch(spec_sums=spec, spec_couts=spec_couts,
                           exact_sums=s, exact_couts=exact_couts,
                           flags=flags, spec_errors=spec_err)

    return kernel


class AcaFamily(AdderFamily):
    """Almost Correct Adder + VLSA datapath (the paper's design)."""

    name = "aca"
    title = "Almost Correct Adder (VLSA)"
    paper = "Verma, Brisk & Ienne, DATE 2008"
    primary_param = "window"

    def default_params(self, width: int) -> Dict[str, int]:
        return {"window": choose_window(width)}

    def build_speculative(self, width: int, window: int) -> Circuit:
        return build_aca(width, window)

    def build_circuit(self, width: int, window: int) -> Circuit:
        return build_vlsa_datapath(width, window)

    def functional(self, width: int, window: int) -> SpeculativeModel:
        return AcaModel(width=width, window=min(window, width))

    def numpy_kernel(self, width: int, window: int
                     ) -> Optional[Callable[..., KernelBatch]]:
        if width > 64:
            return None
        return aca_numpy_kernel(width, window)

    def _error_model(self, width: int, window: int) -> FamilyErrorModel:
        window = min(max(1, window), width)
        err = aca_error_probability(width, window, exact=True)
        if window > width:  # unreachable after clamping; kept for clarity
            flag = Fraction(0)
        else:
            # Every propagate pattern is shared by exactly 2^width
            # operand pairs, so the flag rate reduces to the longest-run
            # distribution of a fair 2^width-coin word.
            flag = Fraction(
                (1 << width) - count_max_run_at_most(width, window - 1),
                1 << width)
        return FamilyErrorModel(width=width, params={"window": window},
                                exact_error_rate=Fraction(err),
                                exact_flag_rate=flag)


#: The registered singleton.
FAMILY = register_family(AcaFamily())

# The functional fast path stands in for build_aca(width, window) in the
# engine's cross-check registry (moved here from repro.mc.fastsim so the
# registry and the family zoo share one import root).
register_functional("aca", AcaModel)
