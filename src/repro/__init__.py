"""repro — Variable Latency Speculative Addition (Verma/Brisk/Ienne, DATE'08).

A complete reproduction of the paper as a Python library:

* :mod:`repro.circuit` — gate-level netlists, simulation, STA, area,
  technology libraries, VHDL/Verilog export (the synthesis-flow stand-in).
* :mod:`repro.adders` — classical baselines: ripple, CLA, carry-skip/
  select, conditional-sum, and the parallel-prefix family (Sklansky,
  Kogge-Stone, Brent-Kung, Han-Carlson, Ladner-Fischer, Knowles), plus the
  DesignWare-proxy best-of baseline.
* :mod:`repro.core` — the paper's contribution: the Almost Correct Adder,
  error detection, error recovery and the VLSA datapath.
* :mod:`repro.analysis` — longest-run combinatorics, Theorem 1, the exact
  ACA error model.
* :mod:`repro.mc` — fast functional models and Monte Carlo sampling.
* :mod:`repro.arch` — clocked VLSA machine (Fig. 6/7), VCD waveforms.
* :mod:`repro.apps` — the ciphertext-only attack workload of Section 1.
* :mod:`repro.experiments` — one function per paper table/figure.

Quickstart::

    from repro import build_aca, choose_window
    from repro.circuit import simulate_bus_ints

    aca = build_aca(64, choose_window(64))
    simulate_bus_ints(aca, {"a": 123456789, "b": 987654321})["sum"]
"""

from .analysis import (
    aca_error_probability,
    choose_window,
    expected_latency_cycles,
    quantile_longest_run,
)
from .core import (
    build_aca,
    build_error_detector,
    build_recovery_adder,
    build_vlsa_datapath,
    characterize_vlsa,
)
from .arch import VlsaMachine
from .mc import AcaModel

__version__ = "1.0.0"

__all__ = [
    "build_aca", "build_error_detector", "build_recovery_adder",
    "build_vlsa_datapath", "characterize_vlsa",
    "choose_window", "aca_error_probability", "expected_latency_cycles",
    "quantile_longest_run",
    "VlsaMachine", "AcaModel",
    "__version__",
]
