"""Soft-DSP workload: FIR filtering with speculative arithmetic.

The paper cites Hegde & Shanbhag's "soft digital signal processing"
(reference [5]) as the other family of error-tolerant applications.  This
module provides a small fixed-point FIR filter whose multiply-accumulate
arithmetic runs through a pluggable adder, plus signal-quality metrics.

It also demonstrates an important *workload-dependence* result this
reproduction surfaced: on signed small-magnitude data, two's-complement
sign extension creates long propagate chains (adding a positive and a
negative word whose sum is small must carry through every high bit), so
the uniform-operand stall model badly underestimates the flag rate —
we measure ~15 % stalls at the "99.99 %" window instead of 1e-4, exactly
as the biased model of :mod:`repro.analysis.biased` predicts for
high-propagate bit positions.  Raw ACA errors are also *large* (a carry
dropped near the sign bits), so soft-DSP use needs the VLSA semantics:
:func:`vlsa_fir_filter` detects and recovers, paying extra cycles only on
flagged accumulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..mc.fastsim import aca_add, detector_flag
from .blockcipher import AdderFn, exact_adder

__all__ = ["fir_filter", "vlsa_fir_filter", "VlsaFirStats",
           "moving_average_taps", "snr_db", "synth_signal", "quantize"]

_MASK32 = 0xFFFFFFFF


def moving_average_taps(length: int) -> List[float]:
    """Box-car (moving average) filter taps."""
    if length <= 0:
        raise ValueError("length must be positive")
    return [1.0 / length] * length


def quantize(values: Sequence[float], fractional_bits: int = 12
             ) -> List[int]:
    """Fixed-point quantisation to signed Q(31-f).f words."""
    scale = 1 << fractional_bits
    out = []
    for v in values:
        q = int(round(v * scale))
        out.append(q & _MASK32)
    return out


def _to_signed32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & (1 << 31) else value


def fir_filter(signal: Sequence[int], taps: Sequence[int],
               add: AdderFn = exact_adder) -> List[int]:
    """Fixed-point FIR: every accumulation goes through *add*.

    Args:
        signal: Input samples as 32-bit fixed-point words.
        taps: Filter coefficients as 32-bit fixed-point words.
        add: 32-bit adder used for the accumulations (products are exact;
            the paper's speculation applies to carry-propagate adds).

    Returns:
        Output samples (32-bit words), same length as *signal*.
    """
    out: List[int] = []
    for n in range(len(signal)):
        acc = 0
        for k, tap in enumerate(taps):
            if n - k < 0:
                break
            prod = (_to_signed32(signal[n - k]) * _to_signed32(tap)) >> 12
            acc = add(acc, prod & _MASK32)
        out.append(acc)
    return out


@dataclass
class VlsaFirStats:
    """Cost accounting of a VLSA-based FIR run."""

    adds: int
    stalls: int
    recovery_cycles: int = 1

    @property
    def stall_rate(self) -> float:
        return self.stalls / self.adds if self.adds else 0.0

    @property
    def cycles(self) -> int:
        """Total adder cycles: 1 per add plus recovery on stalls."""
        return self.adds + self.stalls * self.recovery_cycles

    def average_latency(self) -> float:
        return self.cycles / self.adds if self.adds else 0.0


def vlsa_fir_filter(signal: Sequence[int], taps: Sequence[int],
                    window: int = 18
                    ) -> Tuple[List[int], VlsaFirStats]:
    """FIR with VLSA accumulation: always-correct output + cycle stats.

    Every accumulation runs speculatively; flagged additions (the
    detector sees a >= *window* propagate chain) are recovered exactly at
    the cost of an extra cycle.  On signed audio-like data the stall rate
    is workload-dependent and far above the uniform-operand model — the
    honest price of speculation on sign-extended arithmetic.
    """
    stats = VlsaFirStats(adds=0, stalls=0)

    def add(a: int, b: int) -> int:
        stats.adds += 1
        if detector_flag(a, b, 32, window):
            stats.stalls += 1
            return (a + b) & _MASK32  # recovered exactly
        result, _ = aca_add(a, b, 32, window)
        return result

    out = fir_filter(signal, taps, add=add)
    return out, stats


def synth_signal(samples: int, freq: float = 0.02,
                 noise: float = 0.05, seed: int = 0) -> List[float]:
    """A noisy sine test signal in [-1, 1]."""
    import random

    rng = random.Random(seed)
    return [math.sin(2 * math.pi * freq * i) +
            rng.gauss(0.0, noise) for i in range(samples)]


def snr_db(reference: Sequence[int], measured: Sequence[int]) -> float:
    """Signal-to-noise ratio of *measured* against *reference* (dB)."""
    if len(reference) != len(measured):
        raise ValueError("length mismatch")
    sig = 0.0
    err = 0.0
    for r, m in zip(reference, measured):
        rs, ms = _to_signed32(r), _to_signed32(m)
        sig += float(rs) * rs
        err += float(rs - ms) * (rs - ms)
    if err == 0.0:
        return float("inf")
    if sig == 0.0:
        return float("-inf")
    return 10.0 * math.log10(sig / err)
