"""A toy ARX block cipher with a pluggable adder.

The paper motivates the ACA with ciphertext-only attacks: decryption is
dominated by modular addition, blocks are independent, and a corpus-level
frequency analysis is insensitive to a handful of wrongly decrypted
blocks.  To exercise that claim end-to-end we implement a small
add-rotate-xor Feistel cipher (TEA-flavoured, 64-bit blocks, 32-bit
words) whose *every addition goes through an injectable adder function* —
the exact adder for encryption, and either the exact adder or the
functional ACA model for decryption.

This is a teaching cipher for the reproduction, not a secure design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["AdderFn", "exact_adder", "aca_adder", "ArxCipher"]

#: An adder takes two 32-bit words and returns a 32-bit sum (mod 2^32).
AdderFn = Callable[[int, int], int]

_MASK32 = 0xFFFFFFFF
_GOLDEN = 0x9E3779B9  # TEA's key schedule constant


def exact_adder(a: int, b: int) -> int:
    """Reference 32-bit modular addition."""
    return (a + b) & _MASK32


def aca_adder(window: int) -> AdderFn:
    """A 32-bit adder backed by the functional ACA with the given window."""
    from ..mc.fastsim import aca_add

    def add(a: int, b: int) -> int:
        result, _ = aca_add(a & _MASK32, b & _MASK32, 32, window)
        return result

    return add


def _rotl(x: int, r: int) -> int:
    r %= 32
    return ((x << r) | (x >> (32 - r))) & _MASK32


@dataclass
class ArxCipher:
    """Feistel ARX cipher: 64-bit blocks, 32-bit round keys.

    Args:
        key: Master key (any non-negative int; folded to 64 bits).
        rounds: Feistel rounds (default 8).

    The round function is ``F(x, k) = rotl(x + k, 4) ^ (x + delta_r)``
    where every ``+`` is the injected adder.  Encryption always uses the
    exact adder (ciphertext must be canonical); decryption accepts an
    adder override so the attack can run speculatively.
    """

    key: int
    rounds: int = 8

    def __post_init__(self):
        if self.rounds < 2:
            raise ValueError("need at least 2 rounds")
        self._subkeys = self._schedule(self.key & 0xFFFFFFFFFFFFFFFF)

    def _schedule(self, key: int) -> List[int]:
        k0 = key & _MASK32
        k1 = (key >> 32) & _MASK32
        subkeys = []
        state = k0
        for r in range(self.rounds):
            state = exact_adder(_rotl(state, 5) ^ k1,
                                exact_adder(_GOLDEN, r))
            subkeys.append(state)
        return subkeys

    def _round(self, x: int, r: int, add: AdderFn) -> int:
        t1 = add(x, self._subkeys[r])
        t2 = add(x, (_GOLDEN * (r + 1)) & _MASK32)
        return _rotl(t1, 4) ^ t2

    def encrypt_block(self, block: int) -> int:
        """Encrypt one 64-bit block (always exact arithmetic)."""
        left = (block >> 32) & _MASK32
        right = block & _MASK32
        for r in range(self.rounds):
            left, right = right, left ^ self._round(right, r, exact_adder)
        return (left << 32) | right

    def decrypt_block(self, block: int, add: AdderFn = exact_adder) -> int:
        """Decrypt one 64-bit block using the supplied adder.

        With :func:`exact_adder` this inverts :meth:`encrypt_block`
        exactly; with an ACA adder a small fraction of blocks decrypt
        incorrectly — the trade the paper's attack scenario makes.
        """
        left = (block >> 32) & _MASK32
        right = block & _MASK32
        for r in range(self.rounds - 1, -1, -1):
            left, right = right ^ self._round(left, r, add), left
        return (left << 32) | right

    # ------------------------------------------------------------------
    def encrypt_bytes(self, data: bytes) -> bytes:
        """ECB-encrypt *data* (zero-padded to a multiple of 8 bytes)."""
        if len(data) % 8:
            data = data + b"\x00" * (8 - len(data) % 8)
        out = bytearray()
        for i in range(0, len(data), 8):
            block = int.from_bytes(data[i:i + 8], "big")
            out += self.encrypt_block(block).to_bytes(8, "big")
        return bytes(out)

    def decrypt_bytes(self, data: bytes,
                      add: AdderFn = exact_adder) -> bytes:
        """ECB-decrypt *data* with the supplied adder."""
        if len(data) % 8:
            raise ValueError("ciphertext must be a multiple of 8 bytes")
        out = bytearray()
        for i in range(0, len(data), 8):
            block = int.from_bytes(data[i:i + 8], "big")
            out += self.decrypt_block(block, add).to_bytes(8, "big")
        return bytes(out)
