"""English-letter frequency analysis (the attack's statistical test).

The paper's ciphertext-only attack keeps a candidate key when the
decrypted text's character frequencies look like natural language ("e"
at ~12.7 %, "x" at ~0.15 %, ...).  This module provides the reference
frequency table, a chi-squared goodness-of-fit score, and a small
public-domain corpus generator for the experiments.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

__all__ = [
    "ENGLISH_LETTER_FREQ",
    "letter_histogram",
    "chi_squared_score",
    "looks_like_english",
    "sample_corpus",
]

#: Relative letter frequencies of English text (per cent), the standard
#: table the paper alludes to ("e occurs with 12.7% frequency, x with
#: 0.15%").
ENGLISH_LETTER_FREQ: Dict[str, float] = {
    "a": 8.167, "b": 1.492, "c": 2.782, "d": 4.253, "e": 12.702,
    "f": 2.228, "g": 2.015, "h": 6.094, "i": 6.966, "j": 0.153,
    "k": 0.772, "l": 4.025, "m": 2.406, "n": 6.749, "o": 7.507,
    "p": 1.929, "q": 0.095, "r": 5.987, "s": 6.327, "t": 9.056,
    "u": 2.758, "v": 0.978, "w": 2.360, "x": 0.150, "y": 1.974,
    "z": 0.074,
}

_BASE_TEXT = (
    "adders are one of the key components in arithmetic circuits and "
    "enhancing their performance can significantly improve the quality of "
    "arithmetic designs this is the reason why the theoretical lower "
    "bounds on the delay and area of an adder have been analysed and "
    "circuits with performance close to these bounds have been designed "
    "binary addition is one of the most frequently used arithmetic "
    "operations it is a vital component in more complex arithmetic "
    "operations such as multiplication and division the attacker deduces "
    "a key by first pruning the set of potential keys and then "
    "exhaustively enumerates the decryption procedure using each of the "
    "potential keys any key for which the deciphered text has a frequency "
    "of characters that is similar to what is expected is considered to "
    "be valid and is then analysed using more sophisticated methods "
)


def letter_histogram(data: bytes) -> Dict[str, int]:
    """Count ASCII letters (case-folded) in *data*."""
    hist: Dict[str, int] = {}
    for byte in data:
        ch = chr(byte).lower()
        if "a" <= ch <= "z":
            hist[ch] = hist.get(ch, 0) + 1
    return hist


def chi_squared_score(data: bytes) -> float:
    """Chi-squared distance between *data*'s letters and English.

    Lower is more English-like.  Non-letter bytes contribute a fixed
    penalty so that binary garbage (what a wrong key produces) scores far
    worse than text.
    """
    if not data:
        return float("inf")
    hist = letter_histogram(data)
    letters = sum(hist.values())
    non_letters = sum(1 for byte in data
                      if not ("a" <= chr(byte).lower() <= "z")
                      and chr(byte) not in " \n\t.,;:'\"!?-")
    if letters == 0:
        return float("inf")
    score = 0.0
    for ch, expected_pct in ENGLISH_LETTER_FREQ.items():
        expected = letters * expected_pct / 100.0
        observed = hist.get(ch, 0)
        if expected > 0:
            score += (observed - expected) ** 2 / expected
    # Each suspicious byte is strong evidence against natural language.
    score += 20.0 * non_letters
    return score / len(data)


def looks_like_english(data: bytes, threshold: float = 1.0) -> bool:
    """Cheap accept/reject test used for key pruning."""
    return chi_squared_score(data) < threshold


def sample_corpus(num_bytes: int, seed: Optional[int] = 0) -> bytes:
    """A deterministic English-like corpus of roughly *num_bytes* bytes.

    Stitches shuffled sentences of a built-in passage (public-domain
    phrasing from the paper's own abstract/introduction) until the length
    target is met, so character statistics match natural English.
    """
    rng = random.Random(seed)
    words = _BASE_TEXT.split()
    chunks = []
    size = 0
    while size < num_bytes:
        start = rng.randrange(0, max(1, len(words) - 12))
        sentence = " ".join(words[start:start + rng.randint(6, 12)]) + " "
        chunks.append(sentence)
        size += len(sentence)
    return ("".join(chunks))[:num_bytes].encode("ascii")
