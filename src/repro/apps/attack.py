"""Ciphertext-only attack harness (paper Section 1's motivating workload).

Enumerate a candidate key space, decrypt the captured ciphertext with each
key, and keep the keys whose plaintext looks like English.  Decryption can
run on the exact adder or the ACA; the experiment the paper motivates is
that the ACA version reaches the same key ranking while each addition is
roughly twice as fast, because a few wrongly-decrypted blocks cannot move
corpus-level letter frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .blockcipher import AdderFn, ArxCipher, exact_adder
from .frequency import chi_squared_score

__all__ = ["KeyScore", "AttackResult", "CountingAdder", "run_attack"]


class CountingAdder:
    """Wraps an adder function and counts invocations.

    The count times a per-add latency model turns into the attack-time
    estimate reported by the benchmark (speculative adds complete in about
    half the cycle time of a traditional fast adder).
    """

    def __init__(self, fn: AdderFn, latency: float = 1.0):
        self.fn = fn
        self.latency = latency
        self.calls = 0

    def __call__(self, a: int, b: int) -> int:
        self.calls += 1
        return self.fn(a, b)

    @property
    def total_time(self) -> float:
        """Estimated arithmetic time: invocations x per-add latency."""
        return self.calls * self.latency


@dataclass
class KeyScore:
    """Frequency-analysis score of one candidate key (lower = better)."""

    key: int
    score: float


@dataclass
class AttackResult:
    """Outcome of a ciphertext-only attack run.

    Attributes:
        ranking: Candidate keys sorted best-first by frequency score.
        true_key: The key that produced the ciphertext.
        adds_performed: Total 32-bit additions executed.
        arithmetic_time: Adds x per-add latency (unitless model time).
        wrong_blocks: Blocks the winning decryption got wrong versus the
            exact decryption (nonzero only for approximate adders).
    """

    ranking: List[KeyScore]
    true_key: int
    adds_performed: int
    arithmetic_time: float
    wrong_blocks: int

    @property
    def recovered_key(self) -> int:
        return self.ranking[0].key

    @property
    def succeeded(self) -> bool:
        """Did frequency analysis rank the true key first?"""
        return self.recovered_key == self.true_key

    def rank_of_true_key(self) -> int:
        """1-based rank of the true key in the scored list."""
        for idx, ks in enumerate(self.ranking):
            if ks.key == self.true_key:
                return idx + 1
        raise ValueError("true key was not among the candidates")


def run_attack(ciphertext: bytes, true_key: int,
               candidate_keys: Sequence[int],
               adder: Optional[AdderFn] = None,
               add_latency: float = 1.0,
               rounds: int = 8) -> AttackResult:
    """Score every candidate key against the captured *ciphertext*.

    Args:
        ciphertext: ECB ciphertext produced by :class:`ArxCipher`.
        true_key: Ground-truth key (must appear in *candidate_keys* for
            success metrics to be meaningful).
        candidate_keys: The pruned key space to enumerate.
        adder: Adder used inside decryption (default: exact).
        add_latency: Model latency per addition (for the time estimate).
        rounds: Cipher rounds (must match the encryptor).

    Returns:
        An :class:`AttackResult` with the ranking and cost accounting.
    """
    counting = CountingAdder(adder or exact_adder, add_latency)
    scores: List[KeyScore] = []
    for key in candidate_keys:
        cipher = ArxCipher(key, rounds=rounds)
        plain = cipher.decrypt_bytes(ciphertext, add=counting)
        scores.append(KeyScore(key, chi_squared_score(plain)))
    scores.sort(key=lambda ks: ks.score)

    # How many blocks did the winning key get wrong (vs exact arithmetic)?
    winner = ArxCipher(scores[0].key, rounds=rounds)
    approx = winner.decrypt_bytes(ciphertext, add=counting.fn)
    exact = winner.decrypt_bytes(ciphertext, add=exact_adder)
    wrong = sum(1 for i in range(0, len(exact), 8)
                if approx[i:i + 8] != exact[i:i + 8])

    return AttackResult(
        ranking=scores,
        true_key=true_key,
        adds_performed=counting.calls,
        arithmetic_time=counting.total_time,
        wrong_blocks=wrong,
    )
