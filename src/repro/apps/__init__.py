"""Application substrate: the ciphertext-only attack of paper Section 1."""

from .blockcipher import AdderFn, ArxCipher, aca_adder, exact_adder
from .frequency import (
    ENGLISH_LETTER_FREQ,
    chi_squared_score,
    letter_histogram,
    looks_like_english,
    sample_corpus,
)
from .attack import AttackResult, CountingAdder, KeyScore, run_attack
from .dsp import (
    VlsaFirStats,
    fir_filter,
    moving_average_taps,
    quantize,
    snr_db,
    synth_signal,
    vlsa_fir_filter,
)

__all__ = [
    "AdderFn", "ArxCipher", "aca_adder", "exact_adder",
    "ENGLISH_LETTER_FREQ", "chi_squared_score", "letter_histogram",
    "looks_like_english", "sample_corpus",
    "AttackResult", "CountingAdder", "KeyScore", "run_attack",
    "fir_filter", "vlsa_fir_filter", "VlsaFirStats",
    "moving_average_taps", "quantize", "snr_db", "synth_signal",
]
