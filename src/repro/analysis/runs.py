"""Exact combinatorics of the longest run of ones (paper Section 3.1).

The longest sequence of propagate signals in an addition ``A + B`` equals
the longest run of ones in ``A XOR B``, which is uniform over n-bit strings
for uniform operands.  The paper's recurrence (attributed to a computer
program) counts the strings whose longest 1-run is at most ``x``::

    A_n(x) = 2^n                                 if n <= x
    A_n(x) = sum_{j=0}^{x} A_{n-1-j}(x)          otherwise

(the sum conditions on the position of the first 0: ``j`` leading ones
followed by a 0 and any valid suffix).  Everything here is exact
big-integer arithmetic; probabilities are formed as integer ratios and
only converted to float at the end, so they stay meaningful at n = 4096.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "count_max_run_at_most",
    "prob_max_run_at_most",
    "prob_max_run_at_least",
    "longest_run_distribution",
    "quantile_longest_run",
    "expected_longest_run",
    "variance_longest_run",
    "longest_run_of_ones",
    "table1_rows",
]


@lru_cache(maxsize=None)
def _counts_up_to(n: int, x: int) -> Tuple[int, ...]:
    """``(A_0(x), ..., A_n(x))`` computed with a sliding-window sum."""
    if x < 0:
        return tuple([1] + [0] * n)  # only the empty string has no 1-run > -1
    counts: List[int] = []
    window_sum = 0  # sum of the last (x+1) entries of `counts`
    for m in range(n + 1):
        if m <= x:
            a_m = 1 << m
        else:
            a_m = window_sum
        counts.append(a_m)
        window_sum += a_m
        if len(counts) > x + 1:
            window_sum -= counts[-(x + 2)]
    return tuple(counts)


def count_max_run_at_most(n: int, x: int) -> int:
    """Number of n-bit strings whose longest run of ones is <= x (exact)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return _counts_up_to(n, x)[n]


def prob_max_run_at_most(n: int, x: int) -> float:
    """P(longest 1-run of a uniform n-bit string <= x)."""
    return float(Fraction(count_max_run_at_most(n, x), 1 << n))


def prob_max_run_at_least(n: int, x: int) -> float:
    """P(longest 1-run >= x)."""
    if x <= 0:
        return 1.0
    return float(1 - Fraction(count_max_run_at_most(n, x - 1), 1 << n))


def longest_run_distribution(n: int, tail_cutoff: float = 1e-18
                             ) -> Dict[int, float]:
    """Probability mass function of the longest 1-run length.

    Args:
        n: String length.
        tail_cutoff: Stop once the remaining upper tail is below this.

    Returns:
        Mapping run length -> probability (lengths with negligible mass in
        the upper tail are omitted; the omitted mass is < *tail_cutoff*).
    """
    pmf: Dict[int, float] = {}
    prev = Fraction(0)
    denom = 1 << n
    for x in range(n + 1):
        cur = Fraction(count_max_run_at_most(n, x), denom)
        mass = cur - prev
        if mass > 0:
            pmf[x] = float(mass)
        prev = cur
        if 1 - cur < tail_cutoff:
            break
    return pmf


def quantile_longest_run(n: int, probability: float) -> int:
    """Smallest ``x`` with P(longest run <= x) >= *probability*.

    This regenerates the paper's Table 1: e.g. the bound that holds with
    99 % or 99.99 % probability per bitwidth.
    """
    if not (0 < probability < 1):
        raise ValueError("probability must be in (0, 1)")
    target = Fraction(probability).limit_denominator(10**15)
    denom = 1 << n
    for x in range(n + 1):
        if Fraction(count_max_run_at_most(n, x), denom) >= target:
            return x
    return n


def expected_longest_run(n: int) -> float:
    """Exact E[longest 1-run] via ``E = sum_x P(L > x)``."""
    denom = 1 << n
    total = Fraction(0)
    for x in range(n + 1):
        p_le = Fraction(count_max_run_at_most(n, x), denom)
        tail = 1 - p_le
        if tail == 0:
            break
        total += tail
        if float(tail) < 1e-18:
            break
    return float(total)


def variance_longest_run(n: int) -> float:
    """Exact Var[longest 1-run] (Schilling reports ~1.873 asymptotically)."""
    pmf = longest_run_distribution(n)
    mean = sum(x * p for x, p in pmf.items())
    return sum(p * (x - mean) ** 2 for x, p in pmf.items())


def longest_run_of_ones(value: int) -> int:
    """Longest run of ones in the binary representation of *value*.

    Uses the doubling trick: repeatedly AND with a shifted copy; each step
    of size ``s`` certifies runs of length ``current + s``.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    length = 0
    while value:
        # One step of x & (x >> 1) reduces every run length by one.
        value &= value >> 1
        length += 1
    return length


def table1_rows(bitwidths: Sequence[int],
                probabilities: Sequence[float] = (0.99, 0.9999)
                ) -> List[Tuple[int, Tuple[int, ...]]]:
    """Rows of the paper's Table 1: per bitwidth, the run bound per target.

    Returns:
        List of ``(bitwidth, (bound_for_p0, bound_for_p1, ...))``.
    """
    rows = []
    for n in bitwidths:
        bounds = tuple(quantile_longest_run(n, p) for p in probabilities)
        rows.append((n, bounds))
    return rows
