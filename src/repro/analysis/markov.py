"""Theorem 1: expected coin flips to see a run of k heads (paper Fig. 2).

The paper models the wait as a walk on an infinite line graph: heads
advance one node, tails reset to node 0, and node ``k`` is reached exactly
when ``k`` consecutive heads occur.  The recurrence
``T_k = T_{k-1} + (1 + (1 + T_k)) / 2`` solves to ``T_k = 2^(k+1) - 2``.

Three independent computations are provided — the closed form, a linear
solve of the absorbing Markov chain, and Monte Carlo simulation — and the
test suite checks they agree.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "expected_flips_closed_form",
    "expected_flips_recurrence",
    "expected_flips_linear_solve",
    "expected_flips_monte_carlo",
]


def expected_flips_closed_form(k: int) -> int:
    """Theorem 1: ``T_k = 2^(k+1) - 2`` (exact integer)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return (1 << (k + 1)) - 2


def expected_flips_recurrence(k: int) -> int:
    """Iterate the paper's recurrence ``T_j = 2*T_{j-1} + 2`` from ``T_0 = 0``.

    The paper derives ``T_k = T_{k-1} + (1 + (1 + T_k))/2``; solving for
    ``T_k`` gives ``T_k = 2 T_{k-1} + 2``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    t = 0
    for _ in range(k):
        t = 2 * t + 2
    return t


def expected_flips_linear_solve(k: int) -> float:
    """Solve the absorbing-chain equations with a dense linear system.

    Unknowns ``E_j`` (expected steps from node ``j`` to node ``k``) satisfy
    ``E_j = 1 + (E_{j+1} + E_0) / 2`` for ``j < k`` and ``E_k = 0``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return 0.0
    a = np.zeros((k, k))
    b = np.ones(k)
    for j in range(k):
        a[j, j] = 1.0
        a[j, 0] -= 0.5  # tail returns to node 0
        if j + 1 < k:
            a[j, j + 1] -= 0.5  # head advances
        # head from node k-1 reaches the absorbing node (E_k = 0)
    return float(np.linalg.solve(a, b)[0])


def expected_flips_monte_carlo(k: int, trials: int = 10000,
                               rng: Optional[np.random.Generator] = None,
                               ) -> float:
    """Estimate the expected wait empirically.

    Flips are drawn in blocks and scanned with a run counter; each trial
    ends at the first run of *k* heads.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return 0.0
    rng = rng or np.random.default_rng()
    total_steps = 0
    block = max(1024, 4 * (1 << (k + 1)))
    for _ in range(trials):
        steps = 0
        run = 0
        done = False
        while not done:
            flips = rng.integers(0, 2, size=block)
            for f in flips:
                steps += 1
                run = run + 1 if f else 0
                if run == k:
                    done = True
                    break
        total_steps += steps
    return total_steps / trials
