"""Exact error model of the Almost Correct Adder.

An ACA with window ``w`` computes the carry into each bit from the ``w``
preceding bit positions, assuming zero carry into that window.  Its sum is
wrong exactly when some length-``w`` window is all-propagate *and* the true
carry entering the window is 1.  For uniform operands each bit position is
independently propagate with probability 1/2, generate with 1/4 and kill
with 1/4, so the error event is a function of a small Markov chain over
(trailing propagate-run length, carry entering the run).

``aca_error_probability`` evaluates that chain exactly (float or Fraction
arithmetic); the Monte Carlo cross-check lives in :mod:`repro.mc.fastsim`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple, Union

from .runs import prob_max_run_at_least, quantile_longest_run

__all__ = [
    "aca_error_probability",
    "detector_flag_probability",
    "choose_window",
    "expected_latency_cycles",
    "average_speedup",
]

Number = Union[float, Fraction]


def aca_error_probability(width: int, window: int, cin: int = 0,
                          exact: bool = False) -> Number:
    """P(ACA sum wrong) for uniform operands.

    The ACA is wrong iff some all-propagate window of length ``w``
    starting at a position ``j >= 1`` receives an incoming carry (the
    window starting at bit 0 is anchored and absorbs the real carry-in).
    For a run that starts above bit 0 the incoming carry is set locally by
    the generate/kill bit right below the run; the run touching bit 0 is
    special: its carry is the external ``cin``, and its first unanchored
    window starts at bit 1, so it needs length ``w + 1`` to fail.

    Args:
        width: Operand bitwidth ``n``.
        window: Speculation window ``w`` (the carry into bit ``i`` sees bits
            ``i-w .. i-1``).  The adder is exact when ``w >= n``.
        cin: External carry-in (0 or 1); a one raises the error probability
            slightly via the bit-0 run.
        exact: Use ``Fraction`` arithmetic for an exact rational result.

    Returns:
        The error probability (float, or Fraction when ``exact``).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if window <= 0:
        raise ValueError("window must be positive")
    if cin not in (0, 1):
        raise ValueError("cin must be 0 or 1")
    if window >= width:
        # No unanchored window fits inside the operand: always exact.
        return Fraction(0) if exact else 0.0

    one = Fraction(1) if exact else 1.0
    half = one / 2
    quarter = one / 4

    # States:
    #   ("init", r)     — still inside the run touching bit 0 (length r,
    #                     capped at window + 1); fails at r == window + 1
    #                     when cin is 1.
    #   ("run", r, c)   — inside a later run of length r (capped at
    #                     window) whose entering carry is c; fails at
    #                     r == window when c is 1.
    # Error is absorbing.
    init_cap = window + 1
    states: Dict[Tuple, Number] = {("init", 0): one}
    error = one * 0

    for _ in range(width):
        nxt: Dict[Tuple, Number] = {}

        def bump(key, mass):
            if mass:
                nxt[key] = nxt.get(key, one * 0) + mass

        for state, mass in states.items():
            # kill (1/4): next run starts with carry 0;
            # generate (1/4): next run starts with carry 1.
            bump(("run", 0, 0), mass * quarter)
            bump(("run", 0, 1), mass * quarter)
            # propagate (1/2): the current run extends.
            if state[0] == "init":
                r = state[1] + 1
                if cin and r >= init_cap:
                    error += mass * half
                else:
                    bump(("init", min(r, init_cap)), mass * half)
            else:
                _, r, c = state
                r += 1
                if r >= window:
                    if c:
                        error += mass * half
                    else:
                        bump(("run", window, 0), mass * half)
                else:
                    bump(("run", r, c), mass * half)
        states = nxt

    return error


def detector_flag_probability(width: int, window: int) -> float:
    """P(error detector fires) = P(some propagate run reaches *window*).

    The detector is conservative: it also fires on runs whose entering
    carry is 0, so this is an upper bound on
    :func:`aca_error_probability`.
    """
    return prob_max_run_at_least(width, window)


def choose_window(width: int, accuracy: float = 0.9999) -> int:
    """Smallest window whose *detector* stays silent with P >= accuracy.

    This matches the paper's construction: pick the longest-run bound that
    holds with the target probability (Table 1) and speculate one bit
    beyond it, so that a run equal to the bound never triggers the
    detector, let alone an error.
    """
    return quantile_longest_run(width, accuracy) + 1


def expected_latency_cycles(error_probability: float,
                            recovery_cycles: int = 1) -> float:
    """Average VLSA latency: 1 cycle plus the recovery penalty when wrong.

    Paper Section 4.3: with error probability below 1e-4 the average is
    ~1.0001-1.0002 cycles.
    """
    if not (0 <= error_probability <= 1):
        raise ValueError("error probability must be in [0, 1]")
    if recovery_cycles < 0:
        raise ValueError("recovery cycles must be non-negative")
    return 1.0 + error_probability * recovery_cycles


def average_speedup(traditional_delay: float, vlsa_clock: float,
                    error_probability: float,
                    recovery_cycles: int = 1) -> float:
    """Average-time speedup of the VLSA over a traditional adder.

    The VLSA clock period is set by ``max(ACA delay, detector delay)``;
    the average time per add is that period times the expected latency in
    cycles.
    """
    avg_time = vlsa_clock * expected_latency_cycles(error_probability,
                                                    recovery_cycles)
    return traditional_delay / avg_time
