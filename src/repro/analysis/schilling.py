"""Asymptotics and tail bounds for longest head runs.

Schilling (1990, paper reference [12]) proved that the expected longest
run of heads in ``n`` fair coin flips is ``log2 n - 2/3 + o(1)`` with
variance approaching ~1.873 (a constant, independent of ``n``).  Gordon,
Schilling and Waterman (1986, paper reference [4]) give the extreme-value
tail: the probability of exceeding the typical value by ``t`` decays like
``2^-t`` — the fact the paper exploits when it notes that raising the run
bound by 7 drops the error rate from 1 % to 0.01 %.
"""

from __future__ import annotations

import math

__all__ = [
    "SCHILLING_VARIANCE",
    "expected_longest_run_asymptotic",
    "feller_prob_max_run_below",
    "union_tail_bound",
    "exceedance_decay_ratio",
]

#: Asymptotic variance of the longest-run distribution:
#: ``pi^2 / (6 ln^2 2) + 1/12 ~ 3.507`` (plus a tiny oscillating term).
#: NOTE: the paper's text quotes "variance 1.873"; the exact distribution
#: computed from the A_n(x) recurrence — and verified against brute-force
#: enumeration in the test suite — has variance ~3.4-3.5, matching the
#: standard extreme-value constant.  EXPERIMENTS.md records the deviation.
SCHILLING_VARIANCE = math.pi ** 2 / (6 * math.log(2) ** 2) + 1.0 / 12.0


def expected_longest_run_asymptotic(n: int) -> float:
    """Schilling's approximation ``E[L_n] ~ log2(n) - 2/3``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return math.log2(n) - 2.0 / 3.0


def feller_prob_max_run_below(n: int, x: int) -> float:
    """Extreme-value approximation ``P(L_n < x) ~ exp(-n / 2^(x+1))``.

    (Each of the ~n positions starts a length-x head run with probability
    ``2^-x * 1/2`` counting the preceding tail.)  Accurate to a few
    percent near the typical value; used as an analytic cross-check of
    the exact recurrence.
    """
    if x <= 0:
        return 0.0
    return math.exp(-n / float(2 ** (x + 1)))


def union_tail_bound(n: int, x: int) -> float:
    """Union (first-moment) bound ``P(L_n >= x) <= (n - x + 1) * 2^-x``.

    Each of the ``n - x + 1`` windows of length ``x`` is all-ones with
    probability ``2^-x``.
    """
    if x <= 0:
        return 1.0
    if x > n:
        return 0.0
    return min(1.0, (n - x + 1) / float(2 ** x))


def exceedance_decay_ratio(n: int, x: int, dx: int) -> float:
    """Approximate ratio ``P(L_n >= x + dx) / P(L_n >= x) ~ 2^-dx``.

    Demonstrates the Gordon et al. exponential decay the paper cites: each
    extra bit of run bound halves the failure probability.
    """
    lo = union_tail_bound(n, x)
    hi = union_tail_bound(n, x + dx)
    if lo == 0:
        return 0.0
    return hi / lo
