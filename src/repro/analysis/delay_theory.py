"""Analytic logic-depth formulas — the paper's complexity claims.

The headline claim is that the ACA is "exponentially faster" than any
exact adder: an exact n-bit adder needs depth ``Theta(log n)`` while the
ACA needs only ``Theta(log w) = Theta(log log n)`` for the high-accuracy
window ``w ~ log n``.  This module states those formulas precisely, in
gate levels, matching this repository's constructions exactly; the test
suite verifies them against unit-delay static timing analysis, turning
the asymptotic story into checked arithmetic.
"""

from __future__ import annotations

import math

__all__ = [
    "prefix_adder_depth",
    "brent_kung_depth",
    "aca_depth",
    "detector_depth",
    "aca_speedup_asymptotic",
]


def _clog2(x: int) -> int:
    return max(0, math.ceil(math.log2(x))) if x > 1 else 0


def prefix_adder_depth(width: int) -> int:
    """Gate levels of a minimum-depth prefix adder (KS/Sklansky).

    The worst *sum* bit needs the prefix over ``n-1`` positions plus the
    pg and sum XOR rows; the carry-out needs the full ``n``-position
    prefix but no final XOR.  The critical path is whichever is deeper
    (they differ only when ``n`` is one above a power of two).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if width == 1:
        return 2
    sum_path = 2 + _clog2(width - 1) if width > 1 else 2
    cout_path = 1 + _clog2(width)
    return max(sum_path, cout_path)


def brent_kung_depth(width: int) -> int:
    """Gate levels of the Brent-Kung adder: ``2*ceil(log2 n) - 2``
    combine levels plus the pg and sum XOR rows."""
    if width <= 0:
        raise ValueError("width must be positive")
    if width <= 2:
        return prefix_adder_depth(width)
    return 2 * _clog2(width)


def aca_depth(width: int, window: int) -> int:
    """Gate levels of the ACA as built by :class:`repro.core.AcaBuilder`.

    ``pg`` XOR + ``ceil(log2 w)`` combine levels (doubling strips with the
    final doubling fused into the window row) + sum XOR.  Clamps to the
    exact-prefix depth when the window covers the operand.
    """
    if width <= 0 or window <= 0:
        raise ValueError("width and window must be positive")
    w = min(window, width)
    if w == 1:
        return 2  # carries are the g bits themselves
    return _clog2(w) + 2


def detector_depth(width: int, window: int, or_arity: int = 4) -> int:
    """Gate levels of the standalone error detector.

    ``p`` XOR + AND-doubling levels covering the window + the OR tree
    over the ``n - w + 1`` window terms.
    """
    if width <= 0 or window <= 0:
        raise ValueError("width and window must be positive")
    if window > width:
        return 0  # constant 0
    # AND-doubling: full doublings below w, plus one partial step if w is
    # not a power of two.
    and_levels = 0
    certified = 1
    while certified * 2 <= window:
        certified *= 2
        and_levels += 1
    if certified < window:
        and_levels += 1
    terms = width - window + 1
    or_levels = (0 if terms <= 1 else
                 math.ceil(math.log(terms, or_arity)))
    return 1 + and_levels + or_levels


def aca_speedup_asymptotic(width: int, accuracy: float = 0.9999) -> float:
    """Depth-ratio prediction ``log n / log w`` with ``w = w(accuracy)``.

    The "exponential" speedup statement in its honest quantitative form:
    the ratio grows like ``log n / log log n``.
    """
    from .error_model import choose_window

    w = choose_window(width, accuracy)
    return prefix_adder_depth(width) / aca_depth(width, w)
