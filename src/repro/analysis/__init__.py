"""Probability theory of speculative addition (paper Section 3.1, Thm. 1).

Exact longest-run combinatorics (:mod:`~repro.analysis.runs`), Schilling /
Gordon asymptotics (:mod:`~repro.analysis.schilling`), the Theorem 1 walk
(:mod:`~repro.analysis.markov`) and the exact ACA error model
(:mod:`~repro.analysis.error_model`).
"""

from .runs import (
    count_max_run_at_most,
    expected_longest_run,
    longest_run_distribution,
    longest_run_of_ones,
    prob_max_run_at_least,
    prob_max_run_at_most,
    quantile_longest_run,
    table1_rows,
    variance_longest_run,
)
from .schilling import (
    SCHILLING_VARIANCE,
    exceedance_decay_ratio,
    expected_longest_run_asymptotic,
    feller_prob_max_run_below,
    union_tail_bound,
)
from .markov import (
    expected_flips_closed_form,
    expected_flips_linear_solve,
    expected_flips_monte_carlo,
    expected_flips_recurrence,
)
from .error_model import (
    aca_error_probability,
    average_speedup,
    choose_window,
    detector_flag_probability,
    expected_latency_cycles,
)
from .delay_theory import (
    aca_depth,
    aca_speedup_asymptotic,
    brent_kung_depth,
    detector_depth,
    prefix_adder_depth,
)
from .biased import (
    aca_error_probability_biased,
    pg_probabilities,
    run_at_least_probability_biased,
)

__all__ = [
    "count_max_run_at_most", "prob_max_run_at_most", "prob_max_run_at_least",
    "longest_run_distribution", "quantile_longest_run",
    "expected_longest_run", "variance_longest_run", "longest_run_of_ones",
    "table1_rows",
    "SCHILLING_VARIANCE", "expected_longest_run_asymptotic",
    "feller_prob_max_run_below", "union_tail_bound", "exceedance_decay_ratio",
    "expected_flips_closed_form", "expected_flips_recurrence",
    "expected_flips_linear_solve", "expected_flips_monte_carlo",
    "aca_error_probability", "detector_flag_probability", "choose_window",
    "expected_latency_cycles", "average_speedup",
    "aca_error_probability_biased", "pg_probabilities",
    "run_at_least_probability_biased",
    "prefix_adder_depth", "brent_kung_depth", "aca_depth",
    "detector_depth", "aca_speedup_asymptotic",
]
