"""ACA error model under non-uniform operand distributions.

The paper's analysis assumes uniform operands (propagate probability 1/2
per bit).  Real workloads — counters, addresses, the crypto app's
carry-save rows — are biased, which changes the stall rate.  This module
generalises the exact Markov-chain error model to arbitrary per-bit
(propagate, generate, kill) probabilities, and provides helpers to derive
those from independent per-bit one-probabilities of the operands.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = [
    "pg_probabilities",
    "aca_error_probability_biased",
    "run_at_least_probability_biased",
]

Triple = Tuple[float, float, float]  # (p_propagate, p_generate, p_kill)


def pg_probabilities(alpha: float, beta: float) -> Triple:
    """(propagate, generate, kill) for independent bits with
    ``P(a=1)=alpha`` and ``P(b=1)=beta``."""
    for x in (alpha, beta):
        if not (0.0 <= x <= 1.0):
            raise ValueError("bit probabilities must be in [0, 1]")
    p = alpha * (1 - beta) + beta * (1 - alpha)
    g = alpha * beta
    k = (1 - alpha) * (1 - beta)
    return p, g, k


def _normalise(width: int,
               probs: Union[Triple, Sequence[Triple]]) -> List[Triple]:
    if isinstance(probs, tuple) and len(probs) == 3 and all(
            isinstance(x, (int, float)) for x in probs):
        per_bit = [probs] * width  # same triple everywhere
    else:
        per_bit = list(probs)  # type: ignore[arg-type]
        if len(per_bit) != width:
            raise ValueError(f"need {width} per-bit triples")
    for p, g, k in per_bit:
        if min(p, g, k) < -1e-12 or abs(p + g + k - 1.0) > 1e-9:
            raise ValueError("each (p, g, k) must be a distribution")
    return per_bit


def aca_error_probability_biased(
        width: int, window: int,
        probs: Union[Triple, Sequence[Triple]] = (0.5, 0.25, 0.25),
        cin_weight: float = 0.0) -> float:
    """P(ACA wrong) when bit ``i`` is propagate/generate/kill with the
    given probabilities (independently across positions).

    Args:
        width: Operand bitwidth.
        window: Speculation window.
        probs: One ``(p, g, k)`` triple applied to every bit, or a
            sequence of per-bit triples (LSB first).
        cin_weight: P(external carry-in = 1).

    Returns:
        The exact error probability under the bit model.
    """
    if width <= 0 or window <= 0:
        raise ValueError("width and window must be positive")
    if not (0.0 <= cin_weight <= 1.0):
        raise ValueError("cin_weight must be in [0, 1]")
    per_bit = _normalise(width, probs)
    if window >= width:
        return 0.0

    init_cap = window + 1
    # states: ("init", r) for the run touching bit 0 (fails at window+1
    # when cin is 1) and ("run", r, c) for later runs (fail at window
    # when c is 1).  cin enters as a mixture over the init branch.
    states: Dict[Tuple, float] = {("init1", 0): cin_weight,
                                  ("init0", 0): 1.0 - cin_weight}
    error = 0.0

    for p, g, k in per_bit:
        nxt: Dict[Tuple, float] = {}

        def bump(key, mass):
            if mass:
                nxt[key] = nxt.get(key, 0.0) + mass

        for state, mass in states.items():
            bump(("run", 0, 0), mass * k)
            bump(("run", 0, 1), mass * g)
            if state[0] == "init1":
                r = state[1] + 1
                if r >= init_cap:
                    error += mass * p
                else:
                    bump(("init1", r), mass * p)
            elif state[0] == "init0":
                r = min(state[1] + 1, init_cap)
                bump(("init0", r), mass * p)
            else:
                _, r, c = state
                r += 1
                if r >= window:
                    if c:
                        error += mass * p
                    else:
                        bump(("run", window, 0), mass * p)
                else:
                    bump(("run", r, c), mass * p)
        states = nxt

    return error


def run_at_least_probability_biased(
        width: int, run: int,
        p_propagate: float) -> float:
    """P(some propagate run of length >= *run*) for i.i.d. biased bits.

    This is the biased detector-flag (stall) probability; computed with a
    linear DP on the trailing-run length.
    """
    if not (0.0 <= p_propagate <= 1.0):
        raise ValueError("p_propagate must be in [0, 1]")
    if run <= 0:
        return 1.0
    if run > width:
        return 0.0
    q = 1.0 - p_propagate
    # state r = current trailing run (< run); absorbing once run reached.
    states = [0.0] * run
    states[0] = 1.0
    hit = 0.0
    for _ in range(width):
        nxt = [0.0] * run
        total = sum(states)
        nxt[0] = total * q
        for r in range(run - 1):
            nxt[r + 1] += states[r] * p_propagate
        hit += states[run - 1] * p_propagate
        states = nxt
    return hit
