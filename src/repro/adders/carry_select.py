"""Carry-select adder.

Each block computes its sum twice — once assuming carry-in 0 and once
assuming carry-in 1 — and the true incoming carry selects between them
with a row of multiplexers.  Delay ``O(sqrt n)`` with square-root block
sizing, about twice the ripple area.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..circuit import Circuit
from .base import adder_ports

__all__ = ["build_carry_select_adder"]


def _ripple_block(circuit: Circuit, a: List[int], b: List[int],
                  carry: int, pos0: int) -> Tuple[List[int], int]:
    sums = []
    for i, (ai, bi) in enumerate(zip(a, b)):
        pos = float(pos0 + i)
        p_i = circuit.add_gate("XOR", ai, bi, pos=pos)
        sums.append(circuit.add_gate("XOR", p_i, carry, pos=pos))
        carry = circuit.add_gate("MAJ3", ai, bi, carry, pos=pos)
    return sums, carry


def build_carry_select_adder(width: int, cin: bool = False,
                             block: int = 0) -> Circuit:
    """Generate a *width*-bit carry-select adder.

    Args:
        width: Operand bitwidth.
        cin: Include a carry-in port.
        block: Fixed block size; 0 picks ``round(sqrt(width))``.
    """
    if block <= 0:
        block = max(2, int(round(math.sqrt(width))))
    circuit, a, b, cin_net = adder_ports(
        f"carry_select{width}_b{block}", width, cin)
    carry = cin_net if cin_net is not None else circuit.const(0)

    sums: List[int] = []
    first = True
    for lo in range(0, width, block):
        hi = min(lo + block, width)
        blk_a, blk_b = a[lo:hi], b[lo:hi]
        if first:
            # The first block sees the true carry immediately.
            s, carry = _ripple_block(circuit, blk_a, blk_b, carry, lo)
            sums.extend(s)
            first = False
            continue
        s0, c0 = _ripple_block(circuit, blk_a, blk_b, circuit.const(0), lo)
        s1, c1 = _ripple_block(circuit, blk_a, blk_b, circuit.const(1), lo)
        for i, (x0, x1) in enumerate(zip(s0, s1)):
            sums.append(circuit.add_gate("MUX2", carry, x1, x0,
                                         pos=float(lo + i)))
        carry = circuit.add_gate("MUX2", carry, c1, c0, pos=float(hi - 1))

    circuit.set_output("sum", sums)
    circuit.set_output("cout", carry)
    return circuit
