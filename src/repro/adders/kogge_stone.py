"""Kogge-Stone prefix adder.

Minimum depth ``ceil(log2 n)`` with fanout bounded by 2, at the cost of
``O(n log n)`` nodes and long wires at the upper levels (charged by the
wire-span term of the timing model) — cf. paper reference [7].
"""

from __future__ import annotations

from ..circuit import Circuit
from .prefix import PrefixSchedule, build_prefix_adder

__all__ = ["kogge_stone_schedule", "build_kogge_stone_adder"]


def kogge_stone_schedule(width: int) -> PrefixSchedule:
    """Combine schedule of the Kogge-Stone topology for *width* bits."""
    schedule: PrefixSchedule = []
    step = 1
    while step < width:
        schedule.append([(i, i - step) for i in range(step, width)])
        step *= 2
    return schedule


def build_kogge_stone_adder(width: int, cin: bool = False) -> Circuit:
    """Generate a *width*-bit Kogge-Stone prefix adder."""
    return build_prefix_adder(width, kogge_stone_schedule,
                              f"kogge_stone{width}", cin=cin)
