"""Multi-level block carry-lookahead adder (CLA).

Classic 4-bit lookahead groups applied recursively: each group produces a
group generate/propagate pair, and the group carries are expanded with
flat AND-OR lookahead logic.  This is the structure the paper's authors
implemented by hand to sanity-check the DesignWare baseline, and the same
lookahead unit is reused (over block signals) by the error-recovery
circuit in :mod:`repro.core.error_recovery`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import (
    Circuit,
    and_tree,
    or_tree,
    pg_preprocess,
    sum_postprocess,
)
from .base import adder_ports

__all__ = ["build_cla_adder", "lookahead_carries"]


#: Flat lookahead uses 4-input AND/OR cells, matching the classic 74182-style
#: carry-lookahead unit realisation.
_LOOKAHEAD_ARITY = 4


def _flat_carry(circuit: Circuit, g: Sequence[int], p: Sequence[int],
                cin: Optional[int], upto: int,
                pos: Optional[float] = None) -> int:
    """Carry out of bits ``[0..upto]`` with flat AND-OR lookahead.

    ``c = g_u | p_u g_{u-1} | ... | p_u..p_1 g_0 | p_u..p_0 cin``
    """
    terms: List[int] = [g[upto]]
    for j in range(upto - 1, -1, -1):
        chain = and_tree(circuit, list(p[j + 1:upto + 1]) + [g[j]],
                         max_arity=_LOOKAHEAD_ARITY, pos=pos)
        terms.append(chain)
    if cin is not None:
        chain = and_tree(circuit, list(p[0:upto + 1]) + [cin],
                         max_arity=_LOOKAHEAD_ARITY, pos=pos)
        terms.append(chain)
    return or_tree(circuit, terms, max_arity=_LOOKAHEAD_ARITY, pos=pos)


def lookahead_carries(circuit: Circuit, g: Sequence[int], p: Sequence[int],
                      cin: Optional[int], group: int = 4,
                      base_pos: float = 0.0, pos_step: float = 1.0
                      ) -> Tuple[List[int], int]:
    """Compute the carries into every position plus the overall carry out.

    Recursively groups *group* signals at a time: each group exposes a
    group (G, P), the recursion supplies the carry into each group, and
    flat lookahead expands the within-group carries.

    Args:
        circuit: Target circuit.
        g: Per-position generate signals (LSB first).
        p: Per-position propagate signals.
        cin: Carry into position 0 (net id) or None for constant 0.
        group: Lookahead group size.
        base_pos: Bit-column offset of position 0 (for wire accounting).
        pos_step: Bit columns per position (e.g. the block width when the
            g/p inputs are block signals, so wire spans stay physical).

    Returns:
        ``(carries, cout)`` where ``carries[i]`` is the carry *into*
        position ``i`` (``carries[0]`` is *cin* or constant 0).
    """
    n = len(g)
    zero = circuit.const(0)
    c0 = cin if cin is not None else zero

    def col(i: float) -> float:
        return base_pos + i * pos_step

    if n <= group:
        carries = [c0]
        for i in range(1, n):
            carries.append(_flat_carry(circuit, g, p, cin, i - 1,
                                       pos=col(i)))
        cout = _flat_carry(circuit, g, p, cin, n - 1, pos=col(n))
        return carries, cout

    # Group-level (G, P) signals.
    num_groups = (n + group - 1) // group
    grp_g: List[int] = []
    grp_p: List[int] = []
    bounds: List[Tuple[int, int]] = []
    for k in range(num_groups):
        lo, hi = k * group, min((k + 1) * group, n)
        bounds.append((lo, hi))
        pos = col(hi - 1)
        grp_p.append(and_tree(circuit, p[lo:hi],
                              max_arity=_LOOKAHEAD_ARITY, pos=pos))
        grp_g.append(_flat_carry(circuit, g[lo:hi], p[lo:hi], None,
                                 hi - lo - 1, pos=pos))

    group_carries, cout = lookahead_carries(
        circuit, grp_g, grp_p, cin, group=group, base_pos=base_pos,
        pos_step=pos_step * group)

    carries: List[int] = []
    for k, (lo, hi) in enumerate(bounds):
        c_in_grp = group_carries[k] if k > 0 or cin is not None else None
        carries.append(group_carries[k])
        for i in range(lo + 1, hi):
            carries.append(_flat_carry(circuit, g[lo:hi], p[lo:hi],
                                       c_in_grp, i - lo - 1,
                                       pos=col(i)))
    return carries, cout


def build_cla_adder(width: int, cin: bool = False, group: int = 4) -> Circuit:
    """Generate a *width*-bit multi-level carry-lookahead adder.

    Args:
        width: Operand bitwidth.
        cin: Include a carry-in port.
        group: Lookahead group size (typically 4).
    """
    circuit, a, b, cin_net = adder_ports(f"cla{width}_g{group}", width, cin)
    g, p = pg_preprocess(circuit, a, b)
    carries, cout = lookahead_carries(circuit, g, p, cin_net, group=group)
    sums = sum_postprocess(circuit, p, carries)
    circuit.set_output("sum", sums)
    circuit.set_output("cout", cout)
    return circuit
