"""Ripple-carry adder — the minimum-area, linear-delay baseline.

One full adder per bit: ``s_i = a_i ^ b_i ^ c_i`` and
``c_{i+1} = MAJ3(a_i, b_i, c_i)``.  The paper uses this as the area lower
bound that the ACA is compared against ("slightly larger than a ripple
carry adder").
"""

from __future__ import annotations

from ..circuit import Circuit
from .base import adder_ports

__all__ = ["build_ripple_adder"]


def build_ripple_adder(width: int, cin: bool = False) -> Circuit:
    """Generate a *width*-bit ripple-carry adder.

    Args:
        width: Operand bitwidth.
        cin: Include a carry-in port.

    Returns:
        Circuit with buses ``a``, ``b`` (and ``cin``), outputs ``sum`` and
        ``cout``.
    """
    circuit, a, b, cin_net = adder_ports(f"ripple{width}", width, cin)
    carry = cin_net if cin_net is not None else circuit.const(0)
    sums = []
    for i in range(width):
        pos = float(i)
        axb = circuit.add_gate("XOR", a[i], b[i], pos=pos)
        sums.append(circuit.add_gate("XOR", axb, carry, pos=pos))
        carry = circuit.add_gate("MAJ3", a[i], b[i], carry, pos=pos)
    circuit.set_output("sum", sums)
    circuit.set_output("cout", carry)
    return circuit
