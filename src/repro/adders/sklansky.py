"""Sklansky (divide-and-conquer / conditional-sum prefix) adder.

Minimum logic depth ``ceil(log2 n)`` with the minimum node count among
minimum-depth prefix networks, at the cost of fanout growing up to ``n/2``
on the block-boundary nodes — which the load-aware timing model charges
for (cf. paper reference [13], Sklansky 1960).
"""

from __future__ import annotations

from ..circuit import Circuit
from .prefix import PrefixSchedule, build_prefix_adder

__all__ = ["sklansky_schedule", "build_sklansky_adder"]


def sklansky_schedule(width: int) -> PrefixSchedule:
    """Combine schedule of the Sklansky topology for *width* bits."""
    schedule: PrefixSchedule = []
    block = 1
    while block < width:
        level = []
        for i in range(width):
            if (i // block) % 2 == 1:
                j = (i // (2 * block)) * (2 * block) + block - 1
                level.append((i, j))
        schedule.append(level)
        block *= 2
    return schedule


def build_sklansky_adder(width: int, cin: bool = False) -> Circuit:
    """Generate a *width*-bit Sklansky prefix adder."""
    return build_prefix_adder(width, sklansky_schedule,
                              f"sklansky{width}", cin=cin)
