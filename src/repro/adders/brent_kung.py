"""Brent-Kung prefix adder.

The sparsest classical prefix network: ``2n - log2 n - 2`` nodes, fanout 2,
short wires, but depth ``2 log2 n - 1`` — cf. paper reference [1]
(Brent & Kung 1982).
"""

from __future__ import annotations

from ..circuit import Circuit
from .prefix import PrefixSchedule, build_prefix_adder

__all__ = ["brent_kung_schedule", "build_brent_kung_adder"]


def brent_kung_schedule(width: int) -> PrefixSchedule:
    """Combine schedule of the Brent-Kung topology for *width* bits."""
    schedule: PrefixSchedule = []
    # Up-sweep: build power-of-two aligned blocks.
    step = 1
    while step < width:
        level = [(i, i - step)
                 for i in range(2 * step - 1, width, 2 * step)]
        if level:
            schedule.append(level)
        step *= 2
    # Down-sweep: fill in the remaining prefixes.
    step //= 2
    while step >= 1:
        level = [(i, i - step)
                 for i in range(3 * step - 1, width, 2 * step)]
        if level:
            schedule.append(level)
        step //= 2
    return schedule


def build_brent_kung_adder(width: int, cin: bool = False) -> Circuit:
    """Generate a *width*-bit Brent-Kung prefix adder."""
    return build_prefix_adder(width, brent_kung_schedule,
                              f"brent_kung{width}", cin=cin)
