"""Common interface shared by every adder generator.

All generators in :mod:`repro.adders` (and the speculative adders in
:mod:`repro.core`) produce a :class:`~repro.circuit.netlist.Circuit` with:

* input buses ``a`` and ``b`` of *n* bits (LSB first),
* an optional single-bit ``cin`` input,
* output bus ``sum`` of *n* bits and single-bit output ``cout``.

:func:`reference_add` provides the golden model used by the equivalence
checkers, and :func:`adder_ports` builds the standard port interface.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..circuit import Circuit, CircuitError

__all__ = ["adder_ports", "reference_add", "reference_fn"]


def adder_ports(name: str, width: int, cin: bool
                ) -> Tuple[Circuit, List[int], List[int], Optional[int]]:
    """Create a circuit with the standard adder interface.

    Args:
        name: Circuit name.
        width: Operand bitwidth (must be positive).
        cin: Whether to create a carry-in port.

    Returns:
        ``(circuit, a_bits, b_bits, cin_net_or_None)``.
    """
    if width <= 0:
        raise CircuitError("adder width must be positive")
    circuit = Circuit(name)
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    cin_net = circuit.add_input("cin", pos=0.0) if cin else None
    return circuit, a, b, cin_net


def reference_add(width: int, a: int, b: int, cin: int = 0) -> Dict[str, int]:
    """Golden model: exact *width*-bit addition with carry out."""
    total = (a & ((1 << width) - 1)) + (b & ((1 << width) - 1)) + (cin & 1)
    return {"sum": total & ((1 << width) - 1), "cout": total >> width}


def reference_fn(width: int, cin: bool) -> Callable[..., Dict[str, int]]:
    """Reference callable matching an adder circuit's input buses.

    Suitable for :func:`repro.circuit.validate.assert_equivalent_random`.
    """
    if cin:
        return lambda a, b, cin: reference_add(width, a, b, cin)
    return lambda a, b: reference_add(width, a, b, 0)
