"""Generic parallel-prefix adder framework.

A prefix adder computes, for every bit ``i``, the group generate/propagate
``(G, P)`` of the range ``[0..i]`` using the associative carry operator

    (g, p) o (g', p') = (g | (p & g'), p & p')

A *topology* is a schedule of combine operations: a list of levels, each a
list of ``(i, j)`` pairs meaning "combine position ``i``'s current range
with position ``j``'s current range".  The framework tracks the range
covered at every position and validates each combine (ranges must be
adjacent or overlapping — the operator is idempotent across overlaps, the
property Kogge-Stone-style topologies rely on), then stitches the carries
into the standard pre/post-processing stages.

Concrete topologies live in :mod:`repro.adders.sklansky`,
:mod:`~repro.adders.kogge_stone`, :mod:`~repro.adders.brent_kung`,
:mod:`~repro.adders.han_carlson`, :mod:`~repro.adders.ladner_fischer` and
:mod:`~repro.adders.knowles`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..circuit import (
    Circuit,
    CircuitError,
    carry_combine,
    pg_preprocess,
    sum_postprocess,
)
from .base import adder_ports

__all__ = [
    "PrefixSchedule",
    "validate_schedule",
    "schedule_depth",
    "schedule_size",
    "build_prefix_adder",
]

#: Levels of (i, j) combine pairs; see module docstring.
PrefixSchedule = List[List[Tuple[int, int]]]


def validate_schedule(width: int, schedule: PrefixSchedule) -> None:
    """Check that *schedule* computes all prefixes ``[0..i]`` for *width* bits.

    Raises:
        CircuitError: If a combine uses non-adjacent/non-overlapping ranges,
            combines out-of-range positions, or the final ranges are not all
            anchored at bit 0.
    """
    lo = list(range(width))  # position i currently covers [lo[i] .. i]
    for level_idx, level in enumerate(schedule):
        new_lo = list(lo)
        for i, j in level:
            if not (0 <= j < i < width):
                raise CircuitError(
                    f"level {level_idx}: combine ({i},{j}) out of range")
            if lo[i] - 1 > j:
                raise CircuitError(
                    f"level {level_idx}: ranges [{lo[i]}..{i}] and "
                    f"[{lo[j]}..{j}] are disjoint")
            if lo[j] > lo[i]:
                raise CircuitError(
                    f"level {level_idx}: combine ({i},{j}) does not extend "
                    f"range [{lo[i]}..{i}] (source covers [{lo[j]}..{j}])")
            new_lo[i] = lo[j]
        lo = new_lo
    bad = [i for i in range(width) if lo[i] != 0]
    if bad:
        raise CircuitError(f"prefixes not complete at positions {bad}")


def schedule_depth(schedule: PrefixSchedule) -> int:
    """Number of combine levels (ignoring empty levels)."""
    return sum(1 for level in schedule if level)


def schedule_size(schedule: PrefixSchedule) -> int:
    """Total number of combine nodes in the schedule."""
    return sum(len(level) for level in schedule)


def build_prefix_adder(width: int,
                       topology: Callable[[int], PrefixSchedule],
                       name: str,
                       cin: bool = False,
                       validate: bool = True) -> Circuit:
    """Generate a prefix adder from a topology function.

    Args:
        width: Operand bitwidth.
        topology: Maps a width to a :data:`PrefixSchedule`.
        name: Circuit name.
        cin: Include a carry-in port (folded in with one extra combine row).
        validate: Check schedule validity before building.

    Returns:
        Adder circuit with the standard interface (see
        :mod:`repro.adders.base`).
    """
    schedule = topology(width)
    if validate:
        validate_schedule(width, schedule)

    circuit, a, b, cin_net = adder_ports(name, width, cin)
    g, p = pg_preprocess(circuit, a, b)

    cur_g = list(g)
    cur_p = list(p)
    for level in schedule:
        # Read sources from the previous level snapshot so combines within a
        # level are truly parallel.
        src_g = list(cur_g)
        src_p = list(cur_p)
        for i, j in level:
            cur_g[i], cur_p[i] = carry_combine(
                circuit, src_g[i], src_p[i], src_g[j], src_p[j], pos=float(i))

    if cin_net is not None:
        # c_{i+1} = G[0..i] | (P[0..i] & cin)
        prefix_c = [circuit.add_gate("AO21", cur_p[i], cin_net, cur_g[i],
                                     pos=float(i)) for i in range(width)]
        c0 = cin_net
    else:
        prefix_c = cur_g
        c0 = circuit.const(0)

    carries_in = [c0] + [prefix_c[i] for i in range(width - 1)]
    sums = sum_postprocess(circuit, p, carries_in)
    circuit.set_output("sum", sums)
    circuit.set_output("cout", prefix_c[width - 1])
    return circuit
