"""A Knowles-family prefix adder.

Knowles (2001, paper reference [6]) described the family of minimum-depth
prefix networks between Kogge-Stone (fanout 2 everywhere, maximum wiring)
and Sklansky (minimum wiring, fanout up to n/2).  This module implements
the member that shares final-level sources among groups of ``share``
consecutive bits: ``share = 1`` is exactly Kogge-Stone, larger values
trade final-level wiring for fanout, moving toward Sklansky.
"""

from __future__ import annotations

from ..circuit import Circuit, CircuitError
from .prefix import PrefixSchedule, build_prefix_adder

__all__ = ["knowles_schedule", "build_knowles_adder"]


def knowles_schedule(width: int, share: int = 2) -> PrefixSchedule:
    """Combine schedule: Kogge-Stone levels with a shared final level.

    Args:
        width: Number of bits.
        share: Power-of-two group size sharing one final-level source.
    """
    if share <= 0 or share & (share - 1):
        raise CircuitError("share must be a power of two")
    schedule: PrefixSchedule = []
    step = 1
    while step * 2 < width:
        schedule.append([(i, i - step) for i in range(step, width)])
        step *= 2
    if step < width:
        # Final level: groups of `share` positions use a common source.
        level = []
        for i in range(step, width):
            j = min(step - 1, (i | (share - 1)) - step)
            level.append((i, j))
        schedule.append(level)
    return schedule


def build_knowles_adder(width: int, cin: bool = False,
                        share: int = 2) -> Circuit:
    """Generate a *width*-bit Knowles-family adder."""
    return build_prefix_adder(
        width, lambda w: knowles_schedule(w, share),
        f"knowles{width}_f{share}", cin=cin)
