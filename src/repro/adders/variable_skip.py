"""Variable-block carry-skip adder.

The classical refinement of the fixed-block skip adder: block sizes ramp
up toward the middle of the operand and back down, balancing the
ripple-into-block and skip-chain path lengths.  With the trapezoidal
profile the worst path crosses O(sqrt n) stages like the fixed version
but with a ~sqrt(2)x smaller constant.

(Kept as a distinct module from :mod:`repro.adders.carry_skip` because
the block-size schedule, not the cell structure, is the contribution.)
"""

from __future__ import annotations

import math
from typing import List

from ..circuit import Circuit, and_tree
from .base import adder_ports

__all__ = ["variable_skip_blocks", "build_variable_skip_adder"]


def variable_skip_blocks(width: int) -> List[int]:
    """Trapezoidal block-size schedule covering *width* bits.

    Sizes ramp 1, 2, 3, ... up to a peak and back down; the tail is
    adjusted so the sizes sum exactly to *width*.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    # Peak size m such that 2 * (1 + 2 + ... + m) ~ width.
    m = max(1, int(math.sqrt(width)))
    up = list(range(1, m + 1))
    down = list(range(m, 0, -1))
    sizes = up + down
    total = sum(sizes)
    while total < width:
        sizes.insert(len(up), m)  # widen the plateau
        total += m
    # Trim overshoot from the end.
    excess = total - width
    trimmed: List[int] = []
    for size in reversed(sizes):
        if excess >= size:
            excess -= size
            continue
        trimmed.append(size - excess)
        excess = 0
    trimmed.reverse()
    sizes = [s for s in trimmed if s > 0]
    assert sum(sizes) == width
    return sizes


def build_variable_skip_adder(width: int, cin: bool = False) -> Circuit:
    """Generate a variable-block carry-skip adder."""
    circuit, a, b, cin_net = adder_ports(f"var_skip{width}", width, cin)
    carry = cin_net if cin_net is not None else circuit.const(0)

    sums: List[int] = []
    lo = 0
    for block in variable_skip_blocks(width):
        hi = min(lo + block, width)
        block_cin = carry
        props: List[int] = []
        for i in range(lo, hi):
            pos = float(i)
            p_i = circuit.add_gate("XOR", a[i], b[i], pos=pos)
            props.append(p_i)
            sums.append(circuit.add_gate("XOR", p_i, carry, pos=pos))
            carry = circuit.add_gate("MAJ3", a[i], b[i], carry, pos=pos)
        p_blk = and_tree(circuit, props, pos=float(hi - 1))
        carry = circuit.add_gate("MUX2", p_blk, block_cin, carry,
                                 pos=float(hi - 1))
        lo = hi

    circuit.set_output("sum", sums)
    circuit.set_output("cout", carry)
    return circuit
