"""Ladner-Fischer prefix adder.

Implemented as the classical construction: a Sklansky core over every
second ("spine") position, with one pre-level forming bit pairs and one
post-level filling in even positions.  Compared to plain Sklansky this
halves the number of high-fanout nodes for one extra logic level.
"""

from __future__ import annotations

from ..circuit import Circuit, CircuitError
from .prefix import PrefixSchedule, build_prefix_adder
from .sklansky import sklansky_schedule

__all__ = ["ladner_fischer_schedule", "build_ladner_fischer_adder"]


def ladner_fischer_schedule(width: int, sparsity: int = 2) -> PrefixSchedule:
    """Combine schedule of the Ladner-Fischer topology.

    Args:
        width: Number of bits.
        sparsity: Power-of-two spine spacing (1 = plain Sklansky).
    """
    if sparsity <= 0 or sparsity & (sparsity - 1):
        raise CircuitError("sparsity must be a power of two")
    schedule: PrefixSchedule = []

    # Up-sweep to form sparsity-wide blocks at spine positions.
    step = 1
    while step < sparsity:
        level = [(i, i - step) for i in range(2 * step - 1, width, 2 * step)]
        if level:
            schedule.append(level)
        step *= 2

    # Sklansky core over the spine positions s-1, 2s-1, 3s-1, ...
    spine = list(range(sparsity - 1, width, sparsity))
    core = sklansky_schedule(len(spine))
    for level in core:
        mapped = [(spine[i], spine[j]) for i, j in level]
        if mapped:
            schedule.append(mapped)

    # Down-sweep to fill non-spine prefixes.
    step = sparsity // 2
    while step >= 1:
        level = [(i, i - step) for i in range(3 * step - 1, width, 2 * step)]
        if level:
            schedule.append(level)
        step //= 2
    return schedule


def build_ladner_fischer_adder(width: int, cin: bool = False,
                               sparsity: int = 2) -> Circuit:
    """Generate a *width*-bit Ladner-Fischer adder."""
    return build_prefix_adder(
        width, lambda w: ladner_fischer_schedule(w, sparsity),
        f"ladner_fischer{width}_s{sparsity}", cin=cin)
