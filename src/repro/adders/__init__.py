"""Baseline adder generators (the paper's "state of the art", Section 2).

Every generator returns a :class:`repro.circuit.Circuit` with the standard
interface: input buses ``a``/``b`` (LSB first), optional ``cin``, outputs
``sum`` and ``cout``.  See :mod:`repro.adders.factory` for name-based
construction and :mod:`repro.adders.designware` for the best-of-library
"traditional adder" proxy the paper compares against.
"""

from .base import adder_ports, reference_add, reference_fn
from .ripple import build_ripple_adder
from .cla import build_cla_adder, lookahead_carries
from .carry_skip import build_carry_skip_adder
from .variable_skip import build_variable_skip_adder, variable_skip_blocks
from .carry_select import build_carry_select_adder
from .conditional_sum import build_conditional_sum_adder
from .prefix import (
    PrefixSchedule,
    build_prefix_adder,
    schedule_depth,
    schedule_size,
    validate_schedule,
)
from .sklansky import build_sklansky_adder, sklansky_schedule
from .kogge_stone import build_kogge_stone_adder, kogge_stone_schedule
from .brent_kung import build_brent_kung_adder, brent_kung_schedule
from .han_carlson import build_han_carlson_adder, han_carlson_schedule
from .ladner_fischer import build_ladner_fischer_adder, ladner_fischer_schedule
from .knowles import build_knowles_adder, knowles_schedule
from .designware import (
    CandidateResult,
    FAST_CANDIDATES,
    build_best_traditional,
    evaluate_candidates,
)
from .factory import ADDER_BUILDERS, adder_names, build_adder

__all__ = [
    "adder_ports", "reference_add", "reference_fn",
    "build_ripple_adder",
    "build_cla_adder", "lookahead_carries",
    "build_carry_skip_adder",
    "build_variable_skip_adder", "variable_skip_blocks",
    "build_carry_select_adder",
    "build_conditional_sum_adder",
    "PrefixSchedule", "build_prefix_adder", "validate_schedule",
    "schedule_depth", "schedule_size",
    "build_sklansky_adder", "sklansky_schedule",
    "build_kogge_stone_adder", "kogge_stone_schedule",
    "build_brent_kung_adder", "brent_kung_schedule",
    "build_han_carlson_adder", "han_carlson_schedule",
    "build_ladner_fischer_adder", "ladner_fischer_schedule",
    "build_knowles_adder", "knowles_schedule",
    "CandidateResult", "FAST_CANDIDATES", "build_best_traditional",
    "evaluate_candidates",
    "ADDER_BUILDERS", "adder_names", "build_adder",
]
