"""Carry-skip (carry-bypass) adder.

Ripple blocks with a bypass multiplexer: if every bit of a block
propagates, the incoming carry skips the block's ripple chain.  Linear
area, delay roughly ``O(sqrt n)`` with the default block sizing.
"""

from __future__ import annotations

import math
from typing import List

from ..circuit import Circuit, and_tree
from .base import adder_ports

__all__ = ["build_carry_skip_adder"]


def build_carry_skip_adder(width: int, cin: bool = False,
                           block: int = 0) -> Circuit:
    """Generate a *width*-bit carry-skip adder.

    Args:
        width: Operand bitwidth.
        cin: Include a carry-in port.
        block: Fixed block size; 0 picks ``round(sqrt(width))`` (the
            classical near-optimal fixed size).
    """
    if block <= 0:
        block = max(2, int(round(math.sqrt(width))))
    circuit, a, b, cin_net = adder_ports(
        f"carry_skip{width}_b{block}", width, cin)
    carry = cin_net if cin_net is not None else circuit.const(0)

    sums: List[int] = [0] * width
    for lo in range(0, width, block):
        hi = min(lo + block, width)
        block_cin = carry
        props: List[int] = []
        for i in range(lo, hi):
            pos = float(i)
            p_i = circuit.add_gate("XOR", a[i], b[i], pos=pos)
            props.append(p_i)
            sums[i] = circuit.add_gate("XOR", p_i, carry, pos=pos)
            carry = circuit.add_gate("MAJ3", a[i], b[i], carry, pos=pos)
        # Bypass: if the whole block propagates, forward the block carry-in.
        p_blk = and_tree(circuit, props, pos=float(hi - 1))
        carry = circuit.add_gate("MUX2", p_blk, block_cin, carry,
                                 pos=float(hi - 1))

    circuit.set_output("sum", sums)
    circuit.set_output("cout", carry)
    return circuit
