"""Conditional-sum adder (Sklansky 1960).

Recursive doubling of the carry-select idea: every block of width
``2^k`` keeps *both* conditional results (sum and carry for carry-in 0
and 1), and each merge level resolves the upper half with a row of
multiplexers driven by the lower half's conditional carries.  Depth is
``O(log n)`` in multiplexers.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuit import Circuit
from .base import adder_ports

__all__ = ["build_conditional_sum_adder"]

_Block = Tuple[List[int], int, List[int], int]  # (sum0, cout0, sum1, cout1)


def build_conditional_sum_adder(width: int, cin: bool = False) -> Circuit:
    """Generate a *width*-bit conditional-sum adder."""
    circuit, a, b, cin_net = adder_ports(f"cond_sum{width}", width, cin)

    # Leaves: 1-bit conditional adders.
    blocks: List[_Block] = []
    for i in range(width):
        pos = float(i)
        p_i = circuit.add_gate("XOR", a[i], b[i], pos=pos)
        g_i = circuit.add_gate("AND", a[i], b[i], pos=pos)
        s0, c0 = p_i, g_i
        s1 = circuit.add_gate("XNOR", a[i], b[i], pos=pos)
        c1 = circuit.add_gate("OR", a[i], b[i], pos=pos)
        blocks.append(([s0], c0, [s1], c1))

    # Merge pairs of blocks until one remains.
    while len(blocks) > 1:
        merged: List[_Block] = []
        for k in range(0, len(blocks) - 1, 2):
            lo_blk, hi_blk = blocks[k], blocks[k + 1]
            merged.append(_merge(circuit, lo_blk, hi_blk))
        if len(blocks) % 2:
            merged.append(blocks[-1])
        blocks = merged

    sum0, cout0, sum1, cout1 = blocks[0]
    if cin_net is None:
        circuit.set_output("sum", sum0)
        circuit.set_output("cout", cout0)
    else:
        sums = [circuit.add_gate("MUX2", cin_net, s1, s0, pos=float(i))
                for i, (s0, s1) in enumerate(zip(sum0, sum1))]
        circuit.set_output("sum", sums)
        circuit.set_output("cout",
                           circuit.add_gate("MUX2", cin_net, cout1, cout0))
    return circuit


def _merge(circuit: Circuit, lo_blk: _Block, hi_blk: _Block) -> _Block:
    """Merge two adjacent conditional blocks (lo holds the lower bits)."""
    lo_s0, lo_c0, lo_s1, lo_c1 = lo_blk
    hi_s0, hi_c0, hi_s1, hi_c1 = hi_blk
    pos = float(len(lo_s0) + len(hi_s0))

    # Case carry-in 0: lower half uses its 0-variant; its carry lo_c0
    # selects the upper half's variant.
    s0 = list(lo_s0) + [circuit.add_gate("MUX2", lo_c0, x1, x0, pos=pos)
                        for x0, x1 in zip(hi_s0, hi_s1)]
    c0 = circuit.add_gate("MUX2", lo_c0, hi_c1, hi_c0, pos=pos)
    # Case carry-in 1.
    s1 = list(lo_s1) + [circuit.add_gate("MUX2", lo_c1, x1, x0, pos=pos)
                        for x0, x1 in zip(hi_s0, hi_s1)]
    c1 = circuit.add_gate("MUX2", lo_c1, hi_c1, hi_c0, pos=pos)
    return s0, c0, s1, c1
