"""Han-Carlson prefix adders (sparsity-parameterised).

A Han-Carlson network of sparsity ``s`` (a power of two) computes the
prefix only at every ``s``-th "spine" position with a Kogge-Stone core,
bracketed by Brent-Kung-style up/down sweeps of depth ``log2 s`` each.
Sparsity 1 degenerates to pure Kogge-Stone; sparsity 2 is the classical
Han-Carlson adder.  Higher sparsity trades one extra level of depth per
factor of two for roughly half the wiring.
"""

from __future__ import annotations

from ..circuit import Circuit, CircuitError
from .prefix import PrefixSchedule, build_prefix_adder

__all__ = ["han_carlson_schedule", "build_han_carlson_adder"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def han_carlson_schedule(width: int, sparsity: int = 2) -> PrefixSchedule:
    """Combine schedule of the Han-Carlson topology.

    Args:
        width: Number of bits.
        sparsity: Power-of-two spine spacing (1 = Kogge-Stone).
    """
    if not _is_pow2(sparsity):
        raise CircuitError("sparsity must be a power of two")
    schedule: PrefixSchedule = []

    # Up-sweep: build s-bit blocks at spine positions (Brent-Kung style).
    step = 1
    while step < sparsity:
        level = [(i, i - step) for i in range(2 * step - 1, width, 2 * step)]
        if level:
            schedule.append(level)
        step *= 2

    # Kogge-Stone core over spine positions i = s-1, 2s-1, ...
    stride = sparsity
    while stride < width:
        level = [(i, i - stride)
                 for i in range(sparsity - 1 + stride, width, sparsity)]
        if level:
            schedule.append(level)
        stride *= 2

    # Down-sweep: fill in non-spine prefixes (mirror of the up-sweep).
    step = sparsity // 2
    while step >= 1:
        level = [(i, i - step) for i in range(3 * step - 1, width, 2 * step)]
        if level:
            schedule.append(level)
        step //= 2
    return schedule


def build_han_carlson_adder(width: int, cin: bool = False,
                            sparsity: int = 2) -> Circuit:
    """Generate a *width*-bit Han-Carlson adder of the given sparsity."""
    return build_prefix_adder(
        width, lambda w: han_carlson_schedule(w, sparsity),
        f"han_carlson{width}_s{sparsity}", cin=cin)
