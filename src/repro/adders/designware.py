"""DesignWare-proxy baseline: best-of-library "traditional adder".

The paper compares the ACA/VLSA against the Synopsys DesignWare adder,
which internally selects a near-optimal architecture for the target
constraints.  As an open proxy we evaluate every fast architecture in
:mod:`repro.adders` under the chosen technology library and return the one
with minimum critical-path delay (ties broken by area) — the same
"let the tool pick" semantics.

Results are memoised per ``(width, cin, library)`` because the Fig. 8
sweep re-queries the baseline many times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..circuit import Circuit, TechLibrary, UNIT, analyze_area, analyze_timing
from .brent_kung import build_brent_kung_adder
from .carry_select import build_carry_select_adder
from .cla import build_cla_adder
from .conditional_sum import build_conditional_sum_adder
from .han_carlson import build_han_carlson_adder
from .knowles import build_knowles_adder
from .kogge_stone import build_kogge_stone_adder
from .ladner_fischer import build_ladner_fischer_adder
from .sklansky import build_sklansky_adder

__all__ = ["CandidateResult", "evaluate_candidates", "build_best_traditional",
           "FAST_CANDIDATES"]

#: Architectures DesignWare-style selection considers "fast" candidates.
FAST_CANDIDATES: Dict[str, Callable[[int, bool], Circuit]] = {
    "sklansky": lambda n, cin: build_sklansky_adder(n, cin),
    "kogge_stone": lambda n, cin: build_kogge_stone_adder(n, cin),
    "brent_kung": lambda n, cin: build_brent_kung_adder(n, cin),
    "han_carlson": lambda n, cin: build_han_carlson_adder(n, cin),
    "han_carlson4": lambda n, cin: build_han_carlson_adder(n, cin, sparsity=4),
    "ladner_fischer": lambda n, cin: build_ladner_fischer_adder(n, cin),
    "knowles2": lambda n, cin: build_knowles_adder(n, cin, share=2),
    "knowles4": lambda n, cin: build_knowles_adder(n, cin, share=4),
    "cla": lambda n, cin: build_cla_adder(n, cin),
    "conditional_sum": lambda n, cin: build_conditional_sum_adder(n, cin),
    "carry_select": lambda n, cin: build_carry_select_adder(n, cin),
}


@dataclass
class CandidateResult:
    """Delay/area of one candidate architecture."""

    name: str
    delay: float
    area: float
    circuit: Circuit


_cache: Dict[Tuple[int, bool, str], List[CandidateResult]] = {}


def evaluate_candidates(width: int, library: TechLibrary = UNIT,
                        cin: bool = False,
                        names: Optional[List[str]] = None
                        ) -> List[CandidateResult]:
    """Build and time every candidate architecture at *width* bits.

    Returns candidates sorted by (delay, area), best first.  Results for
    the full candidate set are memoised per (width, cin, library).
    """
    key = (width, cin, library.name)
    if names is None and key in _cache:
        return _cache[key]
    chosen = names or list(FAST_CANDIDATES)
    results: List[CandidateResult] = []
    for name in chosen:
        circuit = FAST_CANDIDATES[name](width, cin)
        delay = analyze_timing(circuit, library).critical_delay
        area = analyze_area(circuit, library).total
        results.append(CandidateResult(name, delay, area, circuit))
    results.sort(key=lambda r: (r.delay, r.area))
    if names is None:
        _cache[key] = results
    return results


def build_best_traditional(width: int, library: TechLibrary = UNIT,
                           cin: bool = False) -> CandidateResult:
    """The DesignWare proxy: the minimum-delay candidate at *width* bits."""
    return evaluate_candidates(width, library, cin)[0]
