"""Name-based adder factory.

Central registry mapping architecture names to generator callables, used
by the CLI, the benchmark harness, and parameterised tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..circuit import Circuit
from .brent_kung import build_brent_kung_adder
from .carry_select import build_carry_select_adder
from .carry_skip import build_carry_skip_adder
from .cla import build_cla_adder
from .conditional_sum import build_conditional_sum_adder
from .han_carlson import build_han_carlson_adder
from .knowles import build_knowles_adder
from .kogge_stone import build_kogge_stone_adder
from .ladner_fischer import build_ladner_fischer_adder
from .ripple import build_ripple_adder
from .variable_skip import build_variable_skip_adder
from .sklansky import build_sklansky_adder

__all__ = ["ADDER_BUILDERS", "build_adder", "adder_names"]

#: All registered baseline architectures: name -> builder(width, cin).
ADDER_BUILDERS: Dict[str, Callable[[int, bool], Circuit]] = {
    "ripple": lambda n, cin=False: build_ripple_adder(n, cin),
    "cla": lambda n, cin=False: build_cla_adder(n, cin),
    "carry_skip": lambda n, cin=False: build_carry_skip_adder(n, cin),
    "variable_skip": lambda n, cin=False: build_variable_skip_adder(n, cin),
    "carry_select": lambda n, cin=False: build_carry_select_adder(n, cin),
    "conditional_sum": lambda n, cin=False: build_conditional_sum_adder(n, cin),
    "sklansky": lambda n, cin=False: build_sklansky_adder(n, cin),
    "kogge_stone": lambda n, cin=False: build_kogge_stone_adder(n, cin),
    "brent_kung": lambda n, cin=False: build_brent_kung_adder(n, cin),
    "han_carlson": lambda n, cin=False: build_han_carlson_adder(n, cin),
    "han_carlson4": lambda n, cin=False: build_han_carlson_adder(
        n, cin, sparsity=4),
    "ladner_fischer": lambda n, cin=False: build_ladner_fischer_adder(n, cin),
    "knowles2": lambda n, cin=False: build_knowles_adder(n, cin, share=2),
    "knowles4": lambda n, cin=False: build_knowles_adder(n, cin, share=4),
}


def adder_names() -> List[str]:
    """Sorted list of registered architecture names."""
    return sorted(ADDER_BUILDERS)


def build_adder(name: str, width: int, cin: bool = False) -> Circuit:
    """Build the named adder architecture at the requested width."""
    try:
        builder = ADDER_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown adder {name!r}; available: {adder_names()}") from None
    return builder(width, cin)
