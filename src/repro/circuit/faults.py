"""Stuck-at fault injection and fault simulation.

Classic EDA machinery: enumerate single stuck-at-0/1 faults on the nets
of a circuit, simulate the faulty circuit against the good one on a test
set, and report coverage.  Used here to study how manufacturing defects
in the speculative adder interact with its error detector (a defect in
the sum logic is *not* a speculation error, so the VLSA flag must not be
relied on as a fault detector — the fault benchmark quantifies this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .netlist import Circuit, CircuitError
from .simulate import random_stimulus, simulate_words

__all__ = ["StuckAtFault", "enumerate_faults", "simulate_with_fault",
           "fault_coverage", "FaultReport"]


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault on the output of net ``nid``."""

    nid: int
    value: int  # 0 or 1

    def describe(self, circuit: Circuit) -> str:
        net = circuit.nets[self.nid]
        label = net.name or f"{net.op.lower()}#{net.nid}"
        return f"{label} stuck-at-{self.value}"


def enumerate_faults(circuit: Circuit,
                     live_only: bool = True) -> List[StuckAtFault]:
    """All single stuck-at-0/1 faults on (live) nets."""
    live = (circuit.reachable_from_outputs()
            if live_only and circuit.outputs else [True] * len(circuit.nets))
    faults: List[StuckAtFault] = []
    for net in circuit.nets:
        if not live[net.nid] or net.op in ("CONST0", "CONST1"):
            continue
        faults.append(StuckAtFault(net.nid, 0))
        faults.append(StuckAtFault(net.nid, 1))
    return faults


def simulate_with_fault(circuit: Circuit, fault: StuckAtFault,
                        stimulus: Mapping[str, Sequence[int]],
                        num_vectors: int) -> Dict[str, List[int]]:
    """Bit-parallel simulation with one net forced to a constant.

    Runs on the engine's force path: an **unfused** compiled plan (one
    slot per live net, no NOT/BUF aliasing, so every fault site stays
    observable) with the faulty slot re-forced after its producing step.
    A fault on a net that is dead in the plan cannot reach an output, so
    the fault-free response is returned directly.
    """
    if not (0 <= fault.nid < len(circuit.nets)):
        raise CircuitError(f"fault on missing net {fault.nid}")
    from ..engine import compiled_plan, execute

    plan = compiled_plan(circuit, fuse=False)
    if plan.nid_to_slot[fault.nid] < 0:  # dead net: unobservable fault
        return execute(circuit, stimulus, num_vectors=num_vectors,
                       backend="bigint")
    return execute(circuit, stimulus, num_vectors=num_vectors,
                   force={fault.nid: fault.value})


@dataclass
class FaultReport:
    """Outcome of a fault-coverage run."""

    total_faults: int
    detected: int
    undetected: List[StuckAtFault]

    @property
    def coverage(self) -> float:
        """Fraction of faults that changed at least one output bit."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults


def fault_coverage(circuit: Circuit, num_vectors: int = 256,
                   faults: Optional[Iterable[StuckAtFault]] = None,
                   outputs: Optional[Sequence[str]] = None,
                   seed: Optional[int] = 0) -> FaultReport:
    """Random-pattern fault coverage of *circuit*.

    Args:
        circuit: Circuit under test.
        num_vectors: Random test vectors applied (bit-parallel).
        faults: Fault list (default: all single stuck-at faults).
        outputs: Restrict observation to these output buses.
        seed: Stimulus RNG seed.

    Returns:
        A :class:`FaultReport` with the coverage and undetected faults.
    """
    if circuit.is_sequential():
        raise CircuitError(
            "fault_coverage handles combinational circuits only")
    stim = random_stimulus(circuit, num_vectors,
                           rng=np.random.default_rng(seed))
    golden = simulate_words(circuit, stim, num_vectors)
    watch = outputs or list(circuit.outputs)

    fault_list = list(faults) if faults is not None else (
        enumerate_faults(circuit))
    detected = 0
    undetected: List[StuckAtFault] = []
    for fault in fault_list:
        out = simulate_with_fault(circuit, fault, stim, num_vectors)
        if any(out[name][bit] != golden[name][bit]
               for name in watch
               for bit in range(len(golden[name]))):
            detected += 1
        else:
            undetected.append(fault)
    return FaultReport(len(fault_list), detected, undetected)
