"""Cycle-accurate simulation and timing of sequential netlists.

Circuits gain state through :meth:`Circuit.add_dff` /
:meth:`~Circuit.connect_dff`; this module provides what the purely
combinational machinery cannot:

* :class:`SequentialSimulator` — two-phase clocked evaluation (all
  combinational logic settles with register outputs held, then every
  register captures its data input simultaneously), bit-parallel like
  the combinational simulator.
* :func:`min_clock_period` — register-aware static timing: the longest
  input/register-to-register/output combinational path, i.e. the clock
  period the netlist sustains (clk-to-q folded in via the library's DFF
  delay entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .gates import GATE_SPECS, is_input_op
from .netlist import Circuit, CircuitError
from .techlib import TechLibrary, UNIT

__all__ = ["SequentialSimulator", "SequentialTiming", "min_clock_period",
           "sequential_timing"]


class SequentialSimulator:
    """Clocked bit-parallel simulator for circuits with DFFs.

    Args:
        circuit: Sequential (or purely combinational) circuit.
        num_vectors: Number of independent streams packed per word.

    Each :meth:`step` consumes one set of input words, returns the output
    words for the cycle (combinational view after settling), and then
    advances all registers.
    """

    def __init__(self, circuit: Circuit, num_vectors: int = 1):
        if num_vectors <= 0:
            raise CircuitError("num_vectors must be positive")
        for nid in circuit.dffs():
            if not circuit.nets[nid].fanins:
                raise CircuitError(f"DFF {nid} is not connected")
        self.circuit = circuit
        self.num_vectors = num_vectors
        self._mask = (1 << num_vectors) - 1
        self.cycle = 0
        self._state: Dict[int, int] = {
            nid: (self._mask if circuit.dff_init.get(nid, 0) else 0)
            for nid in circuit.dffs()}

    def reset(self) -> None:
        """Return all registers to their init values."""
        self.cycle = 0
        for nid in self._state:
            self._state[nid] = (self._mask
                                if self.circuit.dff_init.get(nid, 0) else 0)

    def peek_state(self, dff: int) -> int:
        """Current value word of one register."""
        return self._state[dff]

    def step(self, stimulus: Mapping[str, Sequence[int]]
             ) -> Dict[str, List[int]]:
        """Advance one clock cycle.

        Args:
            stimulus: Input bus name -> per-bit words (as in
                :func:`repro.circuit.simulate.simulate_words`).

        Returns:
            Output bus name -> per-bit words, sampled before the edge
            (i.e. what downstream logic/registers capture this cycle).
        """
        c = self.circuit
        mask = self._mask
        values: List[Optional[int]] = [None] * len(c.nets)

        for name, bus in c.inputs.items():
            if name not in stimulus:
                raise CircuitError(f"missing stimulus for input {name!r}")
            words = stimulus[name]
            if len(words) != len(bus):
                raise CircuitError(
                    f"input {name!r} expects {len(bus)} bit-words")
            for nid, word in zip(bus, words):
                values[nid] = word & mask

        for net in c.topological_nets():
            if net.op == "INPUT":
                continue
            if net.op == "DFF":
                values[net.nid] = self._state[net.nid]
                continue
            if net.op == "CONST0":
                values[net.nid] = 0
                continue
            if net.op == "CONST1":
                values[net.nid] = mask
                continue
            spec = GATE_SPECS[net.op]
            values[net.nid] = spec.evaluate(
                mask, *[values[f] for f in net.fanins])

        outputs = {name: [values[nid] for nid in bus]
                   for name, bus in c.outputs.items()}

        # Rising edge: all registers capture simultaneously.
        for nid in self._state:
            src = c.nets[nid].fanins[0]
            self._state[nid] = values[src] & mask
        self.cycle += 1
        return outputs

    def run(self, stream: Iterable[Mapping[str, Sequence[int]]]
            ) -> List[Dict[str, List[int]]]:
        """Step once per stimulus item; returns the output per cycle."""
        return [self.step(stim) for stim in stream]


@dataclass
class SequentialTiming:
    """Register-aware timing summary."""

    min_clock_period: float
    worst_path_kind: str   # "reg->reg", "in->reg", "reg->out", "in->out"
    combinational_depth: int

    def max_frequency_ghz(self) -> float:
        if self.min_clock_period <= 0:
            return float("inf")
        return 1.0 / self.min_clock_period


def sequential_timing(circuit: Circuit,
                      library: TechLibrary = UNIT) -> SequentialTiming:
    """Longest combinational path between timing endpoints.

    Launch points are primary inputs (arrival 0) and register outputs
    (arrival = the library's DFF clk-to-q delay); capture points are
    register data inputs and primary outputs.  The worst such path is the
    minimum clock period (setup folded into the DFF delay entry).
    """
    from .timing import analyze_timing

    clk_to_q = library.cell("DFF", 1).delay
    overrides = {nid: clk_to_q for nid in circuit.dffs()}
    report = analyze_timing(circuit, library, input_arrivals=overrides)
    arrivals = report.arrivals

    def is_launch_reg(path_start_arrival: float) -> bool:
        return path_start_arrival >= clk_to_q

    worst = 0.0
    kind = "in->out"
    # Capture at register inputs.
    for nid in circuit.dffs():
        src = circuit.nets[nid].fanins[0]
        t = arrivals[src]
        if t > worst:
            worst = t
            kind = "reg->reg" if t >= clk_to_q else "in->reg"
    # Capture at primary outputs.
    for bus in circuit.outputs.values():
        for nid in bus:
            t = arrivals[nid]
            if t > worst:
                worst = t
                kind = "reg->out" if t >= clk_to_q else "in->out"
    return SequentialTiming(worst, kind, circuit.logic_depth())


def min_clock_period(circuit: Circuit,
                     library: TechLibrary = UNIT) -> float:
    """Convenience wrapper returning only the minimum clock period."""
    return sequential_timing(circuit, library).min_clock_period
