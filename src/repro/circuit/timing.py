"""Static timing analysis over gate-level netlists.

A single topological pass computes the arrival time of every net:

``arrival(net) = max over fanins f of (arrival(f)) + gate_delay``

with ``gate_delay`` supplied by a :class:`~repro.circuit.techlib.TechLibrary`
(intrinsic + fanout load + wire span; see that module for the model).  The
critical path is recovered by walking back through the argmax fanins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .gates import is_input_op
from .netlist import Circuit
from .techlib import TechLibrary, UNIT

__all__ = ["TimingReport", "analyze_timing", "critical_path_delay",
           "output_arrivals"]


@dataclass
class TimingReport:
    """Result of a static timing analysis.

    Attributes:
        circuit_name: Name of the analysed circuit.
        library_name: Name of the delay model used.
        arrivals: Arrival time of every net (indexed by net id).
        critical_delay: Worst arrival over all registered outputs.
        critical_output: ``(bus name, bit index)`` of the worst output.
        critical_path: Net ids from a primary input to the worst output.
    """

    circuit_name: str
    library_name: str
    arrivals: List[float]
    critical_delay: float
    critical_output: Tuple[str, int]
    critical_path: List[int]

    def path_ops(self, circuit: Circuit) -> List[str]:
        """Operation names along the critical path (for reports/tests)."""
        return [circuit.nets[nid].op for nid in self.critical_path]

    def depth(self) -> int:
        """Number of logic gates on the critical path."""
        return len(self.critical_path)


def analyze_timing(circuit: Circuit, library: TechLibrary = UNIT,
                   input_arrivals: Optional[Dict[int, float]] = None
                   ) -> TimingReport:
    """Run STA and return a :class:`TimingReport`.

    Args:
        circuit: Circuit to analyse (must have registered outputs).
        library: Delay model.
        input_arrivals: Optional per-input-net arrival-time overrides
            (net id -> time); defaults to 0 for every source.

    Returns:
        The timing report, including the reconstructed critical path.
    """
    n = len(circuit.nets)
    arrivals = [0.0] * n
    worst_fanin: List[int] = [-1] * n
    fanouts = circuit.fanout_counts()
    overrides = input_arrivals or {}

    for net in circuit.topological_nets():
        if is_input_op(net.op) or net.op == "DFF":
            # Register outputs launch at the clock edge (clk-to-q folded
            # into the optional override); their data fanin is a capture
            # path handled by sequential timing, not this pass.
            arrivals[net.nid] = overrides.get(net.nid, 0.0)
            continue
        best_t = 0.0
        best_f = -1
        span = 0.0
        for f in net.fanins:
            t = arrivals[f]
            if best_f < 0 or t > best_t:
                best_t, best_f = t, f
            fp, np_ = circuit.nets[f].pos, net.pos
            if fp is not None and np_ is not None:
                span = max(span, abs(np_ - fp))
        delay = library.gate_delay(net.op, len(net.fanins), fanouts[net.nid],
                                   span)
        arrivals[net.nid] = best_t + delay
        worst_fanin[net.nid] = best_f

    if not circuit.outputs:
        raise ValueError("circuit has no registered outputs to time")

    critical_delay = -1.0
    critical_output = ("", -1)
    critical_end = -1
    for name, bus in circuit.outputs.items():
        for bit, nid in enumerate(bus):
            if arrivals[nid] > critical_delay:
                critical_delay = arrivals[nid]
                critical_output = (name, bit)
                critical_end = nid

    path: List[int] = []
    nid = critical_end
    while nid >= 0 and not is_input_op(circuit.nets[nid].op):
        path.append(nid)
        nid = worst_fanin[nid]
    path.reverse()

    return TimingReport(
        circuit_name=circuit.name,
        library_name=library.name,
        arrivals=arrivals,
        critical_delay=critical_delay,
        critical_output=critical_output,
        critical_path=path,
    )


def critical_path_delay(circuit: Circuit, library: TechLibrary = UNIT) -> float:
    """Convenience wrapper returning only the worst-case delay."""
    return analyze_timing(circuit, library).critical_delay


def output_arrivals(circuit: Circuit, library: TechLibrary = UNIT
                    ) -> Dict[str, List[float]]:
    """Arrival time of every output bit, keyed by bus name."""
    report = analyze_timing(circuit, library)
    return {
        name: [report.arrivals[nid] for nid in bus]
        for name, bus in circuit.outputs.items()
    }
