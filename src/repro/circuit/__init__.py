"""Gate-level netlist substrate: construction, simulation, timing, area.

This package is the "synthesis + STA" stand-in for the paper's VHDL +
standard-cell flow (see DESIGN.md for the substitution rationale).

Quick tour::

    from repro.circuit import Circuit, simulate_bus_ints, analyze_timing, UMC180

    c = Circuit("half_adder")
    a = c.add_input("a")
    b = c.add_input("b")
    c.set_output("sum", c.add_gate("XOR", a, b))
    c.set_output("carry", c.add_gate("AND", a, b))
    simulate_bus_ints(c, {"a": 1, "b": 1})   # {'sum': 0, 'carry': 1}
    analyze_timing(c, UMC180).critical_delay
"""

from .netlist import Circuit, CircuitError, Net
from .gates import GATE_SPECS, GateSpec, gate_spec, is_input_op, is_state_op
from .builder import (
    and_tree,
    carry_combine,
    carry_combine_g,
    or_tree,
    pg_preprocess,
    reduce_tree,
    sum_postprocess,
    xor_tree,
)
from .simulate import (
    bus_to_int,
    int_to_bus,
    random_stimulus,
    simulate,
    simulate_bus_ints,
    simulate_interpreted,
    simulate_words,
)
from .timing import TimingReport, analyze_timing, critical_path_delay, output_arrivals
from .area import AreaReport, analyze_area, total_area
from .techlib import LIBRARIES, UMC180, UNIT, TechLibrary, get_library
from .validate import (
    assert_equivalent_exhaustive,
    assert_equivalent_random,
    check_structure,
)
from .opt import OptStats, rebuild, sweep_dead_logic
from .faults import (
    FaultReport,
    StuckAtFault,
    enumerate_faults,
    fault_coverage,
    simulate_with_fault,
)
from .buffering import BufferStats, insert_buffers
from .atpg import AtpgResult, fault_bdd_test, generate_tests
from .sequential import (
    SequentialSimulator,
    SequentialTiming,
    min_clock_period,
    sequential_timing,
)
from .stats import CircuitStats, collect_stats, format_stats
from .bdd import (
    Bdd,
    build_output_bdds,
    count_satisfying,
    interleaved_order,
    prove_equivalent,
)
from .export_vhdl import to_vhdl
from .export_verilog import to_verilog
from .export_dot import to_dot
from . import serialize

__all__ = [
    "Circuit", "CircuitError", "Net",
    "GATE_SPECS", "GateSpec", "gate_spec", "is_input_op", "is_state_op",
    "and_tree", "or_tree", "xor_tree", "reduce_tree",
    "pg_preprocess", "carry_combine", "carry_combine_g", "sum_postprocess",
    "simulate", "simulate_interpreted", "simulate_words", "simulate_bus_ints",
    "bus_to_int", "int_to_bus", "random_stimulus",
    "TimingReport", "analyze_timing", "critical_path_delay", "output_arrivals",
    "AreaReport", "analyze_area", "total_area",
    "TechLibrary", "UNIT", "UMC180", "LIBRARIES", "get_library",
    "check_structure", "assert_equivalent_exhaustive",
    "assert_equivalent_random",
    "OptStats", "sweep_dead_logic", "rebuild",
    "StuckAtFault", "FaultReport", "enumerate_faults", "fault_coverage",
    "simulate_with_fault",
    "BufferStats", "insert_buffers",
    "AtpgResult", "fault_bdd_test", "generate_tests",
    "SequentialSimulator", "SequentialTiming", "min_clock_period",
    "sequential_timing",
    "CircuitStats", "collect_stats", "format_stats",
    "Bdd", "build_output_bdds", "count_satisfying", "interleaved_order",
    "prove_equivalent",
    "to_vhdl", "to_verilog", "to_dot", "serialize",
]
