"""Technology libraries: per-cell delay and area plus load/wire models.

The paper synthesised its generated VHDL with a UMC 0.18 µm standard-cell
library; we reproduce the *relative* behaviour with a parameterised model:

``gate delay = intrinsic(op) + fanout_delay * (fanout - 1) + wire_delay_per_bit * span``

where *span* is the largest bit-column distance between the gate and any of
its fanins (nets carry a ``pos`` attribute stamped by the datapath
generators).  The span term is what makes wide prefix adders pay for their
long cross-datapath wires — the effect the paper's ACA avoids by keeping all
connections within a ``w``-bit window (bounded wires *and* bounded fanout,
cf. Section 3.2).

Two libraries ship with the package:

* :data:`UNIT` — delay 1 / area 1 per gate, no load or wire terms.  Used by
  tests that reason about pure logic depth.
* :data:`UMC180` — intrinsic delays and areas in the proportions typical of
  0.18 µm cell libraries (ns / µm²-normalised units), with small fanout and
  wire terms.  Used by the Fig. 8 reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["TechLibrary", "UNIT", "UMC180", "LIBRARIES", "get_library"]


@dataclass(frozen=True)
class CellTiming:
    """Intrinsic delay and area of one cell type."""

    delay: float
    area: float


def _scaled_variadic(base_delay: float, base_area: float,
                     per_extra_delay: float, per_extra_area: float,
                     max_extra: int = 6) -> Dict[int, CellTiming]:
    """Timing table for a variadic cell family indexed by fanin count."""
    table = {}
    for extra in range(max_extra + 1):
        table[2 + extra] = CellTiming(base_delay + per_extra_delay * extra,
                                      base_area + per_extra_area * extra)
    return table


@dataclass(frozen=True)
class TechLibrary:
    """A delay/area model for :mod:`repro.circuit` analyses.

    Attributes:
        name: Library name for reports.
        cells: Intrinsic timing per op name; variadic ops are looked up by
            ``(op, fanin_count)`` via :meth:`cell`.
        variadic: Timing tables for variadic ops, keyed by op then arity.
        fanout_delay: Extra delay per fanout beyond the first sink.
        wire_delay_per_bit: Extra delay per bit-column of wire span.
        max_variadic_arity: Largest supported fanin count for variadic ops.
    """

    name: str
    cells: Dict[str, CellTiming]
    variadic: Dict[str, Dict[int, CellTiming]]
    fanout_delay: float = 0.0
    wire_delay_per_bit: float = 0.0
    max_variadic_arity: int = 8

    def cell(self, op: str, arity: int) -> CellTiming:
        """Timing entry for *op* instantiated with *arity* fanins."""
        if op in self.variadic:
            table = self.variadic[op]
            if arity in table:
                return table[arity]
            # Extrapolate linearly from the two largest entries.
            ks = sorted(table)
            hi, lo = table[ks[-1]], table[ks[-2]]
            extra = arity - ks[-1]
            return CellTiming(hi.delay + extra * (hi.delay - lo.delay),
                              hi.area + extra * (hi.area - lo.area))
        if op in self.cells:
            return self.cells[op]
        raise KeyError(f"library {self.name!r} has no cell for {op!r}")

    def gate_delay(self, op: str, arity: int, fanout: int,
                   span: float) -> float:
        """Full gate delay including load and wire terms.

        The load term grows with ``log2(fanout)``, modelling the buffer
        tree a synthesis tool inserts on high-fanout nets (a linear term
        would overcharge e.g. Sklansky's n/2-fanout nodes relative to what
        placed netlists show).
        """
        base = self.cell(op, arity).delay
        load = self.fanout_delay * math.log2(max(1, fanout))
        wire = self.wire_delay_per_bit * max(0.0, span)
        return base + load + wire

    def gate_area(self, op: str, arity: int) -> float:
        """Cell area of *op* with *arity* fanins."""
        return self.cell(op, arity).area

    def with_wire_model(self, fanout_delay: float,
                        wire_delay_per_bit: float) -> "TechLibrary":
        """Derived library with different load/wire coefficients.

        The coefficients are folded into the name because analysis
        caches (e.g. the DesignWare-proxy memoisation) key on it.
        """
        return replace(self, fanout_delay=fanout_delay,
                       wire_delay_per_bit=wire_delay_per_bit,
                       name=f"{self.name}+f{fanout_delay:g}"
                            f"w{wire_delay_per_bit:g}")


def _unit_library() -> TechLibrary:
    unity = CellTiming(1.0, 1.0)
    fixed = {
        op: unity
        for op in ("BUF", "NOT", "AO21", "OA21", "MUX2", "MAJ3", "DFF",
                   "CONST0", "CONST1", "INPUT")
    }
    variadic = {
        op: _scaled_variadic(1.0, 1.0, 0.0, 0.0)
        for op in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR")
    }
    return TechLibrary("unit", fixed, variadic)


def _umc180_library() -> TechLibrary:
    # Intrinsic delays (ns) and areas (normalised to an inverter) in the
    # proportions of a 0.18 um standard-cell library.  Simple monotone
    # NAND/NOR cells are fastest; XOR and complex AO/OA and MUX cells are
    # slower; wider variadic cells pay per extra input.
    # Relative cell speeds follow 0.18 um standard-cell data books: simple
    # (N)AND/(N)OR cells are roughly twice as fast as XOR and AND-OR
    # complex cells — the asymmetry behind the paper's observation that the
    # error detector (simple gates only) runs at ~2/3 of a traditional
    # adder (complex carry gates) despite equal O(log n) depth.
    fixed = {
        "INPUT": CellTiming(0.0, 0.0),
        "CONST0": CellTiming(0.0, 0.0),
        "CONST1": CellTiming(0.0, 0.0),
        "BUF": CellTiming(0.045, 1.2),
        "NOT": CellTiming(0.030, 1.0),
        "AO21": CellTiming(0.125, 2.6),
        "OA21": CellTiming(0.125, 2.6),
        "MUX2": CellTiming(0.130, 3.0),
        "MAJ3": CellTiming(0.140, 3.2),
        # Flip-flop: delay entry models clk-to-q; setup is carried by the
        # sequential timing pass.
        "DFF": CellTiming(0.180, 5.5),
    }
    variadic = {
        "NAND": _scaled_variadic(0.045, 1.4, 0.010, 0.7),
        "NOR": _scaled_variadic(0.050, 1.4, 0.012, 0.7),
        "AND": _scaled_variadic(0.055, 1.8, 0.012, 0.7),
        "OR": _scaled_variadic(0.060, 1.8, 0.013, 0.7),
        "XOR": _scaled_variadic(0.150, 3.1, 0.070, 1.6),
        "XNOR": _scaled_variadic(0.150, 3.1, 0.070, 1.6),
    }
    return TechLibrary(
        "umc180",
        fixed,
        variadic,
        # Load and wire coefficients: ~25 ps per factor-of-two of fanout
        # (buffer-tree model) and ~0.4 ps per bit column of wire span
        # (the paper's flow was synthesis-only: wire loads stay small even
        # at 2048 bits, keeping its delay ratios gate-dominated).
        # These penalise high-fanout nodes (Sklansky) and long
        # cross-datapath prefix wires (Kogge-Stone at large n) the way a
        # placed 0.18 um datapath does, and are the calibration knobs
        # documented in DESIGN.md / EXPERIMENTS.md.
        fanout_delay=0.025,
        wire_delay_per_bit=0.0004,
    )


#: Unit delay/area library (logic-depth reasoning).
UNIT = _unit_library()

#: 0.18 um-calibrated library used by the Fig. 8 reproduction.
UMC180 = _umc180_library()

LIBRARIES: Dict[str, TechLibrary] = {lib.name: lib for lib in (UNIT, UMC180)}


def get_library(name: str) -> TechLibrary:
    """Look up a shipped library by name (``"unit"`` or ``"umc180"``)."""
    try:
        return LIBRARIES[name]
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; available: {sorted(LIBRARIES)}"
        ) from None
