"""Structural Verilog export (continuous assignments, Verilog-2001)."""

from __future__ import annotations

import re
from typing import Dict, List

from .gates import is_input_op
from .netlist import Circuit

__all__ = ["to_verilog"]


def _sanitize(name: str) -> str:
    """Turn an arbitrary name into a legal Verilog identifier."""
    out = re.sub(r"[^a-zA-Z0-9_$]", "_", name)
    out = re.sub(r"_+", "_", out).strip("_")
    if not out or not (out[0].isalpha() or out[0] == "_"):
        out = "n_" + out
    return out


def _expr(op: str, args: List[str]) -> str:
    if op == "NOT":
        return f"~{args[0]}"
    if op == "BUF":
        return args[0]
    if op == "AND":
        return " & ".join(args)
    if op == "OR":
        return " | ".join(args)
    if op == "XOR":
        return " ^ ".join(args)
    if op == "NAND":
        return f"~({' & '.join(args)})"
    if op == "NOR":
        return f"~({' | '.join(args)})"
    if op == "XNOR":
        return f"~({' ^ '.join(args)})"
    if op == "AO21":
        a, b, c = args
        return f"({a} & {b}) | {c}"
    if op == "OA21":
        a, b, c = args
        return f"({a} | {b}) & {c}"
    if op == "MUX2":
        s, a, b = args
        return f"{s} ? {a} : {b}"
    if op == "MAJ3":
        a, b, c = args
        return f"({a} & {b}) | ({a} & {c}) | ({b} & {c})"
    raise ValueError(f"cannot export op {op!r} to Verilog")


def to_verilog(circuit: Circuit, module_name: str = None) -> str:
    """Render *circuit* as a structural Verilog module.

    Args:
        circuit: Circuit to export (must have registered outputs).
        module_name: Override for the module name.

    Returns:
        Verilog source text.
    """
    module = _sanitize(module_name or circuit.name)
    live = circuit.reachable_from_outputs()
    sequential = circuit.is_sequential()

    ports: List[str] = []
    decls: List[str] = []
    if sequential:
        ports.append("clk")
        decls.append("  input  clk;")
    for name, bus in circuit.inputs.items():
        pname = _sanitize(name)
        ports.append(pname)
        rng = "" if len(bus) == 1 else f"[{len(bus) - 1}:0] "
        decls.append(f"  input  {rng}{pname};")
    for name, bus in circuit.outputs.items():
        pname = _sanitize(name)
        ports.append(pname)
        rng = "" if len(bus) == 1 else f"[{len(bus) - 1}:0] "
        decls.append(f"  output {rng}{pname};")

    sig: Dict[int, str] = {}
    for name, bus in circuit.inputs.items():
        pname = _sanitize(name)
        for i, nid in enumerate(bus):
            sig[nid] = pname if len(bus) == 1 else f"{pname}[{i}]"

    wires: List[str] = []
    body: List[str] = []
    seq_body: List[str] = []
    # Flip-flop outputs must be named before any consumer (their data
    # input may be a forward reference).
    for nid in circuit.dffs():
        if live[nid]:
            wires.append(f"  reg r{nid} = 1'b"
                         f"{circuit.dff_init.get(nid, 0)};")
            sig[nid] = f"r{nid}"
    for net in circuit.topological_nets():
        if net.nid in sig or not live[net.nid]:
            continue
        if net.op == "CONST0":
            sig[net.nid] = "1'b0"
            continue
        if net.op == "CONST1":
            sig[net.nid] = "1'b1"
            continue
        if is_input_op(net.op):
            continue
        wire = f"w{net.nid}"
        wires.append(f"  wire {wire};")
        args = [sig[f] for f in net.fanins]
        body.append(f"  assign {wire} = {_expr(net.op, args)};")
        sig[net.nid] = wire
    for nid in circuit.dffs():
        if live[nid]:
            src = circuit.nets[nid].fanins[0]
            seq_body.append(f"    r{nid} <= {sig[src]};")
    if seq_body:
        body.append("  always @(posedge clk) begin")
        body.extend(seq_body)
        body.append("  end")

    for name, bus in circuit.outputs.items():
        pname = _sanitize(name)
        for i, nid in enumerate(bus):
            target = pname if len(bus) == 1 else f"{pname}[{i}]"
            body.append(f"  assign {target} = {sig[nid]};")

    lines = [
        f"module {module} ({', '.join(ports)});",
        *decls,
        *wires,
        *body,
        "endmodule",
        "",
    ]
    return "\n".join(lines)
