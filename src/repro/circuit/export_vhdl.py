"""Structural VHDL export.

The paper's authors wrote a C++ program that emits VHDL for the ACA, error
detector and recovery circuits; this module plays the same role for every
circuit in the repository.  Output is plain VHDL-93 with dataflow
assignments (one per net), suitable for any synthesis front-end.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .gates import is_input_op
from .netlist import Circuit

__all__ = ["to_vhdl"]

_VHDL_ID = re.compile(r"^[a-zA-Z][a-zA-Z0-9_]*$")


def _sanitize(name: str) -> str:
    """Turn an arbitrary net name into a legal VHDL identifier."""
    out = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    out = re.sub(r"_+", "_", out).strip("_")
    if not out or not out[0].isalpha():
        out = "n_" + out
    return out.lower()


def _expr(op: str, args: List[str]) -> str:
    if op == "NOT":
        return f"not {args[0]}"
    if op == "BUF":
        return args[0]
    if op == "AND":
        return " and ".join(args)
    if op == "OR":
        return " or ".join(args)
    if op == "XOR":
        return " xor ".join(args)
    if op == "NAND":
        return f"not ({' and '.join(args)})"
    if op == "NOR":
        return f"not ({' or '.join(args)})"
    if op == "XNOR":
        return f"not ({' xor '.join(args)})"
    if op == "AO21":
        a, b, c = args
        return f"({a} and {b}) or {c}"
    if op == "OA21":
        a, b, c = args
        return f"({a} or {b}) and {c}"
    if op == "MUX2":
        s, a, b = args
        return f"({a} and {s}) or ({b} and not {s})"
    if op == "MAJ3":
        a, b, c = args
        return f"({a} and {b}) or ({a} and {c}) or ({b} and {c})"
    raise ValueError(f"cannot export op {op!r} to VHDL")


def to_vhdl(circuit: Circuit, entity_name: str = None) -> str:
    """Render *circuit* as a structural VHDL-93 entity/architecture pair.

    Args:
        circuit: Circuit to export (must have registered outputs).
        entity_name: Override for the entity name (defaults to a sanitised
            version of the circuit name).

    Returns:
        VHDL source text.
    """
    entity = _sanitize(entity_name or circuit.name)
    live = circuit.reachable_from_outputs()
    sequential = circuit.is_sequential()

    ports = []
    if sequential:
        ports.append("    clk : in  std_logic")
    for name, bus in circuit.inputs.items():
        pname = _sanitize(name)
        if len(bus) == 1:
            ports.append(f"    {pname} : in  std_logic")
        else:
            ports.append(
                f"    {pname} : in  std_logic_vector({len(bus) - 1} downto 0)")
    for name, bus in circuit.outputs.items():
        pname = _sanitize(name)
        if len(bus) == 1:
            ports.append(f"    {pname} : out std_logic")
        else:
            ports.append(
                f"    {pname} : out std_logic_vector({len(bus) - 1} downto 0)")

    # Name every live net.
    sig: Dict[int, str] = {}
    for name, bus in circuit.inputs.items():
        pname = _sanitize(name)
        for i, nid in enumerate(bus):
            sig[nid] = pname if len(bus) == 1 else f"{pname}({i})"

    decls: List[str] = []
    body: List[str] = []
    for nid in circuit.dffs():
        if live[nid]:
            init = circuit.dff_init.get(nid, 0)
            decls.append(f"  signal r{nid} : std_logic := '{init}';")
            sig[nid] = f"r{nid}"
    for net in circuit.topological_nets():
        if net.nid in sig or not live[net.nid]:
            continue
        if net.op == "CONST0":
            sig[net.nid] = "'0'"
            continue
        if net.op == "CONST1":
            sig[net.nid] = "'1'"
            continue
        if is_input_op(net.op):
            continue
        wire = f"w{net.nid}"
        decls.append(f"  signal {wire} : std_logic;")
        args = [sig[f] for f in net.fanins]
        body.append(f"  {wire} <= {_expr(net.op, args)};")
        sig[net.nid] = wire
    seq_assigns = [f"      r{nid} <= {sig[circuit.nets[nid].fanins[0]]};"
                   for nid in circuit.dffs() if live[nid]]
    if seq_assigns:
        body.append("  registers : process (clk)")
        body.append("  begin")
        body.append("    if rising_edge(clk) then")
        body.extend(seq_assigns)
        body.append("    end if;")
        body.append("  end process;")

    for name, bus in circuit.outputs.items():
        pname = _sanitize(name)
        for i, nid in enumerate(bus):
            target = pname if len(bus) == 1 else f"{pname}({i})"
            body.append(f"  {target} <= {sig[nid]};")

    lines = [
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity {entity} is",
        "  port (",
        ";\n".join(ports),
        "  );",
        f"end entity {entity};",
        "",
        f"architecture structural of {entity} is",
        *decls,
        "begin",
        *body,
        f"end architecture structural;",
        "",
    ]
    return "\n".join(lines)
