"""Word-level construction helpers layered on top of :class:`Circuit`.

These helpers keep adder generators terse: balanced AND/OR/XOR trees with a
configurable maximum gate arity, propagate/generate preprocessing, and the
carry-operator combine used by every prefix-style adder in the repository.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .netlist import Circuit, CircuitError

__all__ = [
    "reduce_tree",
    "and_tree",
    "or_tree",
    "xor_tree",
    "pg_preprocess",
    "carry_combine",
    "carry_combine_g",
    "sum_postprocess",
]


def reduce_tree(circuit: Circuit, op: str, nets: Sequence[int],
                max_arity: int = 2, pos: Optional[float] = None) -> int:
    """Reduce *nets* with a balanced tree of *op* gates.

    Args:
        circuit: Target circuit.
        op: A variadic associative operation (``AND``/``OR``/``XOR``/...).
        nets: Net ids to reduce; must be non-empty.
        max_arity: Maximum number of fanins per gate (e.g. 4 to use
            four-input cells).
        pos: Optional position stamped on the created gates.

    Returns:
        Net id of the tree root.
    """
    if not nets:
        raise CircuitError("cannot reduce an empty net list")
    if max_arity < 2:
        raise CircuitError("max_arity must be >= 2")
    level = list(nets)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level), max_arity):
            group = level[i:i + max_arity]
            if len(group) == 1:
                nxt.append(group[0])
            else:
                nxt.append(circuit.add_gate(op, *group, pos=pos))
        level = nxt
    return level[0]


def and_tree(circuit: Circuit, nets: Sequence[int], max_arity: int = 2,
             pos: Optional[float] = None) -> int:
    """Balanced AND reduction of *nets*."""
    return reduce_tree(circuit, "AND", nets, max_arity=max_arity, pos=pos)


def or_tree(circuit: Circuit, nets: Sequence[int], max_arity: int = 2,
            pos: Optional[float] = None) -> int:
    """Balanced OR reduction of *nets*."""
    return reduce_tree(circuit, "OR", nets, max_arity=max_arity, pos=pos)


def xor_tree(circuit: Circuit, nets: Sequence[int], max_arity: int = 2,
             pos: Optional[float] = None) -> int:
    """Balanced XOR reduction of *nets*."""
    return reduce_tree(circuit, "XOR", nets, max_arity=max_arity, pos=pos)


def pg_preprocess(circuit: Circuit, a: Sequence[int],
                  b: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Per-bit generate/propagate signals ``g_i = a_i & b_i``, ``p_i = a_i ^ b_i``.

    Positions are stamped with the bit index so wire-delay accounting knows
    which column each signal lives in.

    Returns:
        ``(g, p)`` lists of net ids, LSB first.
    """
    if len(a) != len(b):
        raise CircuitError("operand widths differ")
    g = [circuit.add_gate("AND", ai, bi, pos=float(i))
         for i, (ai, bi) in enumerate(zip(a, b))]
    p = [circuit.add_gate("XOR", ai, bi, pos=float(i))
         for i, (ai, bi) in enumerate(zip(a, b))]
    return g, p


def carry_combine(circuit: Circuit, g_hi: int, p_hi: int, g_lo: int,
                  p_lo: int, pos: Optional[float] = None) -> Tuple[int, int]:
    """The associative carry operator ``(g,p) = (g_hi + p_hi*g_lo, p_hi*p_lo)``.

    The generate part maps to a single AO21 cell, the propagate part to an
    AND — exactly the cells a prefix-adder node synthesises to.
    """
    g = circuit.add_gate("AO21", p_hi, g_lo, g_hi, pos=pos)
    p = circuit.add_gate("AND", p_hi, p_lo, pos=pos)
    return g, p


def carry_combine_g(circuit: Circuit, g_hi: int, p_hi: int, g_lo: int,
                    pos: Optional[float] = None) -> int:
    """Generate-only combine (used when the propagate output is not needed)."""
    return circuit.add_gate("AO21", p_hi, g_lo, g_hi, pos=pos)


def sum_postprocess(circuit: Circuit, p: Sequence[int],
                    carries: Sequence[int]) -> List[int]:
    """Final sum bits ``s_i = p_i ^ c_{i-1}``.

    Args:
        p: Per-bit propagate signals, LSB first.
        carries: ``carries[i]`` is the carry *into* bit ``i`` (so
            ``carries[0]`` is the external carry-in or constant 0).

    Returns:
        Sum net ids, LSB first.
    """
    if len(carries) != len(p):
        raise CircuitError("need one incoming carry per sum bit")
    return [circuit.add_gate("XOR", pi, ci, pos=float(i))
            for i, (pi, ci) in enumerate(zip(p, carries))]
