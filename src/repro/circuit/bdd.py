"""A small reduced-ordered BDD engine and formal equivalence checking.

Random simulation (see :mod:`repro.circuit.validate`) catches most bugs;
this module provides the complementary *formal* check: build ROBDDs for
two circuits' outputs under a shared variable order and compare node
pointers — equal pointers prove equivalence over the full input space.

Adders have linear-size BDDs when operand bits are interleaved
(``a0, b0, a1, b1, ...``), which :func:`interleaved_order` produces, so
checking a 64-bit speculative adder against the exact one takes
milliseconds.  The engine is deliberately minimal: unique table,
memoised ITE, complement-free nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .gates import is_input_op
from .netlist import Circuit, CircuitError

__all__ = ["Bdd", "interleaved_order", "build_output_bdds",
           "prove_equivalent", "count_satisfying"]


class Bdd:
    """A reduced-ordered BDD manager.

    Nodes are integers: 0 and 1 are the terminals, larger ids index the
    node table ``(level, low, high)``.  Variables are identified by their
    *level* (position in the variable order, smaller = closer to root).
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars: int):
        if num_vars < 0:
            raise CircuitError("num_vars must be non-negative")
        self.num_vars = num_vars
        # node id -> (level, low, high); terminals use level = num_vars.
        self._nodes: List[Tuple[int, int, int]] = [
            (num_vars, 0, 0), (num_vars, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    def var(self, level: int) -> int:
        """BDD for the single variable at *level*."""
        if not (0 <= level < self.num_vars):
            raise CircuitError(f"variable level {level} out of range")
        return self._mk(level, self.FALSE, self.TRUE)

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        hit = self._unique.get(key)
        if hit is not None:
            return hit
        nid = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = nid
        return nid

    def _level(self, nid: int) -> int:
        return self._nodes[nid][0]

    def _cofactors(self, nid: int, level: int) -> Tuple[int, int]:
        node_level, low, high = self._nodes[nid]
        if node_level == level:
            return low, high
        return nid, nid

    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` — the universal BDD operation."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        hit = self._ite_cache.get(key)
        if hit is not None:
            return hit
        level = min(self._level(f), self._level(g), self._level(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._mk(level,
                          self.ite(f0, g0, h0),
                          self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Sequence[int]) -> int:
        """Evaluate node *f* under per-level variable values."""
        while f > 1:
            level, low, high = self._nodes[f]
            f = high if assignment[level] else low
        return f

    def count_sat(self, f: int) -> int:
        """Number of satisfying assignments over all variables."""
        memo: Dict[int, int] = {}

        def walk(nid: int) -> int:
            if nid == self.FALSE:
                return 0
            if nid == self.TRUE:
                return 1 << 0  # scaled below by level gaps
            if nid in memo:
                return memo[nid]
            level, low, high = self._nodes[nid]
            lo_level = self._level(low)
            hi_level = self._level(high)
            total = (walk(low) << (lo_level - level - 1)) + (
                walk(high) << (hi_level - level - 1))
            memo[nid] = total
            return total

        top_level = self._level(f)
        if f <= 1:
            return (1 << self.num_vars) if f == self.TRUE else 0
        return walk(f) << top_level

    def any_sat(self, f: int) -> Optional[List[int]]:
        """One satisfying assignment of *f* (per-level values), or None.

        Unconstrained variables are set to 0.
        """
        if f == self.FALSE:
            return None
        assignment = [0] * self.num_vars
        while f > 1:
            level, low, high = self._nodes[f]
            if low != self.FALSE:
                assignment[level] = 0
                f = low
            else:
                assignment[level] = 1
                f = high
        return assignment

    def size(self) -> int:
        """Total nodes allocated in the manager."""
        return len(self._nodes)

    def reachable_size(self, *roots: int) -> int:
        """Nodes reachable from *roots* (the size of those functions).

        Unlike :meth:`size` this excludes dead intermediate nodes, so it
        is the number the PolyAdd-style polynomial bounds apply to.
        Terminals are not counted.
        """
        seen = set()
        stack = [r for r in roots if r > 1]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            _, low, high = self._nodes[nid]
            if low > 1:
                stack.append(low)
            if high > 1:
                stack.append(high)
        return len(seen)


def interleaved_order(circuit: Circuit) -> Dict[int, int]:
    """Variable order interleaving same-index bits of all input buses.

    ``a0, b0, a1, b1, ...`` keeps adder BDDs linear in the bitwidth.

    Returns:
        Mapping input net id -> variable level.
    """
    buses = list(circuit.inputs.values())
    max_width = max((len(b) for b in buses), default=0)
    order: Dict[int, int] = {}
    level = 0
    for bit in range(max_width):
        for bus in buses:
            if bit < len(bus):
                order[bus[bit]] = level
                level += 1
    return order


def build_output_bdds(circuit: Circuit, manager: Bdd,
                      order: Dict[int, int]) -> Dict[str, List[int]]:
    """Symbolically simulate *circuit*, returning BDDs per output bit.

    Args:
        circuit: Circuit to translate.
        manager: Shared BDD manager (use one manager for both circuits
            in an equivalence check).
        order: Input net id -> variable level (see
            :func:`interleaved_order`); both circuits must map
            corresponding inputs to the same levels.
    """
    if circuit.is_sequential():
        raise CircuitError("BDD translation handles combinational "
                           "circuits only")
    values: List[Optional[int]] = [None] * len(circuit.nets)
    for name, bus in circuit.inputs.items():
        for nid in bus:
            if nid not in order:
                raise CircuitError(f"input net {nid} missing from order")
            values[nid] = manager.var(order[nid])

    for net in circuit.topological_nets():
        if net.op == "INPUT":
            continue
        if net.op == "CONST0":
            values[net.nid] = Bdd.FALSE
            continue
        if net.op == "CONST1":
            values[net.nid] = Bdd.TRUE
            continue
        args = [values[f] for f in net.fanins]
        if net.op == "NOT":
            out = manager.apply_not(args[0])
        elif net.op == "BUF":
            out = args[0]
        elif net.op in ("AND", "NAND"):
            out = args[0]
            for x in args[1:]:
                out = manager.apply_and(out, x)
            if net.op == "NAND":
                out = manager.apply_not(out)
        elif net.op in ("OR", "NOR"):
            out = args[0]
            for x in args[1:]:
                out = manager.apply_or(out, x)
            if net.op == "NOR":
                out = manager.apply_not(out)
        elif net.op in ("XOR", "XNOR"):
            out = args[0]
            for x in args[1:]:
                out = manager.apply_xor(out, x)
            if net.op == "XNOR":
                out = manager.apply_not(out)
        elif net.op == "AO21":
            out = manager.apply_or(manager.apply_and(args[0], args[1]),
                                   args[2])
        elif net.op == "OA21":
            out = manager.apply_and(manager.apply_or(args[0], args[1]),
                                    args[2])
        elif net.op == "MUX2":
            out = manager.ite(args[0], args[1], args[2])
        elif net.op == "MAJ3":
            a, b, c = args
            out = manager.apply_or(
                manager.apply_or(manager.apply_and(a, b),
                                 manager.apply_and(a, c)),
                manager.apply_and(b, c))
        else:  # pragma: no cover - all ops handled above
            raise CircuitError(f"cannot translate op {net.op!r}")
        values[net.nid] = out

    return {name: [values[nid] for nid in bus]
            for name, bus in circuit.outputs.items()}


def prove_equivalent(circuit_a: Circuit, circuit_b: Circuit,
                     outputs: Optional[Sequence[str]] = None
                     ) -> Tuple[bool, Optional[str]]:
    """Formally prove two circuits equal on the named outputs.

    The circuits must have identical input buses (names and widths).

    Returns:
        ``(True, None)`` on success, else ``(False, reason)`` naming the
        first differing output bit.
    """
    if {k: len(v) for k, v in circuit_a.inputs.items()} != (
            {k: len(v) for k, v in circuit_b.inputs.items()}):
        return False, "input interfaces differ"

    order_a = interleaved_order(circuit_a)
    manager = Bdd(len(order_a))
    # Map circuit_b's inputs to the same levels by bus name/bit.
    order_b: Dict[int, int] = {}
    for name, bus_a in circuit_a.inputs.items():
        bus_b = circuit_b.inputs[name]
        for nid_a, nid_b in zip(bus_a, bus_b):
            order_b[nid_b] = order_a[nid_a]

    bdds_a = build_output_bdds(circuit_a, manager, order_a)
    bdds_b = build_output_bdds(circuit_b, manager, order_b)

    names = outputs or sorted(set(bdds_a) & set(bdds_b))
    for name in names:
        if name not in bdds_a or name not in bdds_b:
            return False, f"output {name!r} missing from one circuit"
        if len(bdds_a[name]) != len(bdds_b[name]):
            return False, f"output {name!r} widths differ"
        for bit, (fa, fb) in enumerate(zip(bdds_a[name], bdds_b[name])):
            if fa != fb:
                return False, f"output {name}[{bit}] differs"
    return True, None


def count_satisfying(circuit: Circuit, output: str, bit: int = 0) -> int:
    """Number of input assignments that set ``output[bit]`` to 1.

    Useful for exact probability computations on small circuits (e.g.
    the exact count of inputs that raise the error flag).
    """
    order = interleaved_order(circuit)
    manager = Bdd(len(order))
    bdds = build_output_bdds(circuit, manager, order)
    return manager.count_sat(bdds[output][bit])
