"""Cell-area accounting for gate-level netlists.

Area is the sum of cell areas over gates reachable from the registered
outputs (dead logic is not charged — synthesis would sweep it).  A per-op
breakdown supports the Fig. 8 area comparison and the sharing ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .gates import is_input_op
from .netlist import Circuit
from .techlib import TechLibrary, UNIT

__all__ = ["AreaReport", "analyze_area", "total_area"]


@dataclass
class AreaReport:
    """Result of an area analysis.

    Attributes:
        circuit_name: Name of the analysed circuit.
        library_name: Name of the area model used.
        total: Total cell area of live logic.
        by_op: Area per operation type.
        gate_count: Number of live logic gates.
    """

    circuit_name: str
    library_name: str
    total: float
    by_op: Dict[str, float]
    gate_count: int

    def normalized_to(self, reference: "AreaReport") -> float:
        """This circuit's area divided by *reference*'s total."""
        if reference.total <= 0:
            raise ValueError("reference area must be positive")
        return self.total / reference.total


def analyze_area(circuit: Circuit, library: TechLibrary = UNIT) -> AreaReport:
    """Compute total and per-op area of the live logic in *circuit*."""
    live = circuit.reachable_from_outputs() if circuit.outputs else (
        [True] * len(circuit.nets))
    total = 0.0
    by_op: Dict[str, float] = {}
    count = 0
    for net in circuit.nets:
        if not live[net.nid] or is_input_op(net.op):
            continue
        a = library.gate_area(net.op, len(net.fanins))
        total += a
        by_op[net.op] = by_op.get(net.op, 0.0) + a
        count += 1
    return AreaReport(circuit.name, library.name, total, by_op, count)


def total_area(circuit: Circuit, library: TechLibrary = UNIT) -> float:
    """Convenience wrapper returning only the total live area."""
    return analyze_area(circuit, library).total
