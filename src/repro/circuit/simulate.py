"""Bit-parallel simulation of combinational circuits.

Two evaluation modes share the same front-end API:

* **Scalar words** — each input value is a Python ``int`` whose bit ``j``
  carries the stimulus of test vector ``j``.  With 64 vectors per word this
  already gives a 64x speedup over naive per-vector evaluation, and Python's
  big integers allow arbitrarily many vectors per call.
* **NumPy vectors** — inputs are ``numpy.ndarray`` of an unsigned dtype; all
  gate evaluations become element-wise array ops.

Since PR 1 the heavy lifting happens in :mod:`repro.engine`:
:func:`simulate` compiles the circuit once (memoised) into a flat op
tape with pre-resolved kernels and dispatches to the configured engine
backend (``bigint``/``numpy``/``sharded``).  The original per-gate
interpreter survives as :func:`simulate_interpreted` — it is the
reference implementation the engine is differentially tested against,
and the baseline of ``benchmarks/bench_engine_throughput.py``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .gates import GATE_SPECS, is_input_op  # noqa: F401  (re-export compat)
from .netlist import Circuit, CircuitError

__all__ = [
    "simulate",
    "simulate_interpreted",
    "simulate_words",
    "simulate_bus_ints",
    "bus_to_int",
    "int_to_bus",
    "random_stimulus",
]

Word = Union[int, np.ndarray]

_ZERO = ord("0")


def int_to_bus(value: int, width: int) -> List[int]:
    """Split *value* into *width* single-bit words, LSB first.

    Bits above *width* are truncated; negative values contribute their
    two's-complement bit pattern (as arbitrary-precision ints do under
    ``>>``/``&``).  One string render instead of *width* big-int shifts
    keeps this O(width) even for multi-thousand-bit buses.
    """
    if width <= 0:
        return []
    bits = format(value & ((1 << width) - 1), f"0{width}b").encode()
    return [b - _ZERO for b in bits[::-1]]


def bus_to_int(bits: Sequence[int]) -> int:
    """Assemble single-bit words (LSB first) into one integer.

    Only bit 0 of each word is read, matching the historical semantics
    (words may be packed multi-vector values; the caller selects the
    vector by shifting first).
    """
    if not bits:
        return 0
    return int("".join("1" if (b & 1) else "0" for b in reversed(bits)), 2)


def simulate(circuit: Circuit, stimulus: Mapping[str, Sequence[Word]],
             num_vectors: Optional[int] = None,
             backend: Optional[str] = None) -> Dict[str, List[Word]]:
    """Simulate *circuit* on bit-parallel stimulus (compiled engine).

    Args:
        circuit: Circuit to evaluate.
        stimulus: Mapping from input bus name to a list of per-bit words
            (LSB first).  Each word packs one bit of every test vector.
        num_vectors: Number of packed test vectors.  Required for Python-int
            words (it defines the negation mask); inferred from the dtype
            for NumPy words.
        backend: Engine backend override (default: ``numpy`` for array
            stimulus, otherwise the run context's backend).

    Returns:
        Mapping from output bus name to per-bit words, LSB first.
    """
    from ..engine import api as _api

    sample = _first_word(circuit, stimulus)
    if isinstance(sample, np.ndarray):
        return _simulate_arrays(circuit, stimulus, sample)
    return _api.execute(circuit, stimulus, num_vectors=num_vectors,
                        backend=backend)


def _first_word(circuit: Circuit,
                stimulus: Mapping[str, Sequence[Word]]) -> Optional[Word]:
    for name, bus in circuit.inputs.items():
        if name not in stimulus:
            raise CircuitError(f"missing stimulus for input {name!r}")
        if len(stimulus[name]) != len(bus):
            raise CircuitError(
                f"input {name!r} expects {len(bus)} bit-words, "
                f"got {len(stimulus[name])}")
        for word in stimulus[name]:
            return word
    return None


def _simulate_arrays(circuit: Circuit,
                     stimulus: Mapping[str, Sequence[Word]],
                     sample: np.ndarray) -> Dict[str, List[np.ndarray]]:
    """Element-wise array mode: every array element is an independent
    word of ``dtype``-many vectors.  Bitwise gate semantics are position
    independent, so the engine evaluates the byte-identical uint64 view
    and the results are cast back to the caller's dtype and shape."""
    from ..engine import api as _api
    from ..engine.backends import NumpyBackend, get_backend

    dtype = sample.dtype
    shape = sample.shape
    nbytes_elem = dtype.itemsize
    total_bytes = sample.size * nbytes_elem
    nwords = (total_bytes + 7) // 8

    def to_u64(arr: np.ndarray) -> np.ndarray:
        if arr.dtype != dtype or arr.shape != shape:
            raise CircuitError("mixed stimulus dtypes/shapes")
        raw = np.ascontiguousarray(arr).tobytes()
        raw += b"\x00" * (nwords * 8 - len(raw))
        return np.frombuffer(raw, dtype="<u8").copy()

    rows = {name: [to_u64(np.asarray(w)) for w in stimulus[name]]
            for name in circuit.inputs}
    backend = get_backend("numpy")
    if not isinstance(backend, NumpyBackend):  # pragma: no cover - custom
        backend = NumpyBackend()
    plan = _api.compiled_plan(circuit)
    out = backend.run_u64(plan, rows, nwords)

    def from_u64(arr: np.ndarray) -> np.ndarray:
        raw = arr.tobytes()[:total_bytes]
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()

    return {name: [from_u64(a) for a in words]
            for name, words in out.items()}


def simulate_interpreted(circuit: Circuit,
                         stimulus: Mapping[str, Sequence[Word]],
                         num_vectors: Optional[int] = None
                         ) -> Dict[str, List[Word]]:
    """Reference per-gate interpreter (the pre-engine ``simulate``).

    Walks the net list with Python-level dispatch on every gate.  Kept
    as the differential-testing oracle for the compiled engine and as
    the benchmark baseline; new code should call :func:`simulate`.
    """
    values: List[Optional[Word]] = [None] * len(circuit.nets)
    mask: Optional[Word] = None

    for name, bus in circuit.inputs.items():
        if name not in stimulus:
            raise CircuitError(f"missing stimulus for input {name!r}")
        words = stimulus[name]
        if len(words) != len(bus):
            raise CircuitError(
                f"input {name!r} expects {len(bus)} bit-words, got {len(words)}")
        for nid, word in zip(bus, words):
            values[nid] = word
            if mask is None:
                mask = _mask_for(word, num_vectors)
    if mask is None:
        mask = _mask_for(0, num_vectors)

    for net in circuit.topological_nets():
        op = net.op
        if op == "INPUT":
            if values[net.nid] is None:
                raise CircuitError(
                    f"input net {net.name!r} received no stimulus")
            continue
        if op == "CONST0":
            values[net.nid] = _zeros_like(mask)
            continue
        if op == "CONST1":
            values[net.nid] = _copy(mask)
            continue
        spec = GATE_SPECS[op]
        operands = [values[f] for f in net.fanins]
        values[net.nid] = spec.evaluate(mask, *operands)

    return {
        name: [values[nid] for nid in bus]
        for name, bus in circuit.outputs.items()
    }


def _mask_for(sample: Word, num_vectors: Optional[int]) -> Word:
    if isinstance(sample, np.ndarray):
        info = np.iinfo(sample.dtype)
        return np.full(sample.shape, info.max, dtype=sample.dtype)
    if num_vectors is None:
        raise CircuitError("num_vectors is required for Python-int stimulus")
    if num_vectors <= 0:
        raise CircuitError("num_vectors must be positive")
    return (1 << num_vectors) - 1


def _zeros_like(mask: Word) -> Word:
    if isinstance(mask, np.ndarray):
        return np.zeros_like(mask)
    return 0


def _copy(mask: Word) -> Word:
    if isinstance(mask, np.ndarray):
        return mask.copy()
    return mask


def simulate_words(circuit: Circuit, stimulus: Mapping[str, Sequence[int]],
                   num_vectors: int,
                   backend: Optional[str] = None) -> Dict[str, List[int]]:
    """Alias of :func:`simulate` for Python-int words (explicit vector count)."""
    return simulate(circuit, stimulus, num_vectors=num_vectors,
                    backend=backend)


def simulate_bus_ints(circuit: Circuit,
                      values: Mapping[str, int]) -> Dict[str, int]:
    """Single-vector convenience wrapper: integers in, integers out.

    Args:
        circuit: Circuit to evaluate.
        values: Mapping from input bus name to its integer value (bit ``i``
            of the integer drives bus bit ``i``).

    Returns:
        Mapping from output bus name to its integer value.
    """
    stimulus = {
        name: int_to_bus(values[name], len(bus))
        for name, bus in circuit.inputs.items()
    }
    out = simulate(circuit, stimulus, num_vectors=1)
    return {name: bus_to_int(bits) for name, bits in out.items()}


def random_stimulus(circuit: Circuit, num_vectors: int,
                    rng: Optional[np.random.Generator] = None
                    ) -> Dict[str, List[int]]:
    """Uniform random bit-parallel stimulus for every input bus.

    Args:
        circuit: Circuit whose inputs are to be driven.
        num_vectors: Number of packed random test vectors.
        rng: NumPy generator.  When omitted, draws from the process run
            context's seeded generator (see
            :func:`repro.engine.resolve_rng`) — never from an unseeded
            source, so whole-process runs stay bit-reproducible.

    Returns:
        Stimulus mapping suitable for :func:`simulate_words`.
    """
    from ..engine.context import resolve_rng
    from ..engine.pack import random_word

    rng = resolve_rng(rng)
    return {
        name: [random_word(rng, num_vectors) for _ in bus]
        for name, bus in circuit.inputs.items()
    }
