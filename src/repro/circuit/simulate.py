"""Levelized bit-parallel simulation of combinational circuits.

Two evaluation modes share the same code path:

* **Scalar words** — each input value is a Python ``int`` whose bit ``j``
  carries the stimulus of test vector ``j``.  With 64 vectors per word this
  already gives a 64x speedup over naive per-vector evaluation, and Python's
  big integers allow arbitrarily many vectors per call.
* **NumPy vectors** — inputs are ``numpy.ndarray`` of an unsigned dtype; all
  gate evaluations become element-wise array ops.

Because nets are stored in topological order, simulation is a single linear
pass.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .gates import GATE_SPECS, is_input_op
from .netlist import Circuit, CircuitError

__all__ = [
    "simulate",
    "simulate_words",
    "simulate_bus_ints",
    "bus_to_int",
    "int_to_bus",
    "random_stimulus",
]

Word = Union[int, np.ndarray]


def int_to_bus(value: int, width: int) -> List[int]:
    """Split *value* into *width* single-bit words, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def bus_to_int(bits: Sequence[int]) -> int:
    """Assemble single-bit words (LSB first) into one integer."""
    out = 0
    for i, b in enumerate(bits):
        out |= (b & 1) << i
    return out


def simulate(circuit: Circuit, stimulus: Mapping[str, Sequence[Word]],
             num_vectors: Optional[int] = None) -> Dict[str, List[Word]]:
    """Simulate *circuit* on bit-parallel stimulus.

    Args:
        circuit: Circuit to evaluate.
        stimulus: Mapping from input bus name to a list of per-bit words
            (LSB first).  Each word packs one bit of every test vector.
        num_vectors: Number of packed test vectors.  Required for Python-int
            words (it defines the negation mask); inferred from the dtype
            for NumPy words.

    Returns:
        Mapping from output bus name to per-bit words, LSB first.
    """
    values: List[Optional[Word]] = [None] * len(circuit.nets)
    mask: Optional[Word] = None

    for name, bus in circuit.inputs.items():
        if name not in stimulus:
            raise CircuitError(f"missing stimulus for input {name!r}")
        words = stimulus[name]
        if len(words) != len(bus):
            raise CircuitError(
                f"input {name!r} expects {len(bus)} bit-words, got {len(words)}")
        for nid, word in zip(bus, words):
            values[nid] = word
            if mask is None:
                mask = _mask_for(word, num_vectors)
    if mask is None:
        mask = _mask_for(0, num_vectors)

    for net in circuit.topological_nets():
        op = net.op
        if op == "INPUT":
            if values[net.nid] is None:
                raise CircuitError(
                    f"input net {net.name!r} received no stimulus")
            continue
        if op == "CONST0":
            values[net.nid] = _zeros_like(mask)
            continue
        if op == "CONST1":
            values[net.nid] = _copy(mask)
            continue
        spec = GATE_SPECS[op]
        operands = [values[f] for f in net.fanins]
        values[net.nid] = spec.evaluate(mask, *operands)

    return {
        name: [values[nid] for nid in bus]
        for name, bus in circuit.outputs.items()
    }


def _mask_for(sample: Word, num_vectors: Optional[int]) -> Word:
    if isinstance(sample, np.ndarray):
        info = np.iinfo(sample.dtype)
        return np.full(sample.shape, info.max, dtype=sample.dtype)
    if num_vectors is None:
        raise CircuitError("num_vectors is required for Python-int stimulus")
    if num_vectors <= 0:
        raise CircuitError("num_vectors must be positive")
    return (1 << num_vectors) - 1


def _zeros_like(mask: Word) -> Word:
    if isinstance(mask, np.ndarray):
        return np.zeros_like(mask)
    return 0


def _copy(mask: Word) -> Word:
    if isinstance(mask, np.ndarray):
        return mask.copy()
    return mask


def simulate_words(circuit: Circuit, stimulus: Mapping[str, Sequence[int]],
                   num_vectors: int) -> Dict[str, List[int]]:
    """Alias of :func:`simulate` for Python-int words (explicit vector count)."""
    return simulate(circuit, stimulus, num_vectors=num_vectors)


def simulate_bus_ints(circuit: Circuit,
                      values: Mapping[str, int]) -> Dict[str, int]:
    """Single-vector convenience wrapper: integers in, integers out.

    Args:
        circuit: Circuit to evaluate.
        values: Mapping from input bus name to its integer value (bit ``i``
            of the integer drives bus bit ``i``).

    Returns:
        Mapping from output bus name to its integer value.
    """
    stimulus = {
        name: int_to_bus(values[name], len(bus))
        for name, bus in circuit.inputs.items()
    }
    out = simulate(circuit, stimulus, num_vectors=1)
    return {name: bus_to_int(bits) for name, bits in out.items()}


def random_stimulus(circuit: Circuit, num_vectors: int,
                    rng: Optional[np.random.Generator] = None
                    ) -> Dict[str, List[int]]:
    """Uniform random bit-parallel stimulus for every input bus.

    Args:
        circuit: Circuit whose inputs are to be driven.
        num_vectors: Number of packed random test vectors.
        rng: Optional NumPy generator for reproducibility.

    Returns:
        Stimulus mapping suitable for :func:`simulate_words`.
    """
    rng = rng or np.random.default_rng()
    stim: Dict[str, List[int]] = {}
    for name, bus in circuit.inputs.items():
        words = []
        for _ in bus:
            word = 0
            # Draw 62-bit chunks to stay clear of signed-int pitfalls.
            remaining = num_vectors
            while remaining > 0:
                take = min(62, remaining)
                word = (word << take) | int(rng.integers(0, 1 << take))
                remaining -= take
            words.append(word)
        stim[name] = words
    return stim
