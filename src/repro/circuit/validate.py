"""Structural and functional validation of netlists.

``check_structure`` enforces the invariants every generator must maintain;
``equivalence`` utilities compare a circuit against a Python reference
function, either exhaustively (small operand widths) or on random vectors.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from .gates import gate_spec
from .netlist import Circuit, CircuitError

__all__ = [
    "check_structure",
    "assert_equivalent_exhaustive",
    "assert_equivalent_random",
]


def check_structure(circuit: Circuit) -> None:
    """Validate structural invariants, raising :class:`CircuitError` on failure.

    Checks: fanins precede their gate (acyclicity by construction), arities
    match the gate specs, input nets really are INPUT ops, and every
    registered output id is in range.
    """
    for net in circuit.nets:
        spec = gate_spec(net.op)
        if net.op == "DFF":
            if len(net.fanins) != 1:
                raise CircuitError(
                    f"DFF {net.nid} is not connected (use connect_dff)")
            if not (0 <= net.fanins[0] < len(circuit.nets)):
                raise CircuitError(
                    f"DFF {net.nid} has missing fanin {net.fanins[0]}")
            continue  # feedback through a register is legal
        if spec.arity >= 0 and len(net.fanins) != spec.arity:
            raise CircuitError(
                f"net {net.nid} ({net.op}) has {len(net.fanins)} fanins, "
                f"expected {spec.arity}")
        if spec.arity < 0 and len(net.fanins) < 2:
            raise CircuitError(
                f"variadic net {net.nid} ({net.op}) has <2 fanins")
        for f in net.fanins:
            if not (0 <= f < net.nid):
                raise CircuitError(
                    f"net {net.nid} has non-topological fanin {f}")
    for name, bus in circuit.inputs.items():
        for nid in bus:
            if circuit.nets[nid].op != "INPUT":
                raise CircuitError(
                    f"input bus {name!r} contains non-INPUT net {nid}")
    for name, bus in circuit.outputs.items():
        for nid in bus:
            if not (0 <= nid < len(circuit.nets)):
                raise CircuitError(
                    f"output bus {name!r} references missing net {nid}")


def _run_vectors(circuit: Circuit, vectors: Mapping[str, np.ndarray],
                 count: int) -> Dict[str, np.ndarray]:
    """Evaluate per-vector integers through the compiled engine."""
    from ..engine import execute_ints

    ints = {name: [int(v) for v in vectors[name]] for name in circuit.inputs}
    out = execute_ints(circuit, ints)
    return {name: np.array(vals, dtype=object)
            for name, vals in out.items()}


def assert_equivalent_exhaustive(
        circuit: Circuit,
        reference: Callable[..., Dict[str, int]],
        max_bits: int = 14) -> None:
    """Exhaustively compare *circuit* against *reference*.

    Args:
        circuit: Circuit under test.
        reference: Callable receiving keyword integers (one per input bus)
            and returning the expected output mapping.
        max_bits: Safety cap on total input bits to enumerate.
    """
    names = list(circuit.inputs)
    widths = [len(circuit.inputs[n]) for n in names]
    total = sum(widths)
    if total > max_bits:
        raise CircuitError(
            f"{total} input bits exceeds exhaustive cap of {max_bits}")
    count = 1 << total
    vectors = {n: np.zeros(count, dtype=object) for n in names}
    for idx in range(count):
        rest = idx
        for n, w in zip(names, widths):
            vectors[n][idx] = rest & ((1 << w) - 1)
            rest >>= w
    outs = _run_vectors(circuit, vectors, count)
    for idx in range(count):
        expected = reference(**{n: int(vectors[n][idx]) for n in names})
        for oname, oval in expected.items():
            got = int(outs[oname][idx])
            if got != oval:
                stim_desc = {n: int(vectors[n][idx]) for n in names}
                raise AssertionError(
                    f"{circuit.name}: output {oname!r} mismatch on "
                    f"{stim_desc}: got {got}, expected {oval}")


def assert_equivalent_random(
        circuit: Circuit,
        reference: Callable[..., Dict[str, int]],
        num_vectors: int = 256,
        seed: Optional[int] = 0) -> None:
    """Compare *circuit* against *reference* on random vectors.

    Args:
        circuit: Circuit under test.
        reference: Callable receiving keyword integers (one per input bus)
            and returning the expected output mapping.
        num_vectors: How many random vectors to check.
        seed: RNG seed (None for nondeterministic).
    """
    rng = np.random.default_rng(seed)
    names = list(circuit.inputs)
    vectors: Dict[str, np.ndarray] = {}
    for n in names:
        w = len(circuit.inputs[n])
        nbytes = (w + 7) // 8
        mask = (1 << w) - 1
        vals = np.zeros(num_vectors, dtype=object)
        for j in range(num_vectors):
            vals[j] = int.from_bytes(rng.bytes(nbytes), "little") & mask
        vectors[n] = vals
    outs = _run_vectors(circuit, vectors, num_vectors)
    for idx in range(num_vectors):
        expected = reference(**{n: int(vectors[n][idx]) for n in names})
        for oname, oval in expected.items():
            got = int(outs[oname][idx])
            if got != oval:
                stim_desc = {n: int(vectors[n][idx]) for n in names}
                raise AssertionError(
                    f"{circuit.name}: output {oname!r} mismatch on "
                    f"{stim_desc}: got {got}, expected {oval}")
