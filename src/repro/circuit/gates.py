"""Gate (cell) semantics for the netlist framework.

Every net in a :class:`~repro.circuit.netlist.Circuit` is driven by one of
the operations defined here.  An operation is described by a
:class:`GateSpec` that records its arity, whether its inputs commute (used
for structural hashing), and a bitwise evaluation function.

Evaluation functions operate on *bit-parallel* words: each operand is either
a Python ``int`` whose bit ``j`` holds the value of test vector ``j``, or a
``numpy`` unsigned-integer array.  Bitwise operators behave identically for
both, except for negation, which needs an explicit ``mask`` for Python ints
(Python integers are infinite-precision two's complement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["GateSpec", "GATE_SPECS", "INPUT_OPS", "is_input_op", "gate_spec"]


@dataclass(frozen=True)
class GateSpec:
    """Static description of one gate (cell) type.

    Attributes:
        name: Canonical operation name, e.g. ``"AND"``.
        arity: Number of fanins; ``-1`` means variadic (>= 2).
        commutative: Whether fanin order is irrelevant (enables CSE
            canonicalisation by sorting fanins).
        evaluate: Bitwise evaluation ``f(mask, *operands) -> word``.
    """

    name: str
    arity: int
    commutative: bool
    evaluate: Callable[..., int]


# NOTE: evaluators must never use in-place operators (&=, |=, ^=): numpy
# array operands are shared with the caller's stimulus and other nets, and
# in-place updates would silently corrupt them.

def _eval_and(mask, *xs):
    acc = xs[0]
    for x in xs[1:]:
        acc = acc & x
    return acc


def _eval_or(mask, *xs):
    acc = xs[0]
    for x in xs[1:]:
        acc = acc | x
    return acc


def _eval_xor(mask, *xs):
    acc = xs[0]
    for x in xs[1:]:
        acc = acc ^ x
    return acc


def _eval_nand(mask, *xs):
    return _eval_and(mask, *xs) ^ mask


def _eval_nor(mask, *xs):
    return _eval_or(mask, *xs) ^ mask


def _eval_xnor(mask, *xs):
    return _eval_xor(mask, *xs) ^ mask


def _eval_not(mask, x):
    return x ^ mask


def _eval_buf(mask, x):
    return x


def _eval_ao21(mask, a, b, c):
    """AND-OR cell: ``(a & b) | c`` — the carry-operator gate ``g + p*g'``."""
    return (a & b) | c


def _eval_oa21(mask, a, b, c):
    """OR-AND cell: ``(a | b) & c``."""
    return (a | b) & c


def _eval_mux2(mask, s, a, b):
    """2:1 multiplexer: ``a`` when ``s`` is 1 else ``b``."""
    return (a & s) | (b & (s ^ mask))


def _eval_maj3(mask, a, b, c):
    """Majority-of-three — the full-adder carry cell."""
    return (a & b) | (a & c) | (b & c)


def _eval_const0(mask):
    return 0


def _eval_const1(mask):
    return mask


def _eval_input(mask):  # pragma: no cover - inputs are never evaluated
    raise RuntimeError("primary inputs have no evaluation function")


def _eval_dff(mask, d):  # pragma: no cover - state handled by sequential sim
    raise RuntimeError(
        "DFF outputs are state: use repro.circuit.sequential to simulate")


#: Registry of all supported gate types.
GATE_SPECS: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in (
        GateSpec("INPUT", 0, False, _eval_input),
        GateSpec("CONST0", 0, False, _eval_const0),
        GateSpec("CONST1", 0, False, _eval_const1),
        GateSpec("BUF", 1, False, _eval_buf),
        GateSpec("NOT", 1, False, _eval_not),
        GateSpec("AND", -1, True, _eval_and),
        GateSpec("OR", -1, True, _eval_or),
        GateSpec("XOR", -1, True, _eval_xor),
        GateSpec("NAND", -1, True, _eval_nand),
        GateSpec("NOR", -1, True, _eval_nor),
        GateSpec("XNOR", -1, True, _eval_xnor),
        GateSpec("AO21", 3, False, _eval_ao21),
        GateSpec("OA21", 3, False, _eval_oa21),
        GateSpec("MUX2", 3, False, _eval_mux2),
        GateSpec("MAJ3", 3, True, _eval_maj3),
        GateSpec("DFF", 1, False, _eval_dff),
    )
}

#: Operations that have no fanins and represent circuit entry points.
INPUT_OPS: Tuple[str, ...] = ("INPUT", "CONST0", "CONST1")


def is_input_op(op: str) -> bool:
    """Return True if *op* is a source (input or constant) operation."""
    return op in INPUT_OPS


def is_state_op(op: str) -> bool:
    """Return True if *op* is a sequential state element."""
    return op == "DFF"


def gate_spec(op: str) -> GateSpec:
    """Look up the :class:`GateSpec` for *op*, raising ``KeyError`` if unknown."""
    try:
        return GATE_SPECS[op]
    except KeyError:
        raise KeyError(f"unknown gate operation {op!r}") from None
