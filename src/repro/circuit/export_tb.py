"""Self-checking HDL testbench generation.

The paper's flow emits VHDL and trusts the synthesis tool; a production
release also ships testbenches.  Given a circuit, this module simulates a
set of stimulus vectors with the golden Python model and renders a
self-checking Verilog testbench that applies each vector and compares
against the recorded responses (so the emitted RTL can be validated in
any simulator without this library present).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .export_verilog import _sanitize, to_verilog
from .netlist import Circuit, CircuitError

__all__ = ["to_verilog_testbench"]


def _random_vectors(circuit: Circuit, count: int, seed: Optional[int]
                    ) -> List[Dict[str, int]]:
    rng = np.random.default_rng(seed)
    vectors = []
    for _ in range(count):
        vec = {}
        for name, bus in circuit.inputs.items():
            width = len(bus)
            value = 0
            remaining = width
            while remaining > 0:
                take = min(62, remaining)
                value = (value << take) | int(rng.integers(0, 1 << take))
                remaining -= take
            vec[name] = value
        vectors.append(vec)
    return vectors


def to_verilog_testbench(circuit: Circuit, num_vectors: int = 32,
                         vectors: Optional[Sequence[Dict[str, int]]] = None,
                         seed: Optional[int] = 0,
                         module_name: Optional[str] = None) -> str:
    """Render a self-checking Verilog testbench for *circuit*.

    Args:
        circuit: Circuit under test (its module comes from
            :func:`~repro.circuit.export_verilog.to_verilog`).
        num_vectors: Number of random vectors when *vectors* is None.
        vectors: Explicit stimulus: one dict (bus name -> int) per vector.
        seed: RNG seed for random stimulus.
        module_name: Override the DUT module name.

    Returns:
        Verilog source containing the testbench module ``tb`` (the DUT
        module itself is *not* included; emit it with ``to_verilog``).
    """
    if not circuit.outputs:
        raise CircuitError("circuit has no outputs to check")
    if circuit.is_sequential():
        raise CircuitError("testbench generation handles combinational "
                           "circuits only (drive sequential designs with "
                           "repro.circuit.sequential)")
    vecs = list(vectors) if vectors is not None else _random_vectors(
        circuit, num_vectors, seed)
    if not vecs:
        raise CircuitError("need at least one test vector")

    # Golden responses via the compiled engine (bit-parallel).
    from ..engine import execute_ints

    count = len(vecs)
    out_ints = execute_ints(
        circuit, {name: [vec[name] for vec in vecs]
                  for name in circuit.inputs})
    responses: List[Dict[str, int]] = [
        {name: out_ints[name][j] for name in circuit.outputs}
        for j in range(count)]

    dut = _sanitize(module_name or circuit.name)
    lines: List[str] = [
        "`timescale 1ns/1ps",
        "module tb;",
    ]
    for name, bus in circuit.inputs.items():
        rng_decl = "" if len(bus) == 1 else f"[{len(bus) - 1}:0] "
        lines.append(f"  reg  {rng_decl}{_sanitize(name)};")
    for name, bus in circuit.outputs.items():
        rng_decl = "" if len(bus) == 1 else f"[{len(bus) - 1}:0] "
        lines.append(f"  wire {rng_decl}{_sanitize(name)};")
    lines.append("  integer errors;")
    ports = ", ".join(
        f".{_sanitize(n)}({_sanitize(n)})"
        for n in list(circuit.inputs) + list(circuit.outputs))
    lines.append(f"  {dut} dut ({ports});")
    lines.append("  initial begin")
    lines.append("    errors = 0;")
    for vec, resp in zip(vecs, responses):
        for name, bus in circuit.inputs.items():
            lines.append(
                f"    {_sanitize(name)} = {len(bus)}'h{vec[name]:x};")
        lines.append("    #1;")
        for name, bus in circuit.outputs.items():
            sig = _sanitize(name)
            expect = f"{len(bus)}'h{resp[name]:x}"
            lines.append(
                f"    if ({sig} !== {expect}) begin "
                f"errors = errors + 1; "
                f"$display(\"FAIL {sig}: got %h expected {expect}\", {sig});"
                f" end")
    lines.append("    if (errors == 0) $display(\"ALL %0d VECTORS PASS\","
                 f" {count});")
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)
