"""Deterministic test-pattern generation (ATPG) for stuck-at faults.

Random patterns (see :func:`repro.circuit.faults.fault_coverage`) catch
most faults cheaply but leave a tail and prove nothing about the misses.
This module closes the loop with a symbolic step: for each fault, the
XOR *miter* between the good circuit and the faulty circuit is built as
a BDD — any satisfying assignment is a test vector, and an unsatisfiable
miter *proves* the fault untestable (redundant logic).

The generator runs in two phases like production ATPG: random patterns
with fault dropping first, then BDD-based generation for the survivors,
followed by greedy compaction of the final test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .bdd import Bdd, build_output_bdds, interleaved_order
from .faults import StuckAtFault, enumerate_faults, simulate_with_fault
from .netlist import Circuit
from .simulate import simulate_words

__all__ = ["AtpgResult", "generate_tests", "fault_bdd_test"]


def _faulty_bdds(circuit: Circuit, manager: Bdd, order: Dict[int, int],
                 fault: StuckAtFault) -> Dict[str, List[int]]:
    """Output BDDs of the circuit with *fault* injected."""
    values: List[Optional[int]] = [None] * len(circuit.nets)
    for name, bus in circuit.inputs.items():
        for nid in bus:
            values[nid] = manager.var(order[nid])

    from .gates import GATE_SPECS  # noqa: F401  (documented dependency)

    for net in circuit.topological_nets():
        if net.op == "INPUT":
            pass
        elif net.op == "CONST0":
            values[net.nid] = Bdd.FALSE
        elif net.op == "CONST1":
            values[net.nid] = Bdd.TRUE
        else:
            args = [values[f] for f in net.fanins]
            values[net.nid] = _apply(manager, net.op, args)
        if net.nid == fault.nid:
            values[net.nid] = Bdd.TRUE if fault.value else Bdd.FALSE

    return {name: [values[nid] for nid in bus]
            for name, bus in circuit.outputs.items()}


def _apply(manager: Bdd, op: str, args: List[int]) -> int:
    if op == "NOT":
        return manager.apply_not(args[0])
    if op == "BUF":
        return args[0]
    if op in ("AND", "NAND", "OR", "NOR", "XOR", "XNOR"):
        fold = {"AND": manager.apply_and, "NAND": manager.apply_and,
                "OR": manager.apply_or, "NOR": manager.apply_or,
                "XOR": manager.apply_xor, "XNOR": manager.apply_xor}[op]
        out = args[0]
        for x in args[1:]:
            out = fold(out, x)
        if op in ("NAND", "NOR", "XNOR"):
            out = manager.apply_not(out)
        return out
    if op == "AO21":
        return manager.apply_or(manager.apply_and(args[0], args[1]),
                                args[2])
    if op == "OA21":
        return manager.apply_and(manager.apply_or(args[0], args[1]),
                                 args[2])
    if op == "MUX2":
        return manager.ite(args[0], args[1], args[2])
    if op == "MAJ3":
        a, b, c = args
        return manager.apply_or(
            manager.apply_or(manager.apply_and(a, b),
                             manager.apply_and(a, c)),
            manager.apply_and(b, c))
    raise ValueError(f"cannot translate op {op!r}")


def fault_bdd_test(circuit: Circuit,
                   fault: StuckAtFault) -> Optional[Dict[str, int]]:
    """A test vector detecting *fault*, or None if it is untestable.

    Builds the good/faulty miter symbolically; the BDD makes the
    untestable verdict a proof, not a sampling failure.
    """
    order = interleaved_order(circuit)
    manager = Bdd(len(order))
    good = build_output_bdds(circuit, manager, order)
    bad = _faulty_bdds(circuit, manager, order, fault)

    miter = Bdd.FALSE
    for name in circuit.outputs:
        for fg, fb in zip(good[name], bad[name]):
            miter = manager.apply_or(miter, manager.apply_xor(fg, fb))
    assignment = manager.any_sat(miter)
    if assignment is None:
        return None
    vector: Dict[str, int] = {}
    for name, bus in circuit.inputs.items():
        value = 0
        for bit, nid in enumerate(bus):
            value |= assignment[order[nid]] << bit
        vector[name] = value
    return vector


@dataclass
class AtpgResult:
    """Outcome of test generation."""

    vectors: List[Dict[str, int]]
    detected: int
    untestable: List[StuckAtFault]
    total_faults: int

    @property
    def coverage(self) -> float:
        """Detected / testable faults (untestable ones excluded)."""
        testable = self.total_faults - len(self.untestable)
        return self.detected / testable if testable else 1.0


def _detects(circuit: Circuit, vectors: List[Dict[str, int]],
             faults: List[StuckAtFault]) -> List[bool]:
    """Which *faults* are detected by *vectors* (bit-parallel)."""
    if not vectors:
        return [False] * len(faults)
    from ..engine.pack import pack_vectors

    count = len(vectors)
    stim: Dict[str, List[int]] = {
        name: pack_vectors([vec[name] for vec in vectors], len(bus))
        for name, bus in circuit.inputs.items()}
    golden = simulate_words(circuit, stim, count)
    hits = []
    for fault in faults:
        out = simulate_with_fault(circuit, fault, stim, count)
        hits.append(any(out[n][b] != golden[n][b]
                        for n in circuit.outputs
                        for b in range(len(golden[n]))))
    return hits


def generate_tests(circuit: Circuit, random_vectors: int = 64,
                   seed: Optional[int] = 0,
                   compact: bool = True) -> AtpgResult:
    """Generate a complete stuck-at test set for *circuit*.

    Phase 1 applies random patterns with fault dropping; phase 2 targets
    each surviving fault with a BDD miter (proving untestability where no
    vector exists); an optional greedy pass drops vectors that detect no
    otherwise-undetected fault.
    """
    faults = enumerate_faults(circuit)
    rng = np.random.default_rng(seed)

    vectors: List[Dict[str, int]] = []
    for _ in range(random_vectors):
        vec = {}
        for name, bus in circuit.inputs.items():
            value = 0
            for chunk in range((len(bus) + 61) // 62):
                take = min(62, len(bus) - chunk * 62)
                value |= int(rng.integers(0, 1 << take)) << (chunk * 62)
            vec[name] = value
        vectors.append(vec)

    hits = _detects(circuit, vectors, faults)
    remaining = [f for f, hit in zip(faults, hits) if not hit]

    untestable: List[StuckAtFault] = []
    for fault in remaining:
        vec = fault_bdd_test(circuit, fault)
        if vec is None:
            untestable.append(fault)
        else:
            vectors.append(vec)

    if compact:
        vectors = _compact(circuit, vectors, faults, untestable)

    final_hits = _detects(circuit, vectors, faults)
    detected = sum(final_hits)
    return AtpgResult(vectors, detected, untestable, len(faults))


def _compact(circuit: Circuit, vectors: List[Dict[str, int]],
             faults: List[StuckAtFault],
             untestable: List[StuckAtFault]) -> List[Dict[str, int]]:
    """Greedy reverse-order compaction: drop vectors whose faults are
    all covered by the kept set."""
    testable = [f for f in faults if f not in set(untestable)]
    per_vector = [
        set(i for i, hit in enumerate(_detects(circuit, [vec], testable))
            if hit)
        for vec in vectors
    ]
    kept: List[int] = []
    covered: set = set()
    # Greedy largest-gain selection.
    remaining = set(range(len(vectors)))
    target = set()
    for s in per_vector:
        target |= s
    while covered != target and remaining:
        best = max(remaining, key=lambda i: len(per_vector[i] - covered))
        if not (per_vector[best] - covered):
            break
        kept.append(best)
        covered |= per_vector[best]
        remaining.discard(best)
    return [vectors[i] for i in sorted(kept)]
