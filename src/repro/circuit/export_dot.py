"""Graphviz DOT export for visual inspection of small circuits."""

from __future__ import annotations

from .gates import is_input_op
from .netlist import Circuit

__all__ = ["to_dot"]

_SHAPES = {
    "INPUT": ("box", "lightblue"),
    "CONST0": ("box", "gray90"),
    "CONST1": ("box", "gray90"),
    "AND": ("ellipse", "white"),
    "OR": ("ellipse", "white"),
    "XOR": ("ellipse", "lightyellow"),
    "AO21": ("hexagon", "lightpink"),
    "OA21": ("hexagon", "lightpink"),
    "MUX2": ("trapezium", "lightgreen"),
}


def to_dot(circuit: Circuit, live_only: bool = True) -> str:
    """Render *circuit* in Graphviz DOT format.

    Args:
        circuit: Circuit to render.
        live_only: Only include logic reachable from registered outputs.

    Returns:
        DOT source text.
    """
    live = (circuit.reachable_from_outputs()
            if live_only and circuit.outputs else [True] * len(circuit.nets))
    out_names = {}
    for name, bus in circuit.outputs.items():
        for i, nid in enumerate(bus):
            label = name if len(bus) == 1 else f"{name}[{i}]"
            out_names.setdefault(nid, []).append(label)

    lines = [f'digraph "{circuit.name}" {{', "  rankdir=BT;"]
    for net in circuit.nets:
        if not live[net.nid]:
            continue
        shape, fill = _SHAPES.get(net.op, ("ellipse", "white"))
        label = net.name if net.name else net.op
        if net.nid in out_names:
            label += "\\n-> " + ",".join(out_names[net.nid])
        lines.append(
            f'  n{net.nid} [label="{label}", shape={shape}, '
            f'style=filled, fillcolor={fill}];')
    for net in circuit.nets:
        if not live[net.nid]:
            continue
        for f in net.fanins:
            lines.append(f"  n{f} -> n{net.nid};")
    lines.append("}")
    return "\n".join(lines) + "\n"
