"""Buffer-tree insertion for high-fanout nets.

The timing model charges ``fanout_delay * log2(fanout)`` per gate, which
assumes the synthesis tool buffers big nets.  This pass makes that
assumption explicit: nets whose fanout exceeds a threshold get a balanced
tree of BUF cells, bounding every net's fanout at the cost of buffer area
and one buffer delay per tree level — the classical trade a designer can
now measure instead of assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .gates import is_input_op
from .netlist import Circuit

__all__ = ["BufferStats", "insert_buffers"]


@dataclass
class BufferStats:
    """Summary of a buffering pass."""

    buffers_added: int
    nets_buffered: int
    max_fanout_before: int
    max_fanout_after: int


def insert_buffers(circuit: Circuit, max_fanout: int = 4
                   ) -> "tuple[Circuit, BufferStats]":
    """Return a copy of *circuit* with no net driving more than
    *max_fanout* sinks (outputs excluded — they are not gate loads).

    Sinks are distributed over a balanced tree of BUF cells.  Buses and
    attributes are preserved; net ids change.
    """
    if max_fanout < 2:
        raise ValueError("max_fanout must be >= 2")
    if circuit.is_sequential():
        raise ValueError("insert_buffers handles combinational circuits "
                         "only")
    before = circuit.max_fanout()

    new = Circuit(circuit.name, use_strash=False, fold_constants=False)
    remap: Dict[int, int] = {}
    for name, bus in circuit.inputs.items():
        if len(bus) == 1 and circuit.nets[bus[0]].name == name:
            remap[bus[0]] = new.add_input(name, pos=circuit.nets[bus[0]].pos)
        else:
            fresh = new.add_input_bus(name, len(bus))
            for old, nid in zip(bus, fresh):
                remap[old] = nid

    # Count gate sinks per net in the original circuit.
    fanouts = circuit.fanout_counts()

    # For each buffered net we hand out leaves round-robin.
    taps: Dict[int, List[int]] = {}
    served: Dict[int, int] = {}
    buffers_added = 0
    nets_buffered = 0

    def leaf_for(old_nid: int) -> int:
        """The net a consumer of *old_nid* should connect to."""
        if old_nid not in taps:
            return remap[old_nid]
        idx = served[old_nid]
        served[old_nid] = idx + 1
        leaves = taps[old_nid]
        return leaves[idx % len(leaves)]

    def build_taps(old_nid: int) -> None:
        nonlocal buffers_added, nets_buffered
        count = fanouts[old_nid]
        if count <= max_fanout:
            return
        import math

        num_leaves = math.ceil(count / max_fanout)
        nets_buffered += 1
        src = remap[old_nid]
        pos = circuit.nets[old_nid].pos
        # Build levels of buffers until enough leaves exist, each level
        # fanning out at most max_fanout from the previous.
        level = [src]
        while len(level) < num_leaves:
            nxt: List[int] = []
            for drv in level:
                if len(nxt) >= num_leaves:
                    break
                for _ in range(max_fanout):
                    if len(nxt) >= num_leaves:
                        break
                    nxt.append(new.add_gate("BUF", drv, pos=pos))
                    buffers_added += 1
            level = nxt
        taps[old_nid] = level
        served[old_nid] = 0

    for net in circuit.topological_nets():
        if net.nid in remap:
            build_taps(net.nid)
            continue
        if net.op == "CONST0":
            remap[net.nid] = new.const(0)
        elif net.op == "CONST1":
            remap[net.nid] = new.const(1)
        elif net.op == "INPUT":
            remap[net.nid] = new.add_input(net.name or f"in{net.nid}",
                                           pos=net.pos)
        else:
            new_fanins = [leaf_for(f) for f in net.fanins]
            remap[net.nid] = new._new_net(net.op, tuple(new_fanins),
                                          name=net.name, pos=net.pos)
        build_taps(net.nid)

    for name, bus in circuit.outputs.items():
        new.set_output(name, [remap[nid] for nid in bus])
    new.attrs.update(circuit.attrs)

    return new, BufferStats(buffers_added, nets_buffered, before,
                            new.max_fanout())
