"""Netlist clean-up passes.

Structural hashing and constant folding already run during construction
(:meth:`Circuit.add_gate`), so the passes here handle what those cannot:
sweeping logic that no registered output depends on, and compacting net ids
after a sweep.  ``rebuild`` re-runs folding/hashing over an existing circuit,
which also canonicalises circuits that were built with those features off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .gates import is_input_op
from .netlist import Circuit, CircuitError

__all__ = ["OptStats", "sweep_dead_logic", "rebuild"]


@dataclass
class OptStats:
    """Before/after gate counts of an optimisation pass."""

    gates_before: int
    gates_after: int

    @property
    def removed(self) -> int:
        return self.gates_before - self.gates_after


def sweep_dead_logic(circuit: Circuit) -> "tuple[Circuit, OptStats]":
    """Return a copy of *circuit* without logic unreachable from outputs.

    Primary inputs are always kept (ports are part of the interface even if
    a bit is unused).  Net ids are compacted; bus registrations are
    remapped.  Sequential circuits are not supported.
    """
    if circuit.is_sequential():
        raise CircuitError("sweep_dead_logic handles combinational "
                           "circuits only")
    before = circuit.gate_count()
    live = circuit.reachable_from_outputs()
    new = Circuit(circuit.name, use_strash=circuit.use_strash,
                  fold_constants=False)
    remap: Dict[int, int] = {}

    for name, bus in circuit.inputs.items():
        if len(bus) == 1 and circuit.nets[bus[0]].name == name:
            remap[bus[0]] = new.add_input(name, pos=circuit.nets[bus[0]].pos)
        else:
            new_bus = new.add_input_bus(name, len(bus))
            for old, fresh in zip(bus, new_bus):
                remap[old] = fresh

    for net in circuit.topological_nets():
        if net.nid in remap or not live[net.nid]:
            continue
        if net.op == "CONST0":
            remap[net.nid] = new.const(0)
        elif net.op == "CONST1":
            remap[net.nid] = new.const(1)
        elif net.op == "INPUT":
            # Unreachable-but-registered inputs were handled above; a loose
            # INPUT not in any bus should not exist, but keep it for safety.
            remap[net.nid] = new.add_input(net.name or f"in{net.nid}",
                                           pos=net.pos)
        else:
            remap[net.nid] = new.add_gate(
                net.op, *[remap[f] for f in net.fanins], name=net.name,
                pos=net.pos)

    for name, bus in circuit.outputs.items():
        new.set_output(name, [remap[nid] for nid in bus])
    new.attrs.update(circuit.attrs)
    return new, OptStats(before, new.gate_count())


def rebuild(circuit: Circuit, use_strash: bool = True,
            fold_constants: bool = True) -> "tuple[Circuit, OptStats]":
    """Re-run structural hashing and constant folding over *circuit*.

    Useful to canonicalise circuits deserialised from JSON or built with
    hashing disabled.  Also drops dead logic as a side effect (only nets in
    the output cone are re-created).  Sequential circuits are not
    supported.
    """
    if circuit.is_sequential():
        raise CircuitError("rebuild handles combinational circuits only")
    before = circuit.gate_count()
    live = circuit.reachable_from_outputs()
    new = Circuit(circuit.name, use_strash=use_strash,
                  fold_constants=fold_constants)
    remap: Dict[int, int] = {}

    for name, bus in circuit.inputs.items():
        if len(bus) == 1 and circuit.nets[bus[0]].name == name:
            remap[bus[0]] = new.add_input(name, pos=circuit.nets[bus[0]].pos)
        else:
            new_bus = new.add_input_bus(name, len(bus))
            for old, fresh in zip(bus, new_bus):
                remap[old] = fresh

    for net in circuit.topological_nets():
        if net.nid in remap or not live[net.nid]:
            continue
        if net.op == "CONST0":
            remap[net.nid] = new.const(0)
        elif net.op == "CONST1":
            remap[net.nid] = new.const(1)
        elif net.op == "INPUT":
            remap[net.nid] = new.add_input(net.name or f"in{net.nid}",
                                           pos=net.pos)
        else:
            remap[net.nid] = new.add_gate(
                net.op, *[remap[f] for f in net.fanins], pos=net.pos)

    for name, bus in circuit.outputs.items():
        new.set_output(name, [remap[nid] for nid in bus])
    new.attrs.update(circuit.attrs)
    return new, OptStats(before, new.gate_count())
