"""Human-readable circuit reports: gates, depth, fanout, timing, area."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .area import analyze_area
from .netlist import Circuit
from .techlib import TechLibrary, UMC180
from .timing import analyze_timing

__all__ = ["CircuitStats", "collect_stats", "format_stats"]


@dataclass
class CircuitStats:
    """Summary metrics of one circuit under one library."""

    name: str
    library: str
    inputs: int
    outputs: int
    gates: int
    depth: int
    max_fanout: int
    critical_delay: float
    area: float
    op_histogram: Dict[str, int]
    critical_path_ops: List[str]


def collect_stats(circuit: Circuit,
                  library: TechLibrary = UMC180) -> CircuitStats:
    """Gather every headline metric for *circuit* in one pass."""
    timing = analyze_timing(circuit, library)
    area = analyze_area(circuit, library)
    hist = {op: n for op, n in sorted(circuit.op_histogram().items())
            if op not in ("INPUT", "CONST0", "CONST1")}
    return CircuitStats(
        name=circuit.name,
        library=library.name,
        inputs=sum(len(b) for b in circuit.inputs.values()),
        outputs=sum(len(b) for b in circuit.outputs.values()),
        gates=circuit.gate_count(),
        depth=circuit.logic_depth(),
        max_fanout=circuit.max_fanout(),
        critical_delay=timing.critical_delay,
        area=area.total,
        op_histogram=hist,
        critical_path_ops=timing.path_ops(circuit),
    )


def format_stats(stats: CircuitStats) -> str:
    """Render a :class:`CircuitStats` as an aligned text block."""
    lines = [
        f"circuit        : {stats.name}",
        f"library        : {stats.library}",
        f"ports          : {stats.inputs} in / {stats.outputs} out",
        f"gates          : {stats.gates}",
        f"logic depth    : {stats.depth}",
        f"max fanout     : {stats.max_fanout}",
        f"critical delay : {stats.critical_delay:.3f}",
        f"area           : {stats.area:.1f}",
        "gate histogram : " + ", ".join(
            f"{op}x{n}" for op, n in stats.op_histogram.items()),
        "critical path  : " + " -> ".join(stats.critical_path_ops),
    ]
    return "\n".join(lines)
