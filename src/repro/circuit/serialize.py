"""JSON (de)serialisation of circuits.

The on-disk format is a plain dictionary: net records in topological order
plus bus registrations.  Round-tripping through JSON preserves semantics
exactly (net ids may shift if the reader re-enables structural hashing; use
``use_strash=False`` when byte-identical reconstruction matters).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .netlist import Circuit, CircuitError

__all__ = ["circuit_to_dict", "circuit_from_dict", "dumps", "loads",
           "save", "load"]

_FORMAT_VERSION = 1


def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Serialise *circuit* into a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": circuit.name,
        "nets": [
            {
                "op": n.op,
                "fanins": list(n.fanins),
                "name": n.name,
                "pos": n.pos,
            }
            for n in circuit.nets
        ],
        "inputs": {k: list(v) for k, v in circuit.inputs.items()},
        "outputs": {k: list(v) for k, v in circuit.outputs.items()},
        "attrs": dict(circuit.attrs),
        "dff_init": {str(k): v for k, v in circuit.dff_init.items()},
    }


def circuit_from_dict(data: Dict[str, Any]) -> Circuit:
    """Reconstruct a circuit from :func:`circuit_to_dict` output.

    Hashing and folding are disabled during reconstruction so net ids match
    the serialised form one-to-one.
    """
    if data.get("format_version") != _FORMAT_VERSION:
        raise CircuitError(
            f"unsupported circuit format version {data.get('format_version')}")
    circuit = Circuit(data["name"], use_strash=False, fold_constants=False)
    for rec in data["nets"]:
        circuit._new_net(rec["op"], tuple(rec["fanins"]), name=rec["name"],
                         pos=rec["pos"])
    circuit._buses.inputs.update(
        {k: list(v) for k, v in data["inputs"].items()})
    for name, bus in data["outputs"].items():
        circuit.set_output(name, bus)
    circuit.attrs.update(data.get("attrs", {}))
    circuit.dff_init.update(
        {int(k): v for k, v in data.get("dff_init", {}).items()})
    # Restore constant cache so const() keeps working after load.
    for net in circuit.nets:
        if net.op in ("CONST0", "CONST1"):
            circuit._const_cache.setdefault(net.op, net.nid)
    return circuit


def dumps(circuit: Circuit, indent: int = None) -> str:
    """Serialise *circuit* to a JSON string."""
    return json.dumps(circuit_to_dict(circuit), indent=indent)


def loads(text: str) -> Circuit:
    """Deserialise a circuit from a JSON string."""
    return circuit_from_dict(json.loads(text))


def save(circuit: Circuit, path: str) -> None:
    """Write *circuit* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(circuit))


def load(path: str) -> Circuit:
    """Read a circuit from a JSON file at *path*."""
    with open(path, "r", encoding="utf-8") as f:
        return loads(f.read())
