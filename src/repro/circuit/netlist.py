"""Combinational gate-level netlist with structural hashing.

The central class is :class:`Circuit`, a DAG of :class:`Net` objects.  Nets
are created strictly bottom-up (fanins must already exist), so the net list
itself is always a valid topological order — simulation and timing analysis
never need to re-sort.

Structural hashing (common-subexpression elimination) and local constant
folding are applied on the fly by :meth:`Circuit.add_gate`, mirroring what a
synthesis front-end would do.  Generators can therefore instantiate logic
redundantly — e.g. the error detector re-deriving the ACA's propagate strips
— and automatically share gates, which is exactly the sharing the paper's
Fig. 4 describes.

Each net optionally carries a *position* (``pos``), the bit column it
belongs to in a datapath layout.  The timing model uses positions to charge
wire delay proportional to the bit span of a connection (a lightweight
"relative placement" model in the spirit of datapath generators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .gates import gate_spec, is_input_op

__all__ = ["Net", "Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for malformed circuit construction or queries."""


@dataclass
class Net:
    """One wire in the netlist, identified by its driving gate.

    Attributes:
        nid: Dense integer id, index into ``Circuit.nets``.
        op: Operation name from :mod:`repro.circuit.gates`.
        fanins: Ids of the nets feeding this gate (empty for sources).
        name: Optional human-readable name (inputs and named outputs).
        pos: Optional bit-column position used by the wire-delay model.
    """

    nid: int
    op: str
    fanins: Tuple[int, ...]
    name: Optional[str] = None
    pos: Optional[float] = None


@dataclass
class _Buses:
    inputs: Dict[str, List[int]] = field(default_factory=dict)
    outputs: Dict[str, List[int]] = field(default_factory=dict)


class Circuit:
    """A combinational circuit as a structurally hashed DAG.

    Args:
        name: Circuit name (used in exports).
        use_strash: Enable structural hashing (CSE) for new gates.
        fold_constants: Enable local constant folding for new gates.
    """

    def __init__(self, name: str = "circuit", use_strash: bool = True,
                 fold_constants: bool = True):
        self.name = name
        self.nets: List[Net] = []
        self.use_strash = use_strash
        self.fold_constants = fold_constants
        self._strash: Dict[Tuple, int] = {}
        self._buses = _Buses()
        self._const_cache: Dict[str, int] = {}
        self.attrs: Dict[str, object] = {}
        #: Reset value per DFF net id (see :meth:`add_dff`).
        self.dff_init: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str, pos: Optional[float] = None) -> int:
        """Create a single-bit primary input and return its net id."""
        if name in self._buses.inputs:
            raise CircuitError(f"duplicate input name {name!r}")
        nid = self._new_net("INPUT", (), name=name, pos=pos)
        self._buses.inputs[name] = [nid]
        return nid

    def add_input_bus(self, name: str, width: int) -> List[int]:
        """Create a *width*-bit input bus; bit ``i`` is named ``name[i]``.

        Bit positions are set to the bit index so the wire model can reason
        about operand bit columns.
        """
        if width <= 0:
            raise CircuitError("bus width must be positive")
        if name in self._buses.inputs:
            raise CircuitError(f"duplicate input name {name!r}")
        nids = [
            self._new_net("INPUT", (), name=f"{name}[{i}]", pos=float(i))
            for i in range(width)
        ]
        self._buses.inputs[name] = nids
        return nids

    # -- sequential state elements ---------------------------------------
    def add_dff(self, name: Optional[str] = None, init: int = 0,
                pos: Optional[float] = None) -> int:
        """Create a D flip-flop whose input is connected later.

        The DFF's *output* behaves as a source for combinational logic
        (it may feed gates created before its input exists), enabling
        feedback.  Connect the data input with :meth:`connect_dff` before
        simulating.  ``init`` is the reset value used by the sequential
        simulator.
        """
        if init not in (0, 1):
            raise CircuitError("DFF init must be 0 or 1")
        nid = self._new_net("DFF", (), name=name, pos=pos)
        self.dff_init[nid] = init
        return nid

    def connect_dff(self, dff: int, src: int) -> None:
        """Set the data input of a DFF created with :meth:`add_dff`."""
        if not (0 <= dff < len(self.nets)) or self.nets[dff].op != "DFF":
            raise CircuitError(f"net {dff} is not a DFF")
        if not (0 <= src < len(self.nets)):
            raise CircuitError(f"source net {src} does not exist")
        if self.nets[dff].fanins:
            raise CircuitError(f"DFF {dff} is already connected")
        self.nets[dff] = Net(dff, "DFF", (src,),
                             name=self.nets[dff].name,
                             pos=self.nets[dff].pos)

    def dffs(self) -> List[int]:
        """Net ids of all flip-flops, in creation order."""
        return [n.nid for n in self.nets if n.op == "DFF"]

    def is_sequential(self) -> bool:
        """Whether the circuit contains any state elements."""
        return bool(self.dff_init)

    def const(self, value: int) -> int:
        """Return the net id of constant 0 or 1 (created on first use)."""
        if value not in (0, 1):
            raise CircuitError("constant must be 0 or 1")
        op = "CONST1" if value else "CONST0"
        if op not in self._const_cache:
            self._const_cache[op] = self._new_net(op, ())
        return self._const_cache[op]

    def add_gate(self, op: str, *fanins: int, name: Optional[str] = None,
                 pos: Optional[float] = None) -> int:
        """Create a gate (or reuse an equivalent one) and return its net id.

        Applies local constant folding and structural hashing unless
        disabled on the circuit.  Variadic gates (AND/OR/XOR/...) accept two
        or more fanins.
        """
        spec = gate_spec(op)
        if is_input_op(op):
            raise CircuitError(f"use add_input()/const() for {op}")
        if op == "DFF":
            raise CircuitError("use add_dff()/connect_dff() for state")
        if spec.arity >= 0 and len(fanins) != spec.arity:
            raise CircuitError(
                f"{op} expects {spec.arity} fanins, got {len(fanins)}")
        if spec.arity < 0 and len(fanins) < 1:
            raise CircuitError(f"{op} expects at least 1 fanin")
        for f in fanins:
            if not (0 <= f < len(self.nets)):
                raise CircuitError(f"fanin {f} does not exist yet")

        if spec.arity < 0 and len(fanins) == 1:
            # Degenerate variadic gate: AND(x) == x etc.
            return fanins[0]

        if self.fold_constants:
            folded = self._fold(op, fanins)
            if folded is not None:
                return folded

        key_fanins = tuple(sorted(fanins)) if spec.commutative else tuple(fanins)
        key = (op, key_fanins)
        if self.use_strash:
            hit = self._strash.get(key)
            if hit is not None:
                return hit
        nid = self._new_net(op, tuple(fanins), name=name, pos=pos)
        if self.use_strash:
            self._strash[key] = nid
        return nid

    def _new_net(self, op: str, fanins: Tuple[int, ...],
                 name: Optional[str] = None, pos: Optional[float] = None) -> int:
        nid = len(self.nets)
        if pos is None and fanins:
            # Forward references (DFF data inputs during deserialisation)
            # cannot contribute a position yet.
            known = [self.nets[f].pos for f in fanins
                     if f < len(self.nets) and self.nets[f].pos is not None]
            if known:
                pos = max(known)
        self.nets.append(Net(nid, op, fanins, name=name, pos=pos))
        return nid

    # -- local constant folding -----------------------------------------
    def _is_const(self, nid: int) -> Optional[int]:
        op = self.nets[nid].op
        if op == "CONST0":
            return 0
        if op == "CONST1":
            return 1
        return None

    def _fold(self, op: str, fanins: Tuple[int, ...]) -> Optional[int]:
        consts = [self._is_const(f) for f in fanins]
        if op == "NOT":
            (c,) = consts
            if c is not None:
                return self.const(1 - c)
            inner = self.nets[fanins[0]]
            if inner.op == "NOT":
                return inner.fanins[0]
            return None
        if op == "BUF":
            return fanins[0]
        if op in ("AND", "NAND"):
            if 0 in consts:
                return self.const(0 if op == "AND" else 1)
            keep = [f for f, c in zip(fanins, consts) if c != 1]
            return self._refold(op, keep, fanins, identity=1)
        if op in ("OR", "NOR"):
            if 1 in consts:
                return self.const(1 if op == "OR" else 0)
            keep = [f for f, c in zip(fanins, consts) if c != 0]
            return self._refold(op, keep, fanins, identity=0)
        if op in ("XOR", "XNOR"):
            parity = sum(c for c in consts if c is not None) & 1
            keep = [f for f, c in zip(fanins, consts) if c is None]
            if not keep:
                bit = parity if op == "XOR" else 1 - parity
                return self.const(bit)
            if len(keep) < len(fanins):
                base = keep[0] if len(keep) == 1 else self.add_gate("XOR", *keep)
                flip = parity if op == "XOR" else 1 - parity
                return self.add_gate("NOT", base) if flip else base
            return None
        if op == "AO21":
            a, b, c = fanins
            ca, cb, cc = consts
            if cc == 1:
                return self.const(1)
            if cc == 0:
                return self.add_gate("AND", a, b)
            if ca == 0 or cb == 0:
                return c
            if ca == 1:
                return self.add_gate("OR", b, c)
            if cb == 1:
                return self.add_gate("OR", a, c)
            return None
        if op == "OA21":
            a, b, c = fanins
            ca, cb, cc = consts
            if cc == 0:
                return self.const(0)
            if cc == 1:
                return self.add_gate("OR", a, b)
            if ca == 1 or cb == 1:
                return c
            if ca == 0:
                return self.add_gate("AND", b, c)
            if cb == 0:
                return self.add_gate("AND", a, c)
            return None
        if op == "MUX2":
            s, a, b = fanins
            cs, ca, cb = consts
            if cs == 1:
                return a
            if cs == 0:
                return b
            if a == b:
                return a
            if ca == 1 and cb == 0:
                return s
            if ca == 0 and cb == 1:
                return self.add_gate("NOT", s)
            return None
        if op == "MAJ3":
            known = [(f, c) for f, c in zip(fanins, consts) if c is not None]
            if len(known) >= 2:
                vals = [c for _, c in known]
                if vals.count(1) >= 2:
                    return self.const(1)
                if vals.count(0) >= 2:
                    return self.const(0)
            if len(known) == 1:
                others = [f for f, c in zip(fanins, consts) if c is None]
                c = known[0][1]
                if c == 1:
                    return self.add_gate("OR", *others)
                return self.add_gate("AND", *others)
            return None
        return None

    def _refold(self, op: str, keep: List[int], fanins: Tuple[int, ...],
                identity: int) -> Optional[int]:
        if not keep:
            bit = identity
            if op in ("NAND", "NOR"):
                bit = 1 - bit
            return self.const(bit)
        if len(keep) == len(fanins):
            if len(set(keep)) < len(keep) and op in ("AND", "OR"):
                uniq = list(dict.fromkeys(keep))
                if len(uniq) == 1:
                    return uniq[0]
                return self.add_gate(op, *uniq)
            return None
        if op in ("NAND", "NOR"):
            base = "AND" if op == "NAND" else "OR"
            inner = keep[0] if len(keep) == 1 else self.add_gate(base, *keep)
            return self.add_gate("NOT", inner)
        if len(keep) == 1:
            return keep[0]
        return self.add_gate(op, *keep)

    # ------------------------------------------------------------------
    # outputs and buses
    # ------------------------------------------------------------------
    def set_output(self, name: str, nid_or_bus) -> None:
        """Register an output bit (int) or bus (sequence of ids)."""
        if isinstance(nid_or_bus, int):
            bus = [nid_or_bus]
        else:
            bus = list(nid_or_bus)
        for nid in bus:
            if not (0 <= nid < len(self.nets)):
                raise CircuitError(f"output net {nid} does not exist")
        self._buses.outputs[name] = bus

    @property
    def inputs(self) -> Dict[str, List[int]]:
        """Mapping input bus name -> list of net ids (LSB first)."""
        return self._buses.inputs

    @property
    def outputs(self) -> Dict[str, List[int]]:
        """Mapping output bus name -> list of net ids (LSB first)."""
        return self._buses.outputs

    def input_width(self, name: str) -> int:
        return len(self._buses.inputs[name])

    def output_width(self, name: str) -> int:
        return len(self._buses.outputs[name])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nets)

    def gate_count(self) -> int:
        """Number of logic gates (excludes inputs and constants)."""
        return sum(1 for n in self.nets if not is_input_op(n.op))

    def op_histogram(self) -> Dict[str, int]:
        """Count of nets per operation type."""
        hist: Dict[str, int] = {}
        for n in self.nets:
            hist[n.op] = hist.get(n.op, 0) + 1
        return hist

    def fanout_counts(self) -> List[int]:
        """Fanout (number of gate sinks) of every net.

        Output-only connections are not counted as load; this matches how
        the timing model charges gate loading.
        """
        counts = [0] * len(self.nets)
        for n in self.nets:
            for f in n.fanins:
                counts[f] += 1
        return counts

    def max_fanout(self) -> int:
        counts = self.fanout_counts()
        return max(counts) if counts else 0

    def reachable_from_outputs(self) -> List[bool]:
        """Mark nets in the transitive fanin of any registered output."""
        mark = [False] * len(self.nets)
        stack: List[int] = []
        for bus in self._buses.outputs.values():
            for nid in bus:
                if not mark[nid]:
                    mark[nid] = True
                    stack.append(nid)
        while stack:
            nid = stack.pop()
            for f in self.nets[nid].fanins:
                if not mark[f]:
                    mark[f] = True
                    stack.append(f)
        return mark

    def logic_depth(self) -> int:
        """Maximum number of logic gates on any source-to-output path.

        Flip-flop outputs count as sources (their fanins may be forward
        references through the feedback path).
        """
        depth = [0] * len(self.nets)
        for n in self.nets:
            if is_input_op(n.op) or n.op == "DFF":
                depth[n.nid] = 0
            else:
                depth[n.nid] = 1 + max((depth[f] for f in n.fanins), default=0)
        best = 0
        for bus in self._buses.outputs.values():
            for nid in bus:
                best = max(best, depth[nid])
        return best

    def topological_nets(self) -> Iterable[Net]:
        """Nets in topological order (construction order by invariant)."""
        return iter(self.nets)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"Circuit {self.name!r}: {self.gate_count()} gates, "
                f"{sum(len(b) for b in self.inputs.values())} input bits, "
                f"{sum(len(b) for b in self.outputs.values())} output bits, "
                f"depth {self.logic_depth()}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"
