"""RTL generator front-end — the Python equivalent of the paper's tool.

Section 5: "We have written a C++ program which takes the value n as
input and generates VHDL files corresponding to the circuit of ACA,
error detection, and error recovery."  This module is that program:
given a design kind and a bitwidth it builds the circuit, and emits
VHDL, Verilog, a self-checking testbench, a JSON netlist, and a stats
report.  Exposed on the CLI as ``python -m repro export``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Dict, List, Optional

from .adders import build_adder, adder_names
from .analysis import choose_window
from .circuit import Circuit, get_library, to_verilog, to_vhdl
from .circuit.export_tb import to_verilog_testbench
from .circuit.serialize import dumps
from .circuit.stats import collect_stats, format_stats
from .core import (
    build_aca,
    build_vlsa_rtl,
    build_booth_multiplier,
    build_error_detector,
    build_multiplier,
    build_recovery_adder,
    build_speculative_incrementer,
    build_speculative_subtractor,
    build_vlsa_datapath,
)
from .families.base import family_names, get_family, resolve_params

__all__ = ["DESIGN_KINDS", "build_design", "design_digest", "export_design"]


def _spec_design(builder: Callable) -> Callable:
    def make(width: int, window: Optional[int]) -> Circuit:
        # Window defaulting lives in one place: the family registry.
        return builder(width, resolve_params("aca", width, window)["window"])
    return make


#: Design kinds the generator knows: name -> builder(width, window|None).
DESIGN_KINDS: Dict[str, Callable[[int, Optional[int]], Circuit]] = {
    "aca": _spec_design(build_aca),
    "vlsa": _spec_design(build_vlsa_datapath),
    "vlsa_rtl": _spec_design(build_vlsa_rtl),
    "detector": _spec_design(build_error_detector),
    "recovery": _spec_design(build_recovery_adder),
    "subtractor": _spec_design(build_speculative_subtractor),
    "incrementer": _spec_design(build_speculative_incrementer),
    "multiplier": lambda n, w: build_multiplier(
        n, w or choose_window(2 * n)),
    "booth": lambda n, w: build_booth_multiplier(
        n, w or choose_window(2 * n)),
}
# Every baseline adder is also exportable.
for _name in adder_names():
    DESIGN_KINDS[_name] = (
        lambda n, w, _b=_name: build_adder(_b, n))
# Every registered adder family contributes its speculative core and
# recovery datapath (e.g. cesa / cesa_r); entries the table already
# names keep their original builders.
for _fname in family_names():
    for _kind, _builder in sorted(get_family(_fname).design_kinds().items()):
        DESIGN_KINDS.setdefault(_kind, _builder)
# Deterministic listing order for --help and docs.
DESIGN_KINDS = dict(sorted(DESIGN_KINDS.items()))


def build_design(kind: str, width: int,
                 window: Optional[int] = None) -> Circuit:
    """Build the named design at *width* (window defaults per design)."""
    try:
        builder = DESIGN_KINDS[kind]
    except KeyError:
        raise KeyError(f"unknown design {kind!r}; available: "
                       f"{sorted(DESIGN_KINDS)}") from None
    return builder(width, window)


def design_digest(kind: str, width: int,
                  window: Optional[int] = None) -> Dict[str, str]:
    """SHA-256 digests of the emitted HDL for one design.

    The emitters are deterministic functions of the netlist, so these
    digests pin the exact generated RTL — the golden-snapshot tests
    compare them against ``tests/golden/netlist_digests.json`` to catch
    unintended changes to any generated design.
    """
    circuit = build_design(kind, width, window)
    return {
        "vhdl": hashlib.sha256(to_vhdl(circuit).encode()).hexdigest(),
        "verilog": hashlib.sha256(to_verilog(circuit).encode()).hexdigest(),
    }


def export_design(kind: str, width: int, out_dir: str,
                  window: Optional[int] = None,
                  library: str = "umc180",
                  testbench_vectors: int = 16) -> List[str]:
    """Generate a design and write all artefacts under *out_dir*.

    Emits ``<name>.vhd``, ``<name>.v``, ``<name>_tb.v``, ``<name>.json``
    and ``<name>_stats.txt``.

    Returns:
        The list of written file paths.
    """
    circuit = build_design(kind, width, window)
    lib = get_library(library)
    os.makedirs(out_dir, exist_ok=True)
    base = os.path.join(out_dir, circuit.name)
    written = []

    artifacts = {
        f"{base}.vhd": to_vhdl(circuit),
        f"{base}.v": to_verilog(circuit),
        f"{base}.json": dumps(circuit),
        f"{base}_stats.txt": format_stats(collect_stats(circuit, lib)) +
        "\n",
    }
    if not circuit.is_sequential():
        artifacts[f"{base}_tb.v"] = to_verilog_testbench(
            circuit, num_vectors=testbench_vectors)
    for path, text in artifacts.items():
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        written.append(path)
    return written
