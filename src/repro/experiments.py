"""One entry point per paper table/figure (see DESIGN.md experiment index).

Each function regenerates a table or figure of the paper and returns a
:class:`~repro.reporting.Table` (plus chart text where applicable).  The
benchmark harness under ``benchmarks/`` and the CLI (``python -m repro``)
both call these, so the numbers reported in EXPERIMENTS.md can always be
re-derived with one command.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .adders import build_best_traditional, build_ripple_adder
from .analysis import (
    aca_error_probability,
    choose_window,
    detector_flag_probability,
    expected_flips_closed_form,
    expected_flips_linear_solve,
    expected_flips_monte_carlo,
    expected_latency_cycles,
    expected_longest_run,
    expected_longest_run_asymptotic,
    quantile_longest_run,
    table1_rows,
    variance_longest_run,
)
from .apps import ArxCipher, aca_adder, exact_adder, run_attack, sample_corpus
from .arch import VlsaMachine
from .circuit import TechLibrary, UMC180, analyze_area, analyze_timing
from .core import (
    build_aca,
    build_error_detector,
    build_recovery_adder,
    build_vlsa_datapath,
    characterize_vlsa,
    naive_aca_window_products,
)
from .engine import RunContext, get_default_context
from .mc import sample_error_rate
from .reporting import Table, ascii_chart

__all__ = [
    "DEFAULT_BITWIDTHS",
    "table1",
    "theorem1",
    "schilling_table",
    "fig8_rows",
    "fig8_tables",
    "fig7_trace",
    "error_rate_table",
    "sharing_ablation",
    "window_sweep",
    "crypto_attack_experiment",
    "future_work_table",
    "fault_table",
    "processor_table",
    "dsp_table",
    "crosscheck_table",
]

#: Fig. 8's x axis in the paper.
DEFAULT_BITWIDTHS: Tuple[int, ...] = (64, 128, 256, 512, 1024, 2048)


def _rand_bits(rng: np.random.Generator, bits: int) -> int:
    """Uniform *bits*-bit integer from a NumPy generator.

    All experiment randomness flows through seeded NumPy generators (one
    RNG family process-wide, plumbed from the CLI's ``--seed`` via the
    run context) instead of the historical mix of ``random.Random`` and
    ``np.random``.
    """
    if bits <= 0:
        return 0
    return int.from_bytes(rng.bytes((bits + 7) // 8), "little") & (
        (1 << bits) - 1)


def _finish(table: Table, ctx: Optional[RunContext]) -> Table:
    """Attach the run context's provenance snapshot to *table*."""
    table.provenance = (ctx or get_default_context()).snapshot()
    return table


# ----------------------------------------------------------------------
# T1: Table 1 — longest-run bounds per bitwidth
# ----------------------------------------------------------------------
def table1(bitwidths: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024,
                                       2048, 4096),
           probabilities: Sequence[float] = (0.99, 0.9999),
           ctx: Optional[RunContext] = None) -> Table:
    """Reproduce Table 1: run bounds holding with 99 % / 99.99 %."""
    table = Table(
        "Table 1 - longest run of 1s bounds (exact A_n(x) recurrence)",
        ["bitwidth"] + [f"P>={p:.4%}".rstrip("0").rstrip(".")
                        for p in probabilities])
    for n, bounds in table1_rows(bitwidths, probabilities):
        table.add_row(n, *bounds)
    table.note = ("Paper: bounds grow like log2(n); raising the bound by ~7 "
                  "bits turns 99% into 99.99% (Gordon et al. tail).")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# TH1: Theorem 1 — expected flips for a run of k heads
# ----------------------------------------------------------------------
def theorem1(max_k: int = 12, mc_trials: int = 2000,
             seed: int = 0, ctx: Optional[RunContext] = None) -> Table:
    """Check Theorem 1 three ways: closed form, linear solve, Monte Carlo."""
    table = Table("Theorem 1 - E[flips to k consecutive heads] = 2^(k+1) - 2",
                  ["k", "closed form", "markov solve", "monte carlo"])
    rng = np.random.default_rng(seed)
    for k in range(1, max_k + 1):
        closed = expected_flips_closed_form(k)
        solved = expected_flips_linear_solve(k)
        mc = (expected_flips_monte_carlo(k, trials=mc_trials, rng=rng)
              if k <= 10 else float("nan"))
        table.add_row(k, closed, round(solved, 3), round(mc, 1))
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# Schilling asymptotics (supporting analysis for Section 3.1)
# ----------------------------------------------------------------------
def schilling_table(bitwidths: Sequence[int] = (16, 64, 256, 1024),
                    ctx: Optional[RunContext] = None) -> Table:
    """Exact E/Var of the longest run versus Schilling's asymptotics."""
    table = Table(
        "Longest-run statistics: exact vs Schilling log2(n) - 2/3",
        ["bitwidth", "E exact", "E asymptotic", "variance"])
    for n in bitwidths:
        table.add_row(n, round(expected_longest_run(n), 4),
                      round(expected_longest_run_asymptotic(n), 4),
                      round(variance_longest_run(n), 4))
    table.note = ("Exact variance approaches pi^2/(6 ln^2 2) + 1/12 ~ 3.507 "
                  "(the paper's text quotes 1.873; see EXPERIMENTS.md).")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# F8: Fig. 8 — delay and area sweep
# ----------------------------------------------------------------------
@dataclass
class Fig8Row:
    """Delay/area of the four Fig. 8 circuits at one bitwidth."""

    width: int
    window: int
    traditional_arch: str
    traditional_delay: float
    aca_delay: float
    detect_delay: float
    recovery_delay: float
    traditional_area: float
    aca_area: float
    detect_area: float
    recovery_area: float
    ripple_area: float

    @property
    def aca_speedup(self) -> float:
        return self.traditional_delay / self.aca_delay

    @property
    def detect_ratio(self) -> float:
        return self.detect_delay / self.traditional_delay

    @property
    def recovery_ratio(self) -> float:
        return self.recovery_delay / self.traditional_delay

    @property
    def vlsa_clock(self) -> float:
        return max(self.aca_delay, self.detect_delay)

    @property
    def vlsa_avg_speedup(self) -> float:
        p_err = aca_error_probability(self.width, self.window)
        avg = self.vlsa_clock * expected_latency_cycles(p_err)
        return self.traditional_delay / avg


def fig8_rows(bitwidths: Sequence[int] = DEFAULT_BITWIDTHS,
              library: TechLibrary = UMC180,
              accuracy: float = 0.9999,
              ctx: Optional[RunContext] = None) -> List[Fig8Row]:
    """Build and characterise the four circuits at every bitwidth."""
    ctx = ctx or get_default_context()
    rows: List[Fig8Row] = []
    for n in bitwidths:
        ctx.add("fig8_widths", 1)
        w = choose_window(n, accuracy)
        best = build_best_traditional(n, library)
        aca = build_aca(n, w)
        detect = build_error_detector(n, w)
        recovery = build_recovery_adder(n, w)
        ripple = build_ripple_adder(n)
        rows.append(Fig8Row(
            width=n,
            window=w,
            traditional_arch=best.name,
            traditional_delay=best.delay,
            aca_delay=analyze_timing(aca, library).critical_delay,
            detect_delay=analyze_timing(detect, library).critical_delay,
            recovery_delay=analyze_timing(recovery, library).critical_delay,
            traditional_area=best.area,
            aca_area=analyze_area(aca, library).total,
            detect_area=analyze_area(detect, library).total,
            recovery_area=analyze_area(recovery, library).total,
            ripple_area=analyze_area(ripple, library).total,
        ))
    return rows


def fig8_tables(rows: Optional[List[Fig8Row]] = None,
                bitwidths: Sequence[int] = DEFAULT_BITWIDTHS,
                library: TechLibrary = UMC180,
                ctx: Optional[RunContext] = None
                ) -> Tuple[Table, Table, str, str]:
    """Fig. 8 as two tables (delay, area) and two ASCII charts."""
    if rows is None:
        rows = fig8_rows(bitwidths, library, ctx=ctx)
    delay = Table(
        f"Fig. 8 (left) - critical-path delay [ns], library={library.name}",
        ["bitwidth", "window", "traditional", "arch", "ACA",
         "error detect", "ACA+recovery", "ACA speedup", "detect/trad",
         "recovery/trad", "VLSA avg speedup"])
    area = Table(
        f"Fig. 8 (right) - area normalised to traditional, "
        f"library={library.name}",
        ["bitwidth", "traditional", "ACA", "error detect", "ACA+recovery",
         "ripple (ref)"])
    for r in rows:
        delay.add_row(r.width, r.window, round(r.traditional_delay, 3),
                      r.traditional_arch, round(r.aca_delay, 3),
                      round(r.detect_delay, 3), round(r.recovery_delay, 3),
                      round(r.aca_speedup, 2), round(r.detect_ratio, 2),
                      round(r.recovery_ratio, 2),
                      round(r.vlsa_avg_speedup, 2))
        area.add_row(r.width, 1.0,
                     round(r.aca_area / r.traditional_area, 3),
                     round(r.detect_area / r.traditional_area, 3),
                     round(r.recovery_area / r.traditional_area, 3),
                     round(r.ripple_area / r.traditional_area, 3))
    delay.note = ("Paper: ACA 1.5-2.5x faster than DesignWare; detector "
                  "~2/3 of traditional delay; recovery ~= traditional.")
    area.note = ("Paper: ACA slightly larger than ripple, smaller than "
                 "traditional; recovery largest (it contains the ACA).")
    labels = [str(r.width) for r in rows]
    delay_chart = ascii_chart(
        "Fig. 8 delay vs bitwidth",
        labels,
        {
            "traditional": [r.traditional_delay for r in rows],
            "ACA": [r.aca_delay for r in rows],
            "error detect": [r.detect_delay for r in rows],
            "ACA+recovery": [r.recovery_delay for r in rows],
        },
        y_label="ns")
    area_chart = ascii_chart(
        "Fig. 8 area (normalised to traditional) vs bitwidth",
        labels,
        {
            "traditional": [1.0] * len(rows),
            "ACA": [r.aca_area / r.traditional_area for r in rows],
            "error detect": [r.detect_area / r.traditional_area for r in rows],
            "ACA+recovery": [r.recovery_area / r.traditional_area
                             for r in rows],
        })
    return _finish(delay, ctx), _finish(area, ctx), delay_chart, area_chart


# ----------------------------------------------------------------------
# F7: Fig. 7 — VLSA timing diagram and average latency
# ----------------------------------------------------------------------
def fig7_trace(width: int = 64, operations: int = 100000,
               seed: int = 0,
               ctx: Optional[RunContext] = None) -> Tuple[Table, str]:
    """Run the VLSA machine on a stream and reproduce Fig. 7.

    The first few operands recreate the paper's scenario (ok, stall, ok)
    before switching to a uniform random stream for the latency average.
    """
    ctx = ctx or get_default_context()
    rng = np.random.default_rng(seed)
    machine = VlsaMachine(width, ctx=ctx)
    w = machine.window
    mask = (1 << width) - 1

    # Fig. 7 scenario: op1 correct, op2 forces a stall (a ^ b all ones and
    # a generate right below a long propagate chain), op3 correct.
    a2 = (0x5 << (width - 4)) | 1  # bit 0 generates into ...
    b2 = (~a2) & mask              # ... an all-propagate chain
    scripted = [(1, 2), (a2 | 1, b2 | 1), (3, 4)]
    stream = scripted + [(_rand_bits(rng, width), _rand_bits(rng, width))
                         for _ in range(operations - len(scripted))]
    trace = machine.run(stream)

    p_err_exact = aca_error_probability(width, w)
    table = Table(f"Fig. 7 - VLSA pipeline, {width}-bit, window {w}",
                  ["metric", "value"])
    table.add_row("operations", trace.operations)
    table.add_row("stalls", trace.stall_count)
    table.add_row("total cycles", trace.total_cycles)
    table.add_row("avg latency [cycles]",
                  f"{trace.average_latency_cycles:.6f}")
    table.add_row("model 1 + P(flag)",
                  f"{1 + detector_flag_probability(width, w):.6f}")
    table.add_row("exact P(error)", f"{p_err_exact:.3e}")
    table.note = ("Paper: average latency ~1.0002 cycles at 99.99% "
                  "accuracy; stalls are detector flags, a superset of "
                  "actual errors.")
    return _finish(table, ctx), trace.timing_diagram()


# ----------------------------------------------------------------------
# ERR: exact vs sampled error rates
# ----------------------------------------------------------------------
def error_rate_table(bitwidths: Sequence[int] = (64, 128, 256, 512, 1024),
                     accuracy: float = 0.9999,
                     samples: int = 20000, seed: int = 0,
                     ctx: Optional[RunContext] = None) -> Table:
    """P(ACA wrong) and P(detector fires): exact DP vs Monte Carlo."""
    ctx = ctx or get_default_context()
    table = Table(
        "ACA error rates at the 99.99% window",
        ["bitwidth", "window", "P(error) exact", "P(flag) exact",
         f"P(error) MC ({samples} samples)", "E[latency] cycles"])
    for n in bitwidths:
        w = choose_window(n, accuracy)
        p_err = aca_error_probability(n, w)
        p_flag = detector_flag_probability(n, w)
        mc = sample_error_rate(n, w, samples=samples, seed=seed, ctx=ctx)
        table.add_row(n, w, f"{p_err:.3e}", f"{p_flag:.3e}", f"{mc:.3e}",
                      f"{expected_latency_cycles(p_flag):.6f}")
    table.note = ("Detector flags (stalls) upper-bound errors; both stay "
                  "below 1e-4 by construction of the window.")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# F3/F4: sharing ablation
# ----------------------------------------------------------------------
def sharing_ablation(bitwidths: Sequence[int] = (64, 128, 256, 512),
                     library: TechLibrary = UMC180,
                     accuracy: float = 0.9999,
                     ctx: Optional[RunContext] = None) -> Table:
    """Shared-strip ACA vs naive per-window small adders (Fig. 3/4).

    Demonstrates the paper's area argument: naive windows cost O(n*w)
    logic and primary-input fanout O(w), while the shared construction is
    O(n log w) with bounded fanout.
    """
    table = Table(
        "Fig. 3/4 - shared strips vs naive per-bit window adders",
        ["bitwidth", "window", "shared gates", "naive gates", "gate ratio",
         "shared area", "naive area", "shared max fanout",
         "naive max fanout"])
    for n in bitwidths:
        w = choose_window(n, accuracy)
        shared = build_aca(n, w)
        naive = naive_aca_window_products(n, w)
        table.add_row(
            n, w, shared.gate_count(), naive.gate_count(),
            round(naive.gate_count() / shared.gate_count(), 2),
            round(analyze_area(shared, library).total, 0),
            round(analyze_area(naive, library).total, 0),
            shared.max_fanout(), naive.max_fanout())
    table.note = ("Paper: sharing keeps the ACA near-linear "
                  "(O(n log log n)) with every product used <= 3 times.")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# ABL: window-size ablation
# ----------------------------------------------------------------------
def window_sweep(width: int = 1024,
                 windows: Optional[Sequence[int]] = None,
                 library: TechLibrary = UMC180,
                 ctx: Optional[RunContext] = None) -> Table:
    """Accuracy/delay/area trade-off as the speculation window varies."""
    if windows is None:
        q99 = quantile_longest_run(width, 0.99) + 1
        q9999 = quantile_longest_run(width, 0.9999) + 1
        windows = sorted({4, 8, q99, q9999, q9999 + 8, 2 * q9999})
    best = build_best_traditional(width, library)
    table = Table(
        f"Window ablation at {width} bits "
        f"(traditional = {best.name}, {best.delay:.3f} ns)",
        ["window", "P(error)", "P(flag)", "ACA delay", "speedup",
         "VLSA avg speedup", "ACA area/trad"])
    for w in windows:
        aca = build_aca(width, w)
        d = analyze_timing(aca, library).critical_delay
        a = analyze_area(aca, library).total
        p_err = aca_error_probability(width, w)
        p_flag = detector_flag_probability(width, w)
        detect = build_error_detector(width, w)
        clock = max(d, analyze_timing(detect, library).critical_delay)
        avg_time = clock * expected_latency_cycles(p_flag)
        table.add_row(w, f"{p_err:.2e}", f"{p_flag:.2e}", round(d, 3),
                      round(best.delay / d, 2),
                      round(best.delay / avg_time, 2),
                      round(a / best.area, 3))
    table.note = ("Small windows are fast but stall often; beyond the "
                  "99.99% window extra bits buy little.")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# APP: ciphertext-only attack
# ----------------------------------------------------------------------
def crypto_attack_experiment(corpus_bytes: int = 4096,
                             key_bits: int = 8,
                             window: int = 8,
                             seed: int = 7,
                             ctx: Optional[RunContext] = None) -> Table:
    """Frequency-analysis attack with exact vs speculative decryption.

    The candidate key space is the paper's "pruned set of potential keys";
    per-add latencies use the measured 64-bit ACA-vs-traditional delay
    ratio (~2x), so the time column shows the attack-level payoff.
    """
    rng = np.random.default_rng(seed)
    true_key = _rand_bits(rng, key_bits) | 1
    plaintext = sample_corpus(corpus_bytes, seed=seed)
    ciphertext = ArxCipher(true_key).encrypt_bytes(plaintext)
    candidates = list(range(1 << key_bits))

    exact_res = run_attack(ciphertext, true_key, candidates,
                           adder=exact_adder, add_latency=1.0)
    aca_res = run_attack(ciphertext, true_key, candidates,
                         adder=aca_adder(window), add_latency=0.5)

    blocks = len(ciphertext) // 8
    table = Table(
        f"Ciphertext-only attack: {blocks} blocks, {1 << key_bits} keys, "
        f"ACA window {window}",
        ["decryption adder", "true key rank", "wrong blocks",
         "32-bit adds", "model time", "speedup"])
    table.add_row("exact", exact_res.rank_of_true_key(),
                  exact_res.wrong_blocks, exact_res.adds_performed,
                  round(exact_res.arithmetic_time, 0), 1.0)
    table.add_row("ACA (speculative)", aca_res.rank_of_true_key(),
                  aca_res.wrong_blocks, aca_res.adds_performed,
                  round(aca_res.arithmetic_time, 0),
                  round(exact_res.arithmetic_time /
                        aca_res.arithmetic_time, 2))
    table.note = ("Paper Section 1: a few wrongly decrypted blocks cannot "
                  "shift corpus letter frequencies, so the attack still "
                  "recovers the key at ACA speed.")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# FW: Section 6 future work — speculative multiplier / multi-op adder
# ----------------------------------------------------------------------
def future_work_table(mul_width: int = 32, multiop_width: int = 128,
                      operands: int = 4,
                      library: TechLibrary = UMC180,
                      samples: int = 300,
                      ctx: Optional[RunContext] = None) -> Table:
    """Speculative multiplier and multi-operand adder vs exact versions.

    Reproduces the paper's closing claim that the paradigm extends to
    other arithmetic components: only the final carry-propagate addition
    speculates, so the delay saving and the guarded-error property carry
    over.  The win is bounded by Amdahl's law — the carry-save tree
    dominates the multiplier's critical path and is exact — so overall
    speedups are modest (~1.05x for 32x32, ~1.25x for 4x128-bit
    accumulation) while the final-adder stage itself speeds up like the
    plain ACA.
    """
    from .core import (
        build_multi_operand_adder,
        build_multiplier,
        multiplier_error_rate,
    )

    w_mul = choose_window(2 * mul_width)
    w_mop = choose_window(multiop_width + operands.bit_length())

    table = Table(
        "Section 6 future work: speculative multiplier / multi-op adder",
        ["design", "delay [ns]", "speedup", "area ratio",
         "measured P(error)", "P(flag)"])

    mul_exact = build_multiplier(mul_width, None)
    mul_spec = build_multiplier(mul_width, w_mul)
    d_e = analyze_timing(mul_exact, library).critical_delay
    d_s = analyze_timing(mul_spec, library).critical_delay
    a_e = analyze_area(mul_exact, library).total
    a_s = analyze_area(mul_spec, library).total
    # Measure the guarded-error property on a configuration small enough
    # to show nonzero rates (the design-point rates are ~1e-5).
    p_err, p_flag = multiplier_error_rate(12, 5, samples=samples)
    table.add_row(f"mul {mul_width}x{mul_width} exact", round(d_e, 3),
                  1.0, 1.0, 0.0, 0.0)
    table.add_row(f"mul {mul_width}x{mul_width} ACA w={w_mul}",
                  round(d_s, 3), round(d_e / d_s, 2),
                  round(a_s / a_e, 3), f"{p_err:.1e} (12b,w5)",
                  f"{p_flag:.1e} (12b,w5)")

    mop_exact = build_multi_operand_adder(multiop_width, operands, None)
    mop_spec = build_multi_operand_adder(multiop_width, operands, w_mop)
    d_e = analyze_timing(mop_exact, library).critical_delay
    d_s = analyze_timing(mop_spec, library).critical_delay
    a_e = analyze_area(mop_exact, library).total
    a_s = analyze_area(mop_spec, library).total
    table.add_row(f"{operands}-operand add {multiop_width}b exact",
                  round(d_e, 3), 1.0, 1.0, 0.0, 0.0)
    table.add_row(f"{operands}-operand add {multiop_width}b ACA w={w_mop}",
                  round(d_s, 3), round(d_e / d_s, 2),
                  round(a_s / a_e, 3), "-", "-")
    table.note = ("Only the final carry-propagate addition speculates; "
                  "the CSA tree is exact, so all errors stay guarded by "
                  "the detector.")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# FLT: stuck-at fault study of the VLSA
# ----------------------------------------------------------------------
def fault_table(width: int = 12, window: int = 4,
                vectors: int = 256,
                ctx: Optional[RunContext] = None) -> Table:
    """Random-pattern stuck-at coverage of the VLSA datapath.

    Quantifies the caveat that the VLSA's ER flag guards *speculation*
    errors, not silicon defects: observing only ``err`` catches a small
    fraction of stuck-at faults, while the exact-sum outputs expose
    nearly all of them.
    """
    from .circuit import fault_coverage
    from .core import build_vlsa_datapath

    circuit = build_vlsa_datapath(width, window)
    table = Table(
        f"Stuck-at coverage of the {width}-bit VLSA datapath "
        f"({vectors} random vectors)",
        ["observed outputs", "faults", "detected", "coverage"])
    for label, outs in [
            ("all outputs", None),
            ("sum_exact only", ["sum_exact", "cout_exact"]),
            ("speculative sum only", ["sum", "cout"]),
            ("err flag only", ["err"])]:
        rep = fault_coverage(circuit, num_vectors=vectors, outputs=outs,
                             seed=0)
        table.add_row(label, rep.total_faults, rep.detected,
                      round(rep.coverage, 3))
    table.note = ("The error flag is not a fault detector — defects need "
                  "ordinary test patterns (cf. Razor-style approaches "
                  "the paper contrasts with in Section 2).")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# CPU: Section 4.2's processor context
# ----------------------------------------------------------------------
def processor_table(width: int = 32, iterations: int = 200,
                    ctx: Optional[RunContext] = None) -> Table:
    """Cycle counts of a small program on the VLSA-ALU vs exact-ALU CPU."""
    from .arch import Instruction, TinyCpu

    minus_one = -1 & ((1 << width) - 1)  # width-sized two's complement
    program = [
        Instruction("LOADI", 0), Instruction("STORE", 0),
        Instruction("LOADI", iterations), Instruction("STORE", 1),
        Instruction("LOAD", 0), Instruction("ADD", 1),
        Instruction("STORE", 0),
        Instruction("LOAD", 1), Instruction("ADDI", minus_one),
        Instruction("STORE", 1),
        Instruction("JNZ", 4),
        Instruction("LOAD", 0), Instruction("HALT"),
    ]
    table = Table(
        f"Accumulation loop ({iterations} iterations) on the tiny CPU",
        ["ALU adder", "result", "instructions", "cycles", "CPI",
         "ALU stalls"])
    results = {}
    for adder in ("exact", "vlsa"):
        res = TinyCpu(width=width, adder=adder).run(program)
        results[adder] = res
        table.add_row(adder, res.accumulator, res.instructions_executed,
                      res.cycles, round(res.cpi(), 3), res.add_stalls)
    speed = results["exact"].cycles / results["vlsa"].cycles
    table.note = (f"VLSA ALU finishes the program {speed:.2f}x faster in "
                  "cycles of the same (short) clock; stalls are the rare "
                  "detector flags (Section 4.2/4.3).")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# DSP: soft-DSP workload dependence (extension finding)
# ----------------------------------------------------------------------
def dsp_table(samples: int = 400, windows: Sequence[int] = (12, 18, 24, 30),
              ctx: Optional[RunContext] = None) -> Table:
    """FIR accumulation: measured stall rates vs the uniform model.

    Extension experiment: signed small-magnitude data produces long
    sign-extension propagate chains, so the speculative adder stalls
    orders of magnitude more often than the uniform-operand analysis
    predicts — while the VLSA output stays exact.  Raw-ACA SNR collapses
    because dropped carries hit the high bits.
    """
    from .apps import (
        aca_adder,
        fir_filter,
        moving_average_taps,
        quantize,
        snr_db,
        synth_signal,
        vlsa_fir_filter,
    )

    signal = quantize(synth_signal(samples, seed=1))
    taps = quantize(moving_average_taps(8))
    golden = fir_filter(signal, taps)

    table = Table(
        "FIR accumulation (32-bit signed fixed point): stalls and quality",
        ["window", "uniform P(flag)", "measured stall rate",
         "raw ACA SNR [dB]", "VLSA exact", "VLSA avg latency"])
    for w in windows:
        uniform = detector_flag_probability(32, w) if w <= 32 else 0.0
        out, stats = vlsa_fir_filter(signal, taps, window=w)
        raw = fir_filter(signal, taps, add=aca_adder(w))
        snr = snr_db(golden, raw)
        table.add_row(w, f"{uniform:.1e}", f"{stats.stall_rate:.3f}",
                      "inf" if snr == float("inf") else round(snr, 1),
                      "yes" if out == golden else "NO",
                      round(stats.average_latency(), 3))
    table.note = ("Signed data violates the uniform-operand assumption "
                  "(sign-extension bits are propagate-heavy); see "
                  "repro.analysis.biased for the matching model.")
    return _finish(table, ctx)


# ----------------------------------------------------------------------
# XCK: engine backends vs functional model cross-check
# ----------------------------------------------------------------------
def crosscheck_table(widths: Sequence[int] = (16, 32, 64),
                     vectors: int = 2048,
                     ctx: Optional[RunContext] = None) -> Table:
    """Cross-check every engine backend against the functional ACA model.

    A thin front-end over :mod:`repro.verify`: for each width the
    gate-level ACA (at the 99.99 % window) runs the same seeded uniform
    vectors through every registered engine backend via the differential
    verifier, so mismatches come back with a first failing vector and a
    minimised reproducer instead of a bare boolean.  Also reports
    per-backend throughput, making this the quickest way to sanity-check
    a ``--backend`` choice.  Deeper coverage (all implementation
    families, adversarial/boundary streams, exhaustive small widths,
    statistical rate checks) lives in ``python -m repro verify``.
    """
    from .engine import available_backends
    from .verify import DifferentialVerifier

    ctx = ctx or get_default_context()
    table = Table(
        f"Engine cross-check: gate-level backends vs functional ACA "
        f"({vectors} vectors)",
        ["bitwidth", "window", "backend", "matches functional", "Mvec/s"])
    # The context's backend (the CLI's --backend) is checked first.
    order = [ctx.backend] + [b for b in available_backends()
                             if b != ctx.backend]
    failures = []
    for n in widths:
        w = choose_window(n)
        for backend in order:
            verifier = DifferentialVerifier(
                width=n, window=w, impls=(f"engine:{backend}",), ctx=ctx)
            with ctx.phase(f"crosscheck_{backend}"):
                t0 = time.perf_counter()
                report = verifier.run(vectors=vectors, streams=("uniform",),
                                      seed=ctx.spawn_seed("crosscheck"))
                dt = time.perf_counter() - t0
            cov = next(c for c in report.coverage
                       if c.impl == f"engine:{backend}")
            table.add_row(n, w, backend,
                          "yes" if report.ok else "NO",
                          round(cov.vectors / dt / 1e6, 3))
            failures.extend(d.describe() for d in report.discrepancies)
    if failures:
        raise AssertionError(
            "engine backends disagree with the functional model:\n  "
            + "\n  ".join(failures))
    table.note = ("All backends must agree bit-for-bit with the functional "
                  "model (proven equivalent to the gates in tests); "
                  "throughput is indicative, not a benchmark.")
    return _finish(table, ctx)
