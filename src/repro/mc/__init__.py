"""Fast functional (non-gate-level) models and Monte Carlo sampling."""

from .fastsim import (
    AcaModel,
    aca_add,
    aca_is_correct,
    carry_word,
    detector_flag,
    generate_word,
    longest_propagate_run,
    propagate_word,
    sample_detector_rate,
    sample_error_rate,
    window_all_ones,
)

__all__ = [
    "AcaModel", "aca_add", "aca_is_correct", "carry_word", "detector_flag",
    "generate_word", "longest_propagate_run", "propagate_word",
    "sample_detector_rate", "sample_error_rate", "window_all_ones",
]
