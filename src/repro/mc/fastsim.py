"""Fast functional model of the Almost Correct Adder.

Bit-parallel integer tricks give O(n / wordsize) evaluation of everything
the gate-level model computes, at any bitwidth:

* ``carry_word`` — the carry into every bit position is
  ``(a + b + cin) ^ a ^ b`` (bit ``i`` is the carry into bit ``i``).
* ``window_all_ones`` — logarithmic-doubling AND of ``w`` consecutive bits
  marks every position starting an all-propagate window.
* An ACA error exists iff some all-propagate window receives an incoming
  carry: ``window_all_ones(p, w) & carry_word != 0``.

These functions are the workhorses of the Monte Carlo experiments and of
the cycle-accurate VLSA machine in :mod:`repro.arch`; the test suite
cross-checks them against the gate-level circuits and the exact DP in
:mod:`repro.analysis.error_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.runs import longest_run_of_ones
from ..engine.context import RunContext, resolve_rng

__all__ = [
    "carry_word",
    "window_all_ones",
    "propagate_word",
    "generate_word",
    "longest_propagate_run",
    "aca_add",
    "aca_is_correct",
    "detector_flag",
    "AcaModel",
    "sample_error_rate",
    "sample_detector_rate",
]


def _mask(width: int) -> int:
    return (1 << width) - 1


def propagate_word(a: int, b: int, width: int) -> int:
    """Per-bit propagate signals ``p = a ^ b`` (masked to *width* bits)."""
    return (a ^ b) & _mask(width)


def generate_word(a: int, b: int, width: int) -> int:
    """Per-bit generate signals ``g = a & b`` (masked to *width* bits)."""
    return (a & b) & _mask(width)


def carry_word(a: int, b: int, width: int, cin: int = 0) -> int:
    """Carries into every bit: bit ``i`` is the carry into position ``i``.

    Bit ``width`` is the carry out.  Identity: ``(a+b+cin) ^ a ^ b`` has
    exactly the carry into bit ``i`` at bit ``i`` (and ``cin`` at bit 0).
    """
    a &= _mask(width)
    b &= _mask(width)
    return (a + b + (cin & 1)) ^ a ^ b


def window_all_ones(word: int, window: int) -> int:
    """Bit ``i`` of the result is 1 iff bits ``i .. i+window-1`` are all 1.

    Uses shift-doubling: ANDing with a copy shifted by ``s`` certifies
    ``s`` extra ones, so ``O(log window)`` big-int operations suffice.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    certified = 1  # each bit currently certifies a run of this length
    out = word
    while certified < window:
        step = min(certified, window - certified)
        out &= out >> step
        certified += step
    return out


def longest_propagate_run(a: int, b: int, width: int) -> int:
    """Length of the longest propagate chain in ``a + b``."""
    return longest_run_of_ones(propagate_word(a, b, width))


def aca_add(a: int, b: int, width: int, window: int,
            cin: int = 0) -> Tuple[int, int]:
    """Speculative sum exactly as the ACA hardware computes it.

    The carry into bit ``i`` is the *generate* of the block
    ``[max(0, i-window) .. i-1]`` — i.e. the true carry under the
    assumption that nothing enters the block from below.  Blocks anchored
    at position 0 additionally see the real carry-in, so the low ``window``
    bits are always exact.

    Args:
        a, b: Operands (masked to *width* bits).
        width: Operand bitwidth.
        window: Speculation window ``w``.
        cin: External carry-in (0 or 1).

    Returns:
        ``(sum, carry_out)`` as the speculative hardware would produce them.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    mask = _mask(width)
    a &= mask
    b &= mask
    result = 0
    carry_out = 0
    for i in range(width + 1):
        lo = max(0, i - window)
        blk_a = (a >> lo) & _mask(i - lo)
        blk_b = (b >> lo) & _mask(i - lo)
        blk_cin = cin if lo == 0 else 0
        spec_carry = (blk_a + blk_b + blk_cin) >> (i - lo) if i > lo else (
            cin & 1)
        if i == width:
            carry_out = spec_carry
        else:
            p_i = ((a >> i) ^ (b >> i)) & 1
            result |= (p_i ^ spec_carry) << i
    return result, carry_out


def aca_is_correct(a: int, b: int, width: int, window: int,
                   cin: int = 0) -> bool:
    """True iff the ACA result (sum and carry out) equals exact addition.

    O(log window) big-int ops: wrong exactly when some all-propagate
    window of length *window* has an incoming carry.  The window starting
    at bit 0 is excluded — it is anchored and absorbs the real carry-in,
    so it can never be wrong (which also makes the error probability
    independent of ``cin``).
    """
    p = propagate_word(a, b, width)
    starts = window_all_ones(p, window)
    carries = carry_word(a, b, width, cin)
    return (starts & carries & ~1) == 0


def detector_flag(a: int, b: int, width: int, window: int) -> bool:
    """The error-detection signal: any propagate run of length >= window.

    Conservative superset of the actual-error condition (never misses a
    real error, may fire when the speculative sum happens to be right).
    """
    return window_all_ones(propagate_word(a, b, width), window) != 0


@dataclass
class AcaModel:
    """Functional ACA configured once, reused across many additions.

    Attributes:
        width: Operand bitwidth.
        window: Speculation window.
    """

    width: int
    window: int

    def add(self, a: int, b: int, cin: int = 0) -> Tuple[int, int]:
        """Speculative ``(sum, cout)``."""
        return aca_add(a, b, self.width, self.window, cin)

    def exact(self, a: int, b: int, cin: int = 0) -> Tuple[int, int]:
        """Reference ``(sum, cout)``."""
        total = (a & _mask(self.width)) + (b & _mask(self.width)) + (cin & 1)
        return total & _mask(self.width), total >> self.width

    def is_correct(self, a: int, b: int, cin: int = 0) -> bool:
        """Whether speculation succeeds on this operand pair."""
        return aca_is_correct(a, b, self.width, self.window, cin)

    def flags_error(self, a: int, b: int) -> bool:
        """Whether the detector requests a recovery cycle."""
        return detector_flag(a, b, self.width, self.window)

    def run_ints(self, vectors: Mapping[str, Union[int, Sequence[int]]]
                 ) -> Dict[str, Union[int, List[int]]]:
        """Bus-level interface mirroring the gate-level ACA circuit.

        Same contract as :func:`repro.engine.execute_ints` on
        ``build_aca(width, window)``: inputs ``a``/``b`` (optionally
        ``cin``), outputs ``sum``/``cout``.  Scalars in, scalars out;
        sequences in, parallel lists out — so functional and gate-level
        paths are interchangeable in cross-checks.

        Args:
            vectors: ``{"a": ..., "b": ...[, "cin": ...]}`` with int or
                per-vector sequence values.

        Returns:
            ``{"sum": ..., "cout": ...}`` in the same scalar/sequence
            shape as the input.
        """
        scalar = isinstance(vectors["a"], int)

        def as_list(value: Union[int, Sequence[int]]) -> List[int]:
            return [value] if isinstance(value, int) else list(value)

        a_vals = as_list(vectors["a"])
        b_vals = as_list(vectors["b"])
        cin_vals = as_list(vectors.get("cin", [0] * len(a_vals)))
        sums: List[int] = []
        couts: List[int] = []
        for a, b, cin in zip(a_vals, b_vals, cin_vals):
            s, c = self.add(a, b, cin)
            sums.append(s)
            couts.append(c)
        if scalar:
            return {"sum": sums[0], "cout": couts[0]}
        return {"sum": sums, "cout": couts}


def _random_operands(width: int, samples: int,
                     rng: np.random.Generator) -> "list[tuple[int, int]]":
    """Uniform operand pairs, drawn in one bulk byte request.

    One ``rng.bytes`` call plus byte-slicing replaces the historical
    per-sample 62-bit chunk loop (an order of magnitude faster at
    Monte-Carlo sample counts).
    """
    nbytes = (width + 7) // 8
    mask = _mask(width)
    raw = rng.bytes(2 * samples * nbytes)
    pairs = []
    pos = 0
    for _ in range(samples):
        a = int.from_bytes(raw[pos:pos + nbytes], "little") & mask
        b = int.from_bytes(raw[pos + nbytes:pos + 2 * nbytes],
                           "little") & mask
        pairs.append((a, b))
        pos += 2 * nbytes
    return pairs


def sample_error_rate(width: int, window: int, samples: int = 100000,
                      seed: Optional[int] = 0,
                      ctx: Optional[RunContext] = None) -> float:
    """Monte Carlo estimate of P(ACA wrong) on uniform operands.

    Args:
        width, window: ACA configuration.
        samples: Operand pairs to draw.
        seed: RNG seed; ``None`` defers to the run context's seeded
            generator (never an unseeded source).
        ctx: Optional run context accumulating the ``mc_samples`` counter.
    """
    rng = (np.random.default_rng(seed) if seed is not None
           else resolve_rng(None, ctx))
    if ctx is not None:
        ctx.add("mc_samples", samples)
    errors = 0
    for a, b in _random_operands(width, samples, rng):
        if not aca_is_correct(a, b, width, window):
            errors += 1
    return errors / samples


def sample_detector_rate(width: int, window: int, samples: int = 100000,
                         seed: Optional[int] = 0,
                         ctx: Optional[RunContext] = None) -> float:
    """Monte Carlo estimate of P(detector fires) on uniform operands.

    Args: as :func:`sample_error_rate`.
    """
    rng = (np.random.default_rng(seed) if seed is not None
           else resolve_rng(None, ctx))
    if ctx is not None:
        ctx.add("mc_samples", samples)
    flags = 0
    for a, b in _random_operands(width, samples, rng):
        if detector_flag(a, b, width, window):
            flags += 1
    return flags / samples

