"""Greedy reproducer minimisation for failing operand pairs.

When the differential engine finds a mismatching vector it re-runs the
failing implementation on candidate simplifications of the pair until no
single-step simplification still fails.  The result is the minimal
reproducer the discrepancy report records: typically a handful of set
bits isolating the exact propagate/generate structure the bug needs.

The strategy is deliberately simple (clear one bit, shift both operands
down) — the predicate is re-evaluated at every step, so the output is
guaranteed to still fail, and the search is bounded by ``max_evals``.
"""

from __future__ import annotations

from typing import Callable, Tuple

__all__ = ["shrink_pair"]


def _cost(a: int, b: int) -> Tuple[int, int]:
    """Order candidates by set-bit count, then by magnitude."""
    return (bin(a).count("1") + bin(b).count("1"), a + b)


def shrink_pair(predicate: Callable[[int, int], bool], a: int, b: int,
                width: int, max_evals: int = 2048) -> Tuple[int, int]:
    """Minimise a failing pair while ``predicate(a, b)`` stays true.

    Args:
        predicate: Returns True while the candidate pair still exhibits
            the failure (the original ``(a, b)`` must satisfy it).
        a, b: The failing operands.
        width: Operand bitwidth (candidates stay masked to it).
        max_evals: Predicate evaluation budget.

    Returns:
        A pair that still satisfies *predicate*, no "heavier" (by set-bit
        count, then magnitude) than the input.
    """
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    if not predicate(a, b):
        return a, b  # caller handed a non-failing pair; nothing to do
    evals = 0

    def still_fails(na: int, nb: int) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        if (na, nb) == (a, b) or _cost(na, nb) >= _cost(a, b):
            return False
        evals += 1
        return predicate(na, nb)

    improved = True
    while improved and evals < max_evals:
        improved = False
        # Slide the whole pattern toward bit 0.
        if (a | b) and still_fails(a >> 1, b >> 1):
            a >>= 1
            b >>= 1
            improved = True
            continue
        # Clear individual bits, high to low.
        for bit in reversed(range(width)):
            m = 1 << bit
            if a & m and still_fails(a & ~m, b):
                a &= ~m
                improved = True
            if b & m and still_fails(a, b & ~m):
                b &= ~m
                improved = True
    return a, b
