"""Seeded operand-vector streams for differential verification.

Every stream is a pure function of ``(name, width, window, count, seed)``
plus its keyword parameters: re-invoking it replays the identical pair
sequence, so a discrepancy report that records those five values is a
complete reproducer.  Streams are yielded in chunks so a million-vector
fuzz run never materialises the whole corpus.

Streams:

* ``uniform`` — i.i.d. uniform operands (the paper's model; the only
  stream the analytic rate cross-checks apply to).
* ``biased`` — per-bit one-probability ``alpha`` via AND/OR-combining
  uniform words (propagate-heavy or generate-heavy operands).
* ``adversarial`` — every pair carries a propagate run of length
  >= ``window`` at a random position, fed by a generate below it, so
  detectors must fire on (essentially) every vector and speculative
  sums are frequently wrong — the worst case an attacker can force.
* ``boundary`` — the deterministic cross product of classic edge
  patterns (zero, all-ones, single bits, alternating masks, window-sized
  runs), cycled to the requested count.
* ``attack`` — the add stream the Section-1 ciphertext-only attack
  actually performs, captured from :mod:`repro.service.loadgen` and
  masked to the verifier's width (correlated ARX traffic).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["STREAMS", "pair_stream", "boundary_patterns"]

#: Stream names, in the order the verifier runs them by default.
STREAMS = ("uniform", "biased", "adversarial", "boundary", "attack")

PairChunk = List[Tuple[int, int]]


def _mask(width: int) -> int:
    return (1 << width) - 1


def _uniform_ints(rng: np.random.Generator, width: int,
                  n: int) -> List[int]:
    """*n* uniform *width*-bit integers from one bulk byte draw."""
    nbytes = (width + 7) // 8
    mask = _mask(width)
    raw = rng.bytes(n * nbytes)
    return [int.from_bytes(raw[i * nbytes:(i + 1) * nbytes], "little") & mask
            for i in range(n)]


def _biased_ints(rng: np.random.Generator, width: int, n: int,
                 alpha: float) -> List[int]:
    """Integers whose bits are one with probability ~ *alpha*.

    AND-ing k uniform words hits ``2^-k``; OR-ing hits ``1 - 2^-k``;
    the closest achievable alpha is used (mirrors the service loadgen).
    """
    if not (0.0 < alpha < 1.0):
        raise ValueError("alpha must be in (0, 1)")
    candidates = [(abs(alpha - 0.5 ** k), "and", k) for k in range(1, 7)]
    candidates += [(abs(alpha - (1 - 0.5 ** k)), "or", k)
                   for k in range(2, 7)]
    _, mode, k = min(candidates)
    out = _uniform_ints(rng, width, n)
    for _ in range(k - 1):
        extra = _uniform_ints(rng, width, n)
        if mode == "and":
            out = [a & b for a, b in zip(out, extra)]
        else:
            out = [a | b for a, b in zip(out, extra)]
    return out


def _adversarial_pairs(rng: np.random.Generator, width: int, window: int,
                       n: int) -> PairChunk:
    """Pairs whose propagate word contains a >= ``window`` run of ones.

    A uniform propagate word gets a forced all-ones run of length
    ``min(window, width)`` at a random position; when the run does not
    touch bit 0, the bit just below it is forced to *generate* so a real
    carry feeds the run (making the speculative sum actually wrong, not
    just detector-flagged, whenever the run is unanchored).
    """
    run = min(max(window, 1), width)
    mask = _mask(width)
    run_mask = _mask(run)
    a_vals = _uniform_ints(rng, width, n)
    p_vals = _uniform_ints(rng, width, n)
    if width > run:
        starts = rng.integers(0, width - run + 1, size=n)
    else:
        starts = np.zeros(n, dtype=np.int64)
    out: PairChunk = []
    for a, p, j in zip(a_vals, p_vals, starts):
        j = int(j)
        p |= run_mask << j
        b = (a ^ p) & mask
        if j > 0:
            # Generate right below the run: carry enters it for sure.
            g = 1 << (j - 1)
            a |= g
            b |= g
        out.append((a & mask, b))
    return out


def boundary_patterns(width: int, window: int) -> List[int]:
    """The deterministic edge-pattern vocabulary for *width*/*window*."""
    mask = _mask(width)
    alt = sum(1 << i for i in range(0, width, 2))
    pats = {
        0, 1, mask, mask >> 1, mask ^ 1, 1 << (width - 1),
        alt & mask, (alt << 1) & mask,
    }
    for k in {1, 2, max(1, window - 1), min(window, width),
              min(window + 1, width), width - 1, width // 2}:
        if k <= 0 or k > width:
            continue
        run = _mask(k)
        pats.add(run)                    # low run of ones
        pats.add((run << (width - k)) & mask)  # high run of ones
        pats.add(mask ^ run)             # complement
    return sorted(pats)


def _boundary_pairs(width: int, window: int, count: int,
                    chunk: int) -> Iterator[PairChunk]:
    pats = boundary_patterns(width, window)
    product = itertools.cycle(itertools.product(pats, pats))
    done = 0
    while done < count:
        n = min(chunk, count - done)
        yield [next(product) for _ in range(n)]
        done += n


#: Internal draw granularity for the random streams.  RNG consumption is
#: always blocked at this size regardless of the caller's ``chunk``, so
#: the emitted pair sequence is a pure function of
#: ``(name, width, window, count, seed)`` — re-chunking cannot change it.
_BLOCK = 4096


def _random_blocks(name: str, width: int, window: int, count: int,
                   seed: int, alpha: float) -> Iterator[PairChunk]:
    """The seeded streams, drawn in fixed :data:`_BLOCK`-sized blocks."""
    rng = np.random.default_rng(seed)
    done = 0
    while done < count:
        n = min(_BLOCK, count - done)
        if name == "uniform":
            yield list(zip(_uniform_ints(rng, width, n),
                           _uniform_ints(rng, width, n)))
        elif name == "biased":
            yield list(zip(_biased_ints(rng, width, n, alpha),
                           _biased_ints(rng, width, n, alpha)))
        else:  # adversarial
            yield _adversarial_pairs(rng, width, window, n)
        done += n


def _rechunk(blocks: Iterator[PairChunk],
             chunk: int) -> Iterator[PairChunk]:
    buf: PairChunk = []
    for block in blocks:
        buf.extend(block)
        while len(buf) >= chunk:
            yield buf[:chunk]
            buf = buf[chunk:]
    if buf:
        yield buf


def pair_stream(name: str, width: int, window: int, count: int,
                seed: int = 0, chunk: int = 4096,
                alpha: float = 0.75) -> Iterator[PairChunk]:
    """Yield the operand-pair chunks of stream *name*.

    The pair sequence depends only on ``(name, width, window, count,
    seed)`` (plus ``alpha`` for ``biased``); ``chunk`` changes the yield
    granularity, never the vectors.

    Args:
        name: One of :data:`STREAMS`.
        width: Operand bitwidth.
        window: Speculation window (shapes adversarial/boundary vectors).
        count: Total pairs to emit.
        seed: Stream seed; identical arguments replay identically.
        chunk: Maximum pairs per yielded list.
        alpha: Per-bit one-probability target (``biased`` only).
    """
    if name not in STREAMS:
        raise ValueError(f"unknown stream {name!r}; "
                         f"expected one of {STREAMS}")
    if width <= 0:
        raise ValueError("width must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    if chunk <= 0:
        raise ValueError("chunk must be positive")

    if name == "boundary":
        yield from _boundary_pairs(width, window, count, chunk)
        return

    if name == "attack":
        rng = np.random.default_rng(seed)
        from ..service.loadgen import capture_attack_pairs

        mask = _mask(width)
        pairs = [(a & mask, b & mask)
                 for a, b in capture_attack_pairs(count, rng)]
        for lo in range(0, len(pairs), chunk):
            yield pairs[lo:lo + chunk]
        return

    yield from _rechunk(
        _random_blocks(name, width, window, count, seed, alpha), chunk)
