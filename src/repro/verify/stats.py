"""Statistical cross-checks: empirical rates versus the exact model.

Matching sums proves nothing about a *probabilistic* component: a
detector that silently under-fires still produces correct sums whenever
the recovery path re-computes them exactly.  The verify engine therefore
also tests every implementation's observed fire/error **counts** against
the exact analytic probabilities (the ``A_n(x)`` recurrence in
:mod:`repro.analysis.runs` and the Markov chain in
:mod:`repro.analysis.error_model`) with a binomial concentration bound:
an observed count outside ``expected ± z·σ`` fails the run even when
every sum matched.

The default ``z = 5`` keeps the false-alarm probability per check below
~6e-7 (normal tail), so a seeded CI run never flakes, while any bug that
shifts a rate by a few percent at 10k+ vectors is caught immediately.
An extra additive slack of 2 counts covers normal-approximation error at
tiny ``n·p``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["RateCheck", "binomial_bounds", "check_rate", "wilson_interval"]

#: Additive slack (in counts) on top of z·σ, covering the discreteness
#: and normal-approximation error when ``n·p`` is small.
COUNT_SLACK = 2.0


def binomial_bounds(expected_p: float, trials: int,
                    z: float = 5.0) -> Tuple[float, float]:
    """Acceptance interval (in counts) for Binomial(*trials*, *expected_p*).

    Returns ``(lo, hi)`` such that the observed count of a correct
    implementation lies inside with overwhelming probability.
    """
    if not (0.0 <= expected_p <= 1.0):
        raise ValueError("expected_p must be in [0, 1]")
    if trials < 0:
        raise ValueError("trials must be non-negative")
    mean = trials * expected_p
    sigma = math.sqrt(trials * expected_p * (1.0 - expected_p))
    delta = z * sigma + COUNT_SLACK
    return max(0.0, mean - delta), min(float(trials), mean + delta)


def wilson_interval(count: int, trials: int,
                    z: float = 5.0) -> Tuple[float, float]:
    """Wilson score interval for the observed proportion.

    Reported alongside every rate check so a human reading the report
    sees the empirical confidence interval, not just a pass/fail bit.
    """
    if trials <= 0:
        return 0.0, 1.0
    p = count / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (z * math.sqrt(p * (1 - p) / trials
                          + z2 / (4 * trials * trials))) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


@dataclass(frozen=True)
class RateCheck:
    """One empirical-versus-analytic rate comparison.

    Attributes:
        name: What was measured (e.g. ``detector_rate/service:numpy``).
        stream: Stream the counts came from (rate checks only apply to
            streams whose analytic distribution is known — uniform).
        observed: Observed event count.
        trials: Vectors observed.
        expected: Analytic event probability.
        lo, hi: Acceptance interval in counts.
        ok: Whether ``observed`` lies inside ``[lo, hi]``.
        z: Sigma multiplier used.
    """

    name: str
    stream: str
    observed: int
    trials: int
    expected: float
    lo: float
    hi: float
    ok: bool
    z: float

    @property
    def rate(self) -> float:
        return self.observed / self.trials if self.trials else 0.0

    def as_dict(self) -> Dict[str, Any]:
        w_lo, w_hi = wilson_interval(self.observed, self.trials, self.z)
        return {
            "name": self.name,
            "stream": self.stream,
            "observed": self.observed,
            "trials": self.trials,
            "observed_rate": self.rate,
            "expected_rate": self.expected,
            "accept_lo_count": self.lo,
            "accept_hi_count": self.hi,
            "wilson_lo": w_lo,
            "wilson_hi": w_hi,
            "z": self.z,
            "ok": self.ok,
        }


def check_rate(name: str, stream: str, observed: int, trials: int,
               expected_p: float, z: float = 5.0) -> RateCheck:
    """Build the :class:`RateCheck` for one observed count."""
    lo, hi = binomial_bounds(expected_p, trials, z)
    ok = lo <= observed <= hi
    return RateCheck(name=name, stream=stream, observed=observed,
                     trials=trials, expected=expected_p, lo=lo, hi=hi,
                     ok=ok, z=z)
