"""The differential verification engine.

Every claim of "bit-identical speculative-adder behaviour" in this
repository is enforced here, from one place, against one reference: the
*functional model* of the adder family under test (registered in
:mod:`repro.engine.functional`, itself cross-checked exactly against the
analytic recurrences).  Implementations register as adapters with a
uniform batch interface and fall into two groups:

* ``speculative`` — produce the raw speculative ``(sum, cout)`` the
  hardware emits (gate-level circuits under every engine backend, the
  legacy interpreter, the functional model itself, the family's
  vectorised numpy kernel);
* ``exact`` — produce the corrected sum plus the detector/stall flag and
  per-op latency (:class:`~repro.arch.vlsa_machine.VlsaMachine`, the
  service's :class:`~repro.service.executor.VlsaBatchExecutor` under
  both its backends, the gate-level recovery datapath).

Which adder is being verified is a *family* choice
(:mod:`repro.families`): ``family="aca"`` (the default) drives the
paper's Almost Correct Adder; ``"cesa"`` and ``"blockspec"`` drive the
other zoo members through exactly the same machinery.  The single
``window`` knob maps onto each family's primary parameter via
:func:`repro.families.base.resolve_params`.

One seeded vector stream drives every registered pair; any elementwise
disagreement is recorded with its first failing vector and a minimised
reproducer.  On top of the elementwise comparison, observed detector /
error **counts** on the uniform stream are tested against the family's
exact analytic probabilities with a binomial bound — so a
probabilistically wrong detector fails the run even when every sum
matches (the recovery path hides under- or over-firing detectors from
sum comparison).

Exhaustive mode enumerates *all* operand pairs of a small-width grid and
upgrades the statistical check to exact integer equality: over the full
``4^n`` pair space the number of speculative errors must equal
``P_error * 4^n`` computed with ``Fraction`` arithmetic — a zero-slack
cross-check of the analytic model against brute force.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..engine.context import RunContext, get_default_context
from ..engine.functional import functional_model
from ..families.base import get_family
from ..service.metrics import MetricsRegistry
from .report import Coverage, Discrepancy, ExhaustiveCell, VerifyReport
from .shrink import shrink_pair
from .stats import check_rate
from .vectors import pair_stream

__all__ = [
    "VerificationError",
    "ImplResult",
    "Implementation",
    "register_implementation",
    "available_implementations",
    "default_implementations",
    "make_implementation",
    "DifferentialVerifier",
    "run_exhaustive",
    "DEFAULT_STREAMS",
]

Pair = Tuple[int, int]

#: Streams a plain fuzz run drives by default ("attack" is opt-in — it
#: replays a captured cipher trace and costs a real attack run).
DEFAULT_STREAMS = ("uniform", "biased", "adversarial", "boundary")


class VerificationError(AssertionError):
    """Raised by ``raise_on_failure`` entry points when a run fails."""

    def __init__(self, report: VerifyReport):
        self.report = report
        super().__init__(
            f"differential verification failed: "
            f"{report.mismatch_count} mismatches, "
            f"{len(report.stat_failures)} failed rate checks")


def _resolved(family: str, width: int, window: Optional[int]
              ) -> Tuple[Any, Dict[str, int], int]:
    """(family object, resolved params, primary value) for one config."""
    fam = get_family(family)
    params = fam.resolve_params(width, window=window)
    return fam, params, fam.primary_value(width, params)


# ----------------------------------------------------------------------
# Implementation adapters
# ----------------------------------------------------------------------
@dataclass
class ImplResult:
    """Batch output of one implementation.

    ``sums``/``couts`` are speculative values for the ``speculative``
    family and corrected values for the ``exact`` family.  ``flags`` /
    ``latencies`` / ``spec_errors`` are optional; when ``flags`` is
    absent but the implementation can still report how many vectors took
    the recovery path, ``stall_count`` feeds the statistical check.
    """

    sums: List[int]
    couts: Optional[List[int]] = None
    flags: Optional[List[bool]] = None
    latencies: Optional[List[int]] = None
    spec_errors: Optional[List[bool]] = None
    stall_count: Optional[int] = None

    def stalls(self) -> Optional[int]:
        if self.flags is not None:
            return sum(1 for f in self.flags if f)
        return self.stall_count


class Implementation:
    """Adapter base: a named, family-tagged batch evaluator."""

    name = "?"
    family = "speculative"  # or "exact"

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        raise NotImplementedError


class FunctionalImpl(Implementation):
    """The family's functional model through its ``run_ints`` interface."""

    family = "speculative"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca"):
        self.name = "functional"
        self.model = functional_model(family, width=width, window=window)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        out = self.model.run_ints({"a": [a for a, _ in pairs],
                                   "b": [b for _, b in pairs]})
        flags = [self.model.flags_error(a, b) for a, b in pairs]
        return ImplResult(sums=list(out["sum"]), couts=list(out["cout"]),
                          flags=flags)


class EngineImpl(Implementation):
    """Gate-level speculative core under one compiled-engine backend."""

    family = "speculative"

    def __init__(self, width: int, window: int, backend: str,
                 recovery_cycles: int = 1, family: str = "aca"):
        fam, params, _ = _resolved(family, width, window)
        self.name = f"engine:{backend}"
        self.backend = backend
        self.width = width
        self.circuit = fam.build_speculative(width, **params)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        from ..engine import execute_ints

        out = execute_ints(self.circuit,
                           {"a": [a for a, _ in pairs],
                            "b": [b for _, b in pairs]},
                           backend=self.backend)
        return ImplResult(sums=out["sum"], couts=out["cout"])


class InterpreterImpl(Implementation):
    """The legacy per-gate interpreter on the same gate-level core."""

    family = "speculative"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca"):
        fam, params, _ = _resolved(family, width, window)
        self.name = "interpreter"
        self.circuit = fam.build_speculative(width, **params)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        from ..circuit import simulate_interpreted
        from ..engine.pack import pack_vectors, unpack_vectors

        n = len(pairs)
        stim = {
            "a": pack_vectors([a for a, _ in pairs],
                              len(self.circuit.inputs["a"])),
            "b": pack_vectors([b for _, b in pairs],
                              len(self.circuit.inputs["b"])),
        }
        words = simulate_interpreted(self.circuit, stim, num_vectors=n)
        return ImplResult(sums=unpack_vectors(words["sum"], n),
                          couts=unpack_vectors(words["cout"], n))


class KernelImpl(Implementation):
    """The family's vectorised numpy kernel (widths up to 64 bits)."""

    family = "speculative"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca"):
        fam, params, _ = _resolved(family, width, window)
        self.name = "kernel"
        self.kernel = fam.numpy_kernel(width, **params)
        if self.kernel is None:
            raise ValueError(
                f"family {family!r} has no numpy kernel at width {width}")

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        import numpy as np

        a = np.array([a for a, _ in pairs], dtype=np.uint64)
        b = np.array([b for _, b in pairs], dtype=np.uint64)
        batch = self.kernel(a, b)
        return ImplResult(
            sums=[int(v) for v in batch.spec_sums],
            couts=[int(v) for v in batch.spec_couts],
            flags=[bool(v) for v in batch.flags],
            spec_errors=[bool(v) for v in batch.spec_errors])


class RecoveryImpl(Implementation):
    """The gate-level recovery datapath (exact outputs + detector flag).

    Drives the family's full :meth:`~repro.families.base.AdderFamily.
    build_circuit` netlist — speculative core, detector and shared-logic
    recovery path — and holds the *corrected* ``sum_exact``/``cout_exact``
    outputs plus the ``err`` flag to the reference.  This is the adapter
    that makes "the recovery hardware is exact for every family" a
    registry-enforced property rather than a per-family test.
    """

    family = "exact"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca"):
        fam, params, _ = _resolved(family, width, window)
        self.name = "recovery"
        self.circuit = fam.build_circuit(width, **params)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        from ..engine import execute_ints

        out = execute_ints(self.circuit,
                           {"a": [a for a, _ in pairs],
                            "b": [b for _, b in pairs]})
        return ImplResult(sums=out["sum_exact"], couts=out["cout_exact"],
                          flags=[bool(v) for v in out["err"]])


class MachineImpl(Implementation):
    """The cycle-accurate :class:`VlsaMachine` (corrected sums + stalls)."""

    family = "exact"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca"):
        from ..arch import VlsaMachine

        self.name = "machine"
        self.machine = VlsaMachine(width, window=window,
                                   recovery_cycles=recovery_cycles,
                                   family=family)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        trace = self.machine.run(pairs)
        return ImplResult(
            sums=[r.sum_out for r in trace.results],
            couts=[r.cout for r in trace.results],
            flags=[r.stalled for r in trace.results],
            latencies=[r.latency_cycles for r in trace.results],
            spec_errors=[r.stalled and not r.speculative_correct
                         for r in trace.results])


class ExecutorImpl(Implementation):
    """The service's micro-batch executor under one backend."""

    family = "exact"

    def __init__(self, width: int, window: int, backend: str,
                 recovery_cycles: int = 1, family: str = "aca"):
        from ..service.executor import VlsaBatchExecutor

        self.name = f"service:{backend}"
        self.executor = VlsaBatchExecutor(width, window=window,
                                          recovery_cycles=recovery_cycles,
                                          backend=backend, family=family)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        out = self.executor.execute(pairs)
        return ImplResult(sums=out.sums, couts=out.couts,
                          flags=out.stalled, latencies=out.latencies,
                          spec_errors=out.spec_errors)


class ClusterImpl(Implementation):
    """The multi-process serving cluster, end to end.

    Batches travel the full production path — admission, sharding, the
    pipe wire protocol, a real worker process, result slicing — and the
    verifier holds the answers to the same bit-identical standard as the
    in-process executor.  Pools are expensive to boot, so instances
    share one process-wide cached cluster per configuration
    (:func:`~repro.cluster.sync.shared_cluster`); it is torn down at
    interpreter exit.  Because it spawns OS processes, ``cluster`` is
    registered but *not* part of :func:`default_implementations` —
    drive it explicitly (``--impls service:numpy,cluster``).

    The *transport* parameter selects the router<->worker wire:
    ``cluster`` rides the pickle-over-pipe path, ``cluster:shm`` the
    zero-copy shared-memory rings.  Both are held to the identical
    bit-for-bit standard, which is what makes the pipe path a live
    differential reference for the ring codec.
    """

    family = "exact"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca", workers: Optional[int] = None,
                 transport: str = "pipe"):
        import os

        from ..cluster import ClusterConfig
        from ..cluster.sync import shared_cluster

        self.name = ("cluster" if transport == "pipe"
                     else f"cluster:{transport}")
        if workers is None:
            workers = int(os.environ.get("REPRO_CLUSTER_VERIFY_WORKERS",
                                         "2"))
        self.cluster = shared_cluster(ClusterConfig(
            width=width, window=window, recovery_cycles=recovery_cycles,
            workers=workers, heartbeat_interval=0.1, family=family,
            transport=transport))

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        out = self.cluster.add_batch(list(pairs))
        return ImplResult(sums=out.sums, couts=out.couts,
                          flags=out.stalled, latencies=out.latencies)


class AutotunedImpl(Implementation):
    """The autotuned service path: config changes mid-stream.

    Wraps :class:`~repro.autotune.controller.SyncAutotunedExecutor` —
    the online controller reconfigures window, family and batch size
    *between micro-batches while the vector stream is being verified*
    (the adversarial/biased streams force real switches).  The paper's
    invariant under test: recovery is exact at every configuration, so
    sums/couts must stay bit-identical to ``service:numpy`` no matter
    the reconfiguration schedule.  Flags and latencies legitimately
    differ per configuration, so this adapter reports none and the
    verifier compares values only.
    """

    family = "exact"

    def __init__(self, width: int, window: int, recovery_cycles: int = 1,
                 family: str = "aca"):
        from ..autotune import SLA, PolicyEngine, SyncAutotunedExecutor

        self.name = "service:autotuned"
        policy = PolicyEngine(width, SLA(stall_rate=0.05),
                              batch_sizes=[1024],
                              recovery_cycles=recovery_cycles)
        self.executor = SyncAutotunedExecutor(
            width, policy, window=window, family=family,
            recovery_cycles=recovery_cycles,
            decide_every_ops=512, profile_pairs=2048)

    def run(self, pairs: Sequence[Pair]) -> ImplResult:
        out = self.executor.execute(list(pairs))
        return ImplResult(sums=out.sums, couts=out.couts)


#: name -> factory(width, window, recovery_cycles[, family]) ->
#: Implementation.  Factories that do not accept a ``family`` keyword
#: (legacy three-argument ones, e.g. the mutation-test mutants) remain
#: usable for the default ``"aca"`` family.
_FACTORIES: Dict[str, Callable[..., Implementation]] = {}
#: The built-in adapter names (a default run drives exactly these;
#: externally registered implementations must be named explicitly).
_BUILTIN: List[str] = []


def register_implementation(
        name: str,
        factory: Callable[..., Implementation]) -> None:
    """Register *factory* under *name* (used by tests for mutants too)."""
    _FACTORIES[name] = factory


def unregister_implementation(name: str) -> None:
    """Remove a registered implementation (mutation-test cleanup)."""
    if name in _BUILTIN:
        raise ValueError(f"refusing to unregister builtin {name!r}")
    _FACTORIES.pop(name, None)


def _ensure_builtin() -> None:
    if "functional" in _FACTORIES:
        return
    from ..engine import available_backends

    register_implementation("functional", FunctionalImpl)
    for backend in available_backends():
        register_implementation(
            f"engine:{backend}",
            lambda w, win, rc, family="aca", _b=backend:
                EngineImpl(w, win, _b, rc, family=family))
    register_implementation("interpreter", InterpreterImpl)
    register_implementation("kernel", KernelImpl)
    register_implementation("recovery", RecoveryImpl)
    register_implementation("machine", MachineImpl)
    register_implementation(
        "service:numpy",
        lambda w, win, rc, family="aca":
            ExecutorImpl(w, win, "numpy", rc, family=family))
    register_implementation(
        "service:bigint",
        lambda w, win, rc, family="aca":
            ExecutorImpl(w, win, "bigint", rc, family=family))
    _BUILTIN.extend(sorted(_FACTORIES))
    # One more implementation: the whole multi-process cluster.
    # Registered after the _BUILTIN snapshot on purpose — it spawns OS
    # processes, so a plain `repro verify` run does not pay for it; CI
    # and the cluster tests opt in with explicit impl lists.
    register_implementation("cluster", ClusterImpl)
    register_implementation(
        "cluster:shm",
        lambda w, win, rc, family="aca":
            ClusterImpl(w, win, rc, family=family, transport="shm"))
    # Likewise post-snapshot: the autotuned path reconfigures itself
    # mid-stream, so its flags are schedule-dependent — it exists to
    # prove sums/couts stay bit-identical across reconfigurations and
    # is driven explicitly (--impls service:numpy,service:autotuned).
    register_implementation("service:autotuned", AutotunedImpl)


def available_implementations() -> List[str]:
    """Every registered implementation name."""
    _ensure_builtin()
    return sorted(_FACTORIES)


def default_implementations(width: int, family: str = "aca") -> List[str]:
    """The built-in implementations a plain run drives for *width*."""
    _ensure_builtin()
    names = list(_BUILTIN)
    if width > 64:
        # Machine-word kernels by design; bigint paths cover wide cores.
        names = [n for n in names if n not in ("service:numpy", "kernel")]
    return names


def _accepts_family(factory: Callable[..., Implementation]) -> bool:
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return any(p.name == "family" or p.kind is p.VAR_KEYWORD
               for p in sig.parameters.values())


def make_implementation(name: str, width: int, window: int,
                        recovery_cycles: int = 1,
                        family: str = "aca") -> Implementation:
    """Instantiate the registered implementation *name*."""
    _ensure_builtin()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"no implementation registered as {name!r}; available: "
            f"{', '.join(available_implementations())}") from None
    if _accepts_family(factory):
        impl = factory(width, window, recovery_cycles, family=family)
    elif family == "aca":
        impl = factory(width, window, recovery_cycles)
    else:
        raise ValueError(
            f"implementation {name!r} is registered with a legacy "
            f"factory that does not accept family={family!r}")
    impl.name = name
    return impl


# ----------------------------------------------------------------------
# Reference values (the functional fast path, computed once per chunk)
# ----------------------------------------------------------------------
@dataclass
class _Reference:
    spec_sums: List[int]
    spec_couts: List[int]
    exact_sums: List[int]
    exact_couts: List[int]
    flags: List[bool]
    correct: List[bool]


def _reference(pairs: Sequence[Pair], width: int, window: int,
               family: str = "aca", model: Any = None) -> _Reference:
    if model is None:
        model = functional_model(family, width=width, window=window)
    mask = (1 << width) - 1
    spec_sums: List[int] = []
    spec_couts: List[int] = []
    exact_sums: List[int] = []
    exact_couts: List[int] = []
    flags: List[bool] = []
    correct: List[bool] = []
    for a, b in pairs:
        a &= mask
        b &= mask
        ss, sc = model.add(a, b)
        total = a + b
        spec_sums.append(ss)
        spec_couts.append(sc)
        exact_sums.append(total & mask)
        exact_couts.append(total >> width)
        flags.append(model.flags_error(a, b))
        correct.append(model.is_correct(a, b))
    return _Reference(spec_sums, spec_couts, exact_sums, exact_couts,
                      flags, correct)


# ----------------------------------------------------------------------
# The verifier
# ----------------------------------------------------------------------
class DifferentialVerifier:
    """Drives every registered implementation from one vector stream.

    Args:
        width: Operand bitwidth.
        window: The family's primary parameter (for ACA, the speculation
            window; default: the family's own choice, clamped to
            *width*).
        impls: Implementation names to drive (default:
            :func:`default_implementations`).
        recovery_cycles: Recovery penalty for the exact family.
        z: Sigma multiplier for the binomial rate checks.
        ctx: Run context — vectors/mismatch counters, per-impl phase
            timers, and one trace event per discrepancy land in its
            manifest.
        registry: Metrics registry — ``verify_*`` counters accumulate
            across runs of this verifier.
        shrink: Minimise failing vectors (re-runs the implementation).
        max_discrepancies: Recorded-discrepancy cap (counts keep
            accumulating in coverage beyond it).
        family: Registered adder family to verify (default ``"aca"``).
    """

    def __init__(self, width: int, window: Optional[int] = None,
                 impls: Optional[Sequence[str]] = None,
                 recovery_cycles: int = 1, z: float = 5.0,
                 ctx: Optional[RunContext] = None,
                 registry: Optional[MetricsRegistry] = None,
                 shrink: bool = True, max_discrepancies: int = 16,
                 family: str = "aca"):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.family = family
        fam, params, primary = _resolved(family, width, window)
        self.params = params
        self.window = primary
        if self.window <= 0:
            raise ValueError("window must be positive")
        self._family_obj = fam
        self._model = functional_model(family, width=width,
                                       window=self.window)
        self.recovery_cycles = recovery_cycles
        self.z = z
        self.ctx = ctx if ctx is not None else get_default_context()
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        self.shrink = shrink
        self.max_discrepancies = max_discrepancies
        names = list(impls) if impls is not None else (
            default_implementations(width, family))
        self.impls = [make_implementation(n, self.width, self.window,
                                          recovery_cycles, family=family)
                      for n in names]
        self.m_vectors = self.registry.counter(
            "verify_vectors_total", "vectors driven per implementation")
        self.m_mismatch = self.registry.counter(
            "verify_mismatches_total", "elementwise disagreements found")
        self.m_stat_fail = self.registry.counter(
            "verify_stat_failures_total", "failed binomial rate checks")

    def _reference(self, pairs: Sequence[Pair]) -> _Reference:
        return _reference(pairs, self.width, self.window,
                          family=self.family, model=self._model)

    # ------------------------------------------------------------------
    def run(self, vectors: int = 10000,
            streams: Sequence[str] = DEFAULT_STREAMS,
            seed: Optional[int] = None,
            chunk: int = 4096) -> VerifyReport:
        """Fuzz every implementation with *vectors* per stream."""
        seed = self.ctx.seed if seed is None else seed
        report = VerifyReport(width=self.width, window=self.window,
                              seed=seed, family=self.family,
                              streams=list(streams),
                              impls=[i.name for i in self.impls])
        coverage = {i.name: Coverage(impl=i.name) for i in self.impls}
        uniform = {"n": 0, "errors": 0, "flags": 0}
        impl_stalls: Dict[str, int] = {}
        with self.ctx.phase("verify"):
            for stream in streams:
                base = 0
                for pairs in pair_stream(stream, self.width, self.window,
                                         vectors, seed=seed, chunk=chunk):
                    ref = self._reference(pairs)
                    self._check_reference(ref, pairs, stream, base, seed,
                                          report)
                    if stream == "uniform":
                        uniform["n"] += len(pairs)
                        uniform["errors"] += sum(
                            1 for c in ref.correct if not c)
                        uniform["flags"] += sum(
                            1 for f in ref.flags if f)
                    for impl in self.impls:
                        with self.ctx.phase(f"verify_{impl.name}"):
                            res = impl.run(pairs)
                        cov = coverage[impl.name]
                        cov.add(stream, len(pairs))
                        self.m_vectors.inc(len(pairs))
                        self._compare(impl, res, ref, pairs, stream,
                                      base, seed, report, cov)
                        if stream == "uniform":
                            stalls = res.stalls()
                            if stalls is not None:
                                impl_stalls[impl.name] = (
                                    impl_stalls.get(impl.name, 0) + stalls)
                    base += len(pairs)
        report.coverage = list(coverage.values())
        self._rate_checks(uniform, impl_stalls, report)
        self.ctx.add("verify_vectors",
                     sum(c.vectors for c in report.coverage))
        self.ctx.add("verify_mismatches", report.mismatch_count)
        return report

    def run_pairs(self, pairs_iter: Iterable[Sequence[Pair]],
                  stream: str = "explicit",
                  seed: Optional[int] = None) -> VerifyReport:
        """Drive explicit pair chunks (exhaustive mode's entry point)."""
        seed = self.ctx.seed if seed is None else seed
        report = VerifyReport(width=self.width, window=self.window,
                              seed=seed, family=self.family,
                              streams=[stream],
                              impls=[i.name for i in self.impls])
        coverage = {i.name: Coverage(impl=i.name) for i in self.impls}
        totals = {"n": 0, "errors": 0, "flags": 0}
        base = 0
        with self.ctx.phase("verify"):
            for pairs in pairs_iter:
                pairs = list(pairs)
                ref = self._reference(pairs)
                self._check_reference(ref, pairs, stream, base, seed,
                                      report)
                totals["n"] += len(pairs)
                totals["errors"] += sum(1 for c in ref.correct if not c)
                totals["flags"] += sum(1 for f in ref.flags if f)
                for impl in self.impls:
                    with self.ctx.phase(f"verify_{impl.name}"):
                        res = impl.run(pairs)
                    cov = coverage[impl.name]
                    cov.add(stream, len(pairs))
                    self.m_vectors.inc(len(pairs))
                    self._compare(impl, res, ref, pairs, stream, base,
                                  seed, report, cov)
                base += len(pairs)
        report.coverage = list(coverage.values())
        report.totals = totals  # type: ignore[attr-defined]
        self.ctx.add("verify_vectors",
                     sum(c.vectors for c in report.coverage))
        self.ctx.add("verify_mismatches", report.mismatch_count)
        return report

    # ------------------------------------------------------------------
    def _check_reference(self, ref: _Reference, pairs: Sequence[Pair],
                         stream: str, base: int, seed: int,
                         report: VerifyReport) -> None:
        """Internal invariants of the reference model itself.

        The detector must never miss an actual error, and the
        speculative result must equal the exact one iff the model calls
        the pair correct.
        """
        for i in range(len(pairs)):
            spec_ok = (ref.spec_sums[i] == ref.exact_sums[i]
                       and ref.spec_couts[i] == ref.exact_couts[i])
            flag_missed = not ref.flags[i] and not ref.correct[i]
            if spec_ok != ref.correct[i] or flag_missed:
                self._record(report, Discrepancy(
                    kind="reference", impl="functional", stream=stream,
                    width=self.width, window=self.window, index=base + i,
                    a=pairs[i][0], b=pairs[i][1],
                    expected={"correct": ref.correct[i],
                              "flag": ref.flags[i]},
                    got={"spec_matches_exact": spec_ok}, seed=seed,
                    family=self.family))

    def _compare(self, impl: Implementation, res: ImplResult,
                 ref: _Reference, pairs: Sequence[Pair], stream: str,
                 base: int, seed: int, report: VerifyReport,
                 cov: Coverage) -> None:
        exp_sums = (ref.spec_sums if impl.family == "speculative"
                    else ref.exact_sums)
        exp_couts = (ref.spec_couts if impl.family == "speculative"
                     else ref.exact_couts)
        checks: List[Tuple[str, Sequence, Sequence]] = []
        if res.sums != exp_sums:
            checks.append(("sum", exp_sums, res.sums))
        if res.couts is not None and res.couts != exp_couts:
            checks.append(("cout", exp_couts, res.couts))
        if res.flags is not None and res.flags != ref.flags:
            checks.append(("flag", ref.flags, res.flags))
        if res.latencies is not None:
            exp_lat = [1 + (self.recovery_cycles if f else 0)
                       for f in ref.flags]
            if res.latencies != exp_lat:
                checks.append(("latency", exp_lat, res.latencies))
        if res.spec_errors is not None:
            exp_err = [f and not c
                       for f, c in zip(ref.flags, ref.correct)]
            if res.spec_errors != exp_err:
                checks.append(("spec_error", exp_err, res.spec_errors))
        for kind, expected, got in checks:
            for i, (e, g) in enumerate(zip(expected, got)):
                if e != g:
                    cov.mismatches += 1
                    self.m_mismatch.inc()
                    self._record(report, self._discrepancy(
                        impl, kind, pairs[i], stream, base + i, seed,
                        e, g))
                    break  # first failing vector per kind per chunk

    def _discrepancy(self, impl: Implementation, kind: str, pair: Pair,
                     stream: str, index: int, seed: int,
                     expected: object, got: object) -> Discrepancy:
        a, b = pair
        disc = Discrepancy(kind=kind, impl=impl.name, stream=stream,
                           width=self.width, window=self.window,
                           index=index, a=a, b=b, expected=expected,
                           got=got, seed=seed, family=self.family)
        if self.shrink:
            predicate = self._predicate(impl, kind)
            sa, sb = shrink_pair(predicate, a, b, self.width)
            if (sa, sb) != (a, b):
                disc.shrunk_a, disc.shrunk_b = sa, sb
        return disc

    def _predicate(self, impl: Implementation,
                   kind: str) -> Callable[[int, int], bool]:
        """Single-pair "still fails" predicate for the shrinker."""

        def fails(a: int, b: int) -> bool:
            ref = self._reference([(a, b)])
            try:
                res = impl.run([(a, b)])
            except Exception:
                return True  # crashing on the candidate still counts
            if kind == "sum":
                exp = (ref.spec_sums if impl.family == "speculative"
                       else ref.exact_sums)
                return res.sums != exp
            if kind == "cout":
                exp = (ref.spec_couts if impl.family == "speculative"
                       else ref.exact_couts)
                return res.couts != exp
            if kind == "flag":
                return res.flags != ref.flags
            if kind == "latency":
                exp_lat = [1 + (self.recovery_cycles if f else 0)
                           for f in ref.flags]
                return res.latencies != exp_lat
            if kind == "spec_error":
                exp_err = [f and not c
                           for f, c in zip(ref.flags, ref.correct)]
                return res.spec_errors != exp_err
            return False

        return fails

    def _record(self, report: VerifyReport, disc: Discrepancy) -> None:
        if len(report.discrepancies) < self.max_discrepancies:
            report.discrepancies.append(disc)
            fields = {k: v for k, v in disc.as_dict().items()
                      if k not in ("expected", "got", "kind")}
            fields["mismatch_kind"] = disc.kind
            self.ctx.record_event("verify_discrepancy", **fields)

    # ------------------------------------------------------------------
    def _rate_checks(self, uniform: Dict[str, int],
                     impl_stalls: Dict[str, int],
                     report: VerifyReport) -> None:
        n = uniform["n"]
        if n == 0:
            return
        model = self._family_obj.error_model(self.width, **self.params)
        p_err = model.error_rate
        p_flag = model.flag_rate
        report.rate_checks.append(check_rate(
            "error_rate/reference", "uniform", uniform["errors"], n,
            p_err, self.z))
        report.rate_checks.append(check_rate(
            "detector_rate/reference", "uniform", uniform["flags"], n,
            p_flag, self.z))
        for name, stalls in sorted(impl_stalls.items()):
            report.rate_checks.append(check_rate(
                f"detector_rate/{name}", "uniform", stalls, n, p_flag,
                self.z))
        failed = sum(1 for rc in report.rate_checks if not rc.ok)
        if failed:
            self.m_stat_fail.inc(failed)
            self.ctx.record_event("verify_stat_failure", count=failed)
        self.ctx.add("verify_rate_checks", len(report.rate_checks))


# ----------------------------------------------------------------------
# Exhaustive small-width sweeps
# ----------------------------------------------------------------------
def _all_pairs(width: int, stride: int = 1,
               chunk: int = 4096) -> Iterable[List[Pair]]:
    """All ``(a, b)`` pairs (every *stride*-th, in index order)."""
    total = 1 << (2 * width)
    mask = (1 << width) - 1
    out: List[Pair] = []
    for idx in range(0, total, stride):
        out.append((idx >> width, idx & mask))
        if len(out) >= chunk:
            yield out
            out = []
    if out:
        yield out


def _exact_counts(width: int, window: int,
                  family: str = "aca") -> Tuple[int, int]:
    """Exact (error, flag) counts over all ``4^width`` operand pairs.

    The family's analytic model produces both probabilities as exact
    ``Fraction`` values whose denominators divide ``4^n``; multiplied by
    the pair-space size they are integers, checked here.
    """
    fam, params, _ = _resolved(family, width, window)
    model = fam.error_model(width, **params)
    total = 1 << (2 * width)
    err_count = model.exact_error_rate * total
    flag_count = model.exact_flag_rate * total
    if err_count.denominator != 1 or flag_count.denominator != 1:
        raise AssertionError(
            f"exact probabilities for family={family} n={width} "
            f"window={window} are not multiples of 4^-n: "
            f"{model.exact_error_rate}, {model.exact_flag_rate}")
    return int(err_count), int(flag_count)


def run_exhaustive(widths: Sequence[int],
                   windows: Optional[Sequence[int]] = None,
                   impls: Optional[Sequence[str]] = None,
                   recovery_cycles: int = 1, stride: int = 1,
                   chunk: int = 4096,
                   ctx: Optional[RunContext] = None,
                   registry: Optional[MetricsRegistry] = None,
                   shrink: bool = True,
                   family: str = "aca") -> VerifyReport:
    """Exhaustive (or strided) sweep over a small ``(width, window)`` grid.

    Args:
        widths: Bitwidths to enumerate (keep ``<= 10``; ``4^n`` pairs).
        windows: Primary-parameter values per width (default: every
            ``1..width``).
        impls: Implementation names (default: all registered for the
            width).
        recovery_cycles, ctx, registry, shrink: As for
            :class:`DifferentialVerifier`.
        stride: Check every *stride*-th pair (1 = complete; complete
            cells additionally get the exact count-equality check).
        family: Registered adder family to sweep.

    Returns:
        One merged :class:`VerifyReport` with an
        :class:`~repro.verify.report.ExhaustiveCell` per grid cell.
    """
    merged: Optional[VerifyReport] = None
    for width in widths:
        wins = list(windows) if windows is not None else (
            list(range(1, width + 1)))
        for window in wins:
            if window > width:
                continue
            names = (list(impls) if impls is not None
                     else default_implementations(width, family))
            verifier = DifferentialVerifier(
                width, window=window, impls=names,
                recovery_cycles=recovery_cycles, ctx=ctx,
                registry=registry, shrink=shrink, family=family)
            rep = verifier.run_pairs(
                _all_pairs(width, stride=stride, chunk=chunk),
                stream=f"exhaustive[{width},{window}]")
            rep.method = "exhaustive"
            totals = rep.totals  # type: ignore[attr-defined]
            complete = stride == 1
            cell = ExhaustiveCell(
                width=width, window=window, pairs=totals["n"],
                complete=complete,
                mismatches=sum(c.mismatches for c in rep.coverage),
                error_count=totals["errors"],
                flag_count=totals["flags"],
                family=family)
            if complete:
                exp_err, exp_flag = _exact_counts(width, window, family)
                cell.expected_error_count = exp_err
                cell.expected_flag_count = exp_flag
            rep.exhaustive.append(cell)
            # Grid cells fold their elementwise mismatch totals into the
            # cell record; drop per-impl coverage duplication of counts.
            merged = rep if merged is None else merged.merge(rep)
    if merged is None:
        merged = VerifyReport(width=0, window=0, seed=0, family=family,
                              method="exhaustive")
    return merged
