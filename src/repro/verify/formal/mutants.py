"""Known-bug netlist mutants the formal checker must refute.

The statistical mutation test (PR 3) showed a lazy detector is caught
*probabilistically* — zero sum mismatches, a rate check several sigma
out.  These builders inject the same class of bugs into generated
datapath netlists so the test suite can assert the formal prover
refutes each one **deterministically**, with a concrete counterexample,
independent of any vector stream:

* ``lazy_detector`` — the detector fires only on propagate runs of
  length ``window + 1``, so it misses exactly the length-``window``
  runs: ``detector_sound`` and ``flag_count`` must be refuted while the
  recovery obligations still prove (the recovery path is untouched).
* ``dropped_recovery_carry`` — the recovery mux for the first bit of
  the second block drops its block-carry input, so ``sum_exact`` is
  wrong whenever a carry actually enters that block: ``recovery_sum``
  must be refuted.

Both mutants keep the standard datapath interface (``a``/``b`` in;
``sum``, ``cout``, ``err``, ``sum_exact``, ``cout_exact`` out) so they
drive through :func:`~repro.verify.formal.prover.prove_datapath`
unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ...adders.cla import lookahead_carries
from ...circuit import Circuit, or_tree
from ...core.aca import AcaBuilder
from ...core.error_detect import attach_error_detector
from ...core.error_recovery import attach_error_recovery

__all__ = ["MUTANTS", "build_lazy_detector_mutant",
           "build_dropped_carry_mutant"]

_OR_ARITY = 4


def _start_datapath(name: str, width: int,
                    window: int) -> Tuple[Circuit, AcaBuilder]:
    circuit = Circuit(name)
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    builder = AcaBuilder(circuit, a, b, window).build()
    return circuit, builder


def _finish_datapath(circuit: Circuit, builder: AcaBuilder, err: int,
                     exact_sums: List[int], exact_cout: int) -> Circuit:
    circuit.set_output("sum", builder.sums)
    circuit.set_output("cout", builder.spec_carries[builder.width])
    circuit.set_output("err", err)
    circuit.set_output("sum_exact", exact_sums)
    circuit.set_output("cout_exact", exact_cout)
    circuit.attrs["window"] = builder.window
    return circuit


def build_lazy_detector_mutant(width: int, window: int) -> Circuit:
    """ACA datapath whose detector only sees ``window + 1``-long runs.

    The classic off-by-one: each OR term ANDs the window propagate with
    one extra propagate bit below it, so an error caused by a run of
    exactly ``window`` propagates goes unflagged.
    """
    circuit, builder = _start_datapath(
        f"vlsa{width}_w{window}_lazy_detector", width, window)
    w = builder.window
    # Run of length w+1 ending at i: the w-wide window product's
    # propagate half AND the propagate bit just below the window.
    terms = [circuit.add_gate("AND", builder.windows[i][1],
                              builder.p[i - w], pos=float(i))
             for i in range(w, width)]
    err = (or_tree(circuit, terms, max_arity=_OR_ARITY) if terms
           else circuit.const(0))
    exact_sums, exact_cout = attach_error_recovery(builder)
    return _finish_datapath(circuit, builder, err, exact_sums, exact_cout)


def build_dropped_carry_mutant(width: int, window: int) -> Circuit:
    """ACA datapath whose recovery path drops one block carry.

    Reproduces :func:`~repro.core.error_recovery.attach_error_recovery`
    except that the carry into the first bit of the second ``window``-bit
    block is tied to 0 instead of the lookahead's block carry — the
    recovered sum is then wrong for every operand pair that actually
    carries into that block.  Requires ``width > window`` (at least two
    blocks).
    """
    if width <= window:
        raise ValueError("dropped-carry mutant needs width > window")
    circuit, builder = _start_datapath(
        f"vlsa{width}_w{window}_dropped_carry", width, window)
    err = attach_error_detector(builder)

    n, w = builder.width, builder.window
    bounds: List[Tuple[int, int]] = []
    lo = 0
    while lo < n:
        hi = min(lo + w, n) - 1
        bounds.append((lo, hi))
        lo = hi + 1
    grp = [builder.range_product(lo, hi) for lo, hi in bounds]
    block_carries, exact_cout = lookahead_carries(
        circuit, [g for g, _ in grp], [p for _, p in grp], None,
        pos_step=float(w))

    zero = circuit.const(0)
    carries: List[int] = []
    for k, (lo, hi) in enumerate(bounds):
        c_blk = block_carries[k]
        for i in range(lo, hi + 1):
            if i == lo:
                # THE BUG: block 1's mux ignores its carry input.
                carries.append(zero if k == 1 else c_blk)
                continue
            g_pre, p_pre = builder.range_product(lo, i - 1)
            carries.append(circuit.add_gate("AO21", p_pre, c_blk, g_pre,
                                            pos=float(i)))
    exact_sums = [circuit.add_gate("XOR", builder.p[i], carries[i],
                                   pos=float(i)) for i in range(n)]
    return _finish_datapath(circuit, builder, err, exact_sums, exact_cout)


#: name -> builder(width, window); the mutation suite iterates this.
MUTANTS: Dict[str, Callable[[int, int], Circuit]] = {
    "lazy_detector": build_lazy_detector_mutant,
    "dropped_recovery_carry": build_dropped_carry_mutant,
}
