"""Symbolic context shared by every formal proof obligation.

A :class:`SymbolicAdder` translates one gate-level adder netlist into
ROBDDs (via :mod:`repro.circuit.bdd`) and builds, over the *same*
variables, a **golden specification** of true addition: a textbook
ripple recurrence written directly into the BDD manager, independent of
any netlist.  Proving a circuit output equal to the golden BDD is
therefore a proof against the definition of addition itself, not
against another (possibly shared-bug) circuit.

The variable order interleaves the operand bits (``a0, b0, a1, b1,
...``), which keeps every adder BDD polynomial in the bitwidth (PolyAdd,
arXiv:2009.03242, proves the underlying tractability result) — a 64-bit
datapath plus golden spec plus error miter stays under ~10^5 nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...circuit.bdd import Bdd, build_output_bdds, interleaved_order
from ...circuit.netlist import Circuit, CircuitError

__all__ = ["SymbolicAdder", "golden_adder"]


def golden_adder(manager: Bdd, a_levels: List[int],
                 b_levels: List[int]) -> Tuple[List[int], int]:
    """Golden ripple specification of ``a + b`` built in *manager*.

    Returns ``(sum_bdds, cout_bdd)`` — the BDDs of every true sum bit
    and the true carry out, expressed over the variables at the given
    levels.  Canonicity makes these the unique BDDs of true addition
    under the manager's order, so pointer equality against them is a
    complete equivalence proof.
    """
    if len(a_levels) != len(b_levels):
        raise CircuitError("operand widths differ")
    carry = Bdd.FALSE
    sums: List[int] = []
    for a_lv, b_lv in zip(a_levels, b_levels):
        av, bv = manager.var(a_lv), manager.var(b_lv)
        axb = manager.apply_xor(av, bv)
        sums.append(manager.apply_xor(axb, carry))
        carry = manager.apply_or(manager.apply_and(av, bv),
                                 manager.apply_and(carry, axb))
    return sums, carry


class SymbolicAdder:
    """One netlist, its output BDDs, and the golden spec, in one manager.

    Args:
        circuit: Combinational circuit with exactly the input buses
            ``a`` and ``b`` of equal width (the convention every family
            datapath and speculative core follows when built without a
            carry-in port — which is how all serving/verify layers
            instantiate them).

    Attributes:
        manager: The shared BDD manager.
        outputs: Output name -> list of BDD roots (LSB first).
        golden_sums / golden_cout: The golden addition spec over the
            same variables.
    """

    def __init__(self, circuit: Circuit):
        widths = {k: len(v) for k, v in circuit.inputs.items()}
        if set(widths) != {"a", "b"} or widths["a"] != widths["b"]:
            raise CircuitError(
                f"formal proofs need exactly input buses a/b of equal "
                f"width, got {widths}")
        self.circuit = circuit
        self.width = widths["a"]
        self.order = interleaved_order(circuit)
        self.manager = Bdd(len(self.order))
        self.outputs = build_output_bdds(circuit, self.manager, self.order)
        self._a_levels = [self.order[nid] for nid in circuit.inputs["a"]]
        self._b_levels = [self.order[nid] for nid in circuit.inputs["b"]]
        self.golden_sums, self.golden_cout = golden_adder(
            self.manager, self._a_levels, self._b_levels)

    # ------------------------------------------------------------------
    def attach(self, other: Circuit) -> Dict[str, List[int]]:
        """Translate *other* into this manager over the same variables.

        Inputs are matched by bus name and bit index, so the returned
        BDDs are directly comparable (pointer equality) with this
        context's — the mechanism behind the core-consistency proof.
        """
        widths = {k: len(v) for k, v in other.inputs.items()}
        if widths != {"a": self.width, "b": self.width}:
            raise CircuitError(
                f"input interfaces differ: {widths} vs width {self.width}")
        order: Dict[int, int] = {}
        for name in ("a", "b"):
            for nid_self, nid_other in zip(self.circuit.inputs[name],
                                           other.inputs[name]):
                order[nid_other] = self.order[nid_self]
        return build_output_bdds(other, self.manager, order)

    def mismatch(self, sums: List[int], cout: Optional[int] = None) -> int:
        """BDD of "these sum/cout bits disagree with true addition"."""
        m = self.manager
        miter = Bdd.FALSE
        for got, want in zip(sums, self.golden_sums):
            miter = m.apply_or(miter, m.apply_xor(got, want))
        if cout is not None:
            miter = m.apply_or(miter, m.apply_xor(cout, self.golden_cout))
        return miter

    def count(self, f: int) -> int:
        """Exact number of ``(a, b)`` pairs satisfying *f*."""
        return self.manager.count_sat(f)

    def counterexample(self, f: int) -> Optional[Tuple[int, int]]:
        """One ``(a, b)`` operand pair satisfying *f*, or ``None``.

        Deterministic: the engine walks low branches first, so the same
        refuted obligation always yields the same witness.
        """
        assignment = self.manager.any_sat(f)
        if assignment is None:
            return None
        a = sum(assignment[lv] << i
                for i, lv in enumerate(self._a_levels))
        b = sum(assignment[lv] << i
                for i, lv in enumerate(self._b_levels))
        return a, b
