"""Formal verification backend: BDD proofs over generated netlists.

The third — and strongest — verification method of the repo, next to
statistical fuzzing and exhaustive small-width sweeps.  It symbolically
simulates each family's gate-level datapath into ROBDDs (the engine of
:mod:`repro.circuit.bdd`), proves the recovery path bit-exact against a
golden in-manager specification of true addition at full production
width, proves the detector sound, and characterises the speculative
error set *exactly* by BDD model counting, cross-checked against the
family's analytic ``Fraction`` error model by integer equality.

Entry points: :func:`run_formal` (the ``repro verify --method formal``
backend, producing :class:`~repro.verify.report.ProofCertificate`
records inside a :class:`~repro.verify.report.VerifyReport`) and
:func:`prove_datapath` (one netlist, e.g. a mutant from
:mod:`~repro.verify.formal.mutants`).
"""

from .mutants import (MUTANTS, build_dropped_carry_mutant,
                      build_lazy_detector_mutant)
from .prover import OBLIGATIONS, prove_datapath, run_formal, tier1_param_points
from .spec import SymbolicAdder, golden_adder

__all__ = [
    "MUTANTS",
    "OBLIGATIONS",
    "SymbolicAdder",
    "build_dropped_carry_mutant",
    "build_lazy_detector_mutant",
    "golden_adder",
    "prove_datapath",
    "run_formal",
    "tier1_param_points",
]
