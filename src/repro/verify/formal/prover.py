"""Proof obligations over family datapaths, and the ``formal`` method.

For one family configuration the prover discharges six obligations on
the generated netlists (see :class:`~repro.verify.report.
ProofCertificate` for their exact statements): the recovery datapath is
bit-exact against the golden addition spec at the *production* width,
the standalone speculative core matches the datapath's speculative
outputs, the detector never misses an error, and the speculative error
set and detector set — counted exactly by BDD model counting — equal
the family's analytic ``Fraction`` model times ``4^width`` as integers.

Where the statistical verifier says "no mismatches in 1M vectors" and
the exhaustive sweep says "no mismatches below width 8", a certificate
from this module says "no mismatching operand pair **exists** at width
64".  Every obligation is pure-Python BDD work; the full three-family
64-bit matrix runs in a few seconds.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from ...circuit.netlist import Circuit, CircuitError
from ...engine.context import RunContext, get_default_context
from ...families.base import FamilyErrorModel, family_names, get_family
from ..report import ProofCertificate, VerifyReport
from .spec import SymbolicAdder

__all__ = ["OBLIGATIONS", "prove_datapath", "run_formal",
           "tier1_param_points"]

#: Every obligation :func:`prove_datapath` can discharge, in run order.
OBLIGATIONS = ("recovery_sum", "recovery_cout", "core_consistent",
               "detector_sound", "error_count", "flag_count")

#: Primary-parameter knobs that define the tier-1 proof matrix (the
#: family default plus the two knobs the CI smoke and nightly fuzz
#: lanes pin; clamped and deduplicated per family/width).
TIER1_KNOBS = (None, 4, 8)


def tier1_param_points(family: str, width: int) -> List[Dict[str, int]]:
    """The tier-1 parameter points of *family* at *width*.

    The family's own default configuration plus the canonical CI knobs
    (primary parameter 4 and 8), resolved through
    :meth:`~repro.families.base.AdderFamily.resolve_params` and
    deduplicated after clamping.
    """
    fam = get_family(family)
    points: List[Dict[str, int]] = []
    seen = set()
    for knob in TIER1_KNOBS:
        params = fam.resolve_params(width, window=knob)
        key = tuple(sorted(params.items()))
        if key not in seen:
            seen.add(key)
            points.append(params)
    return points


def _exact_count(rate: Fraction, width: int, what: str) -> int:
    total = 1 << (2 * width)
    count = rate * total
    if count.denominator != 1:
        raise AssertionError(
            f"analytic {what} at width {width} is not a multiple of "
            f"4^-{width}: {rate}")
    return int(count)


def prove_datapath(datapath: Circuit, *,
                   spec_core: Optional[Circuit] = None,
                   model: Optional[FamilyErrorModel] = None,
                   family: str = "?",
                   params: Optional[Dict[str, int]] = None
                   ) -> List[ProofCertificate]:
    """Discharge every applicable obligation on one datapath netlist.

    Args:
        datapath: Full variable-latency datapath (outputs ``sum``,
            ``cout``, ``err``, ``sum_exact``, ``cout_exact``; inputs
            ``a``/``b`` only).
        spec_core: The family's standalone speculative core; enables
            the ``core_consistent`` obligation.
        model: The family's analytic error model; enables the exact
            ``error_count``/``flag_count`` obligations.
        family, params: Recorded on the certificates.

    Returns:
        One :class:`ProofCertificate` per obligation run.  A refuted
        equivalence/soundness obligation carries a deterministic
        counterexample operand pair extracted from the BDD.
    """
    for name in ("sum", "cout", "err", "sum_exact", "cout_exact"):
        if name not in datapath.outputs:
            raise CircuitError(
                f"datapath {datapath.name!r} lacks output {name!r}")
    params = dict(params or {})
    sym = SymbolicAdder(datapath)
    m = sym.manager
    width = sym.width
    certs: List[ProofCertificate] = []

    def cert(obligation: str, proved: bool, roots: Sequence[int],
             started: float, counted: Optional[int] = None,
             expected: Optional[int] = None,
             cex_bdd: Optional[int] = None,
             detail: str = "") -> None:
        cex = None
        if not proved and cex_bdd is not None:
            pair = sym.counterexample(cex_bdd)
            if pair is not None:
                cex = {"a": pair[0], "b": pair[1]}
        certs.append(ProofCertificate(
            family=family, width=width, params=params,
            obligation=obligation,
            status="proved" if proved else "refuted",
            circuit=datapath.name,
            bdd_nodes=m.reachable_size(*roots),
            expected_count=expected, counted=counted,
            counterexample=cex, detail=detail,
            elapsed_s=time.perf_counter() - started))

    # -- recovery path is true addition, bit for bit ------------------
    t0 = time.perf_counter()
    bad_bit = next((i for i, (got, want)
                    in enumerate(zip(sym.outputs["sum_exact"],
                                     sym.golden_sums))
                    if got != want), None)
    cert("recovery_sum", bad_bit is None, sym.outputs["sum_exact"], t0,
         cex_bdd=(None if bad_bit is None else m.apply_xor(
             sym.outputs["sum_exact"][bad_bit], sym.golden_sums[bad_bit])),
         detail=("" if bad_bit is None
                 else f"sum_exact[{bad_bit}] differs from true addition"))

    t0 = time.perf_counter()
    got_cout = sym.outputs["cout_exact"][0]
    cert("recovery_cout", got_cout == sym.golden_cout, [got_cout], t0,
         cex_bdd=(None if got_cout == sym.golden_cout
                  else m.apply_xor(got_cout, sym.golden_cout)),
         detail=("" if got_cout == sym.golden_cout
                 else "cout_exact differs from true addition"))

    # -- standalone speculative core == datapath's speculative outputs -
    if spec_core is not None:
        t0 = time.perf_counter()
        core = sym.attach(spec_core)
        pairs = list(zip(core["sum"], sym.outputs["sum"]))
        pairs.append((core["cout"][0], sym.outputs["cout"][0]))
        bad = next((i for i, (x, y) in enumerate(pairs) if x != y), None)
        cert("core_consistent", bad is None, core["sum"], t0,
             cex_bdd=(None if bad is None
                      else m.apply_xor(*pairs[bad])),
             detail=("" if bad is None else
                     f"speculative core {spec_core.name!r} diverges from "
                     f"datapath bit {bad}"))

    # -- the error set, exactly ---------------------------------------
    err = sym.outputs["err"][0]
    miter = sym.mismatch(sym.outputs["sum"], sym.outputs["cout"][0])

    t0 = time.perf_counter()
    missed = m.apply_and(m.apply_not(err), miter)
    cert("detector_sound", missed == m.FALSE, [err, miter], t0,
         cex_bdd=missed if missed != m.FALSE else None,
         detail=("" if missed == m.FALSE
                 else "detector silent on an erroneous operand pair"))

    if model is not None:
        t0 = time.perf_counter()
        counted = sym.count(miter)
        expected = _exact_count(model.exact_error_rate, width,
                                "error rate")
        cert("error_count", counted == expected, [miter], t0,
             counted=counted, expected=expected,
             detail=("" if counted == expected else
                     "BDD-counted error set differs from analytic model"))

        t0 = time.perf_counter()
        counted = sym.count(err)
        expected = _exact_count(model.exact_flag_rate, width, "flag rate")
        cert("flag_count", counted == expected, [err], t0,
             counted=counted, expected=expected,
             detail=("" if counted == expected else
                     "BDD-counted detector set differs from analytic "
                     "model"))
    return certs


def run_formal(families: Optional[Sequence[str]] = None, width: int = 64,
               window: Optional[int] = None,
               ctx: Optional[RunContext] = None,
               seed: int = 0) -> VerifyReport:
    """Run the proof matrix: every obligation, family and tier-1 point.

    Args:
        families: Families to prove (default: every registered family).
        width: Operand bitwidth to prove at (64 = production width; the
            BDDs stay polynomial, so this is seconds, not hours).
        window: Pin the primary parameter to one value instead of the
            tier-1 matrix of :func:`tier1_param_points`.
        ctx: Run context; obligation counts and refutation events land
            in its manifest.
        seed: Recorded in the report (proofs are deterministic — the
            seed never influences them).

    Returns:
        A :class:`VerifyReport` with ``method="formal"`` whose
        ``proofs`` list carries one certificate per obligation;
        ``report.ok`` iff every obligation proved.
    """
    ctx = ctx if ctx is not None else get_default_context()
    names = list(families) if families else family_names()
    report = VerifyReport(
        width=width, window=window if window is not None else 0,
        seed=seed, family=names[0] if len(names) == 1 else "all",
        method="formal", streams=["symbolic"], impls=["formal"])
    with ctx.phase("formal"):
        for name in names:
            fam = get_family(name)
            if window is not None:
                points = [fam.resolve_params(width, window=window)]
            else:
                points = tier1_param_points(name, width)
            for params in points:
                with ctx.phase(f"formal_{name}"):
                    certs = prove_datapath(
                        fam.build_circuit(width, **params),
                        spec_core=fam.build_speculative(width, **params),
                        model=fam.error_model(width, **params),
                        family=name, params=params)
                report.proofs.extend(certs)
                for p in certs:
                    if not p.ok:
                        ctx.record_event("formal_refuted",
                                         family=p.family, width=p.width,
                                         obligation=p.obligation,
                                         detail=p.detail)
    ctx.add("formal_obligations", len(report.proofs))
    ctx.add("formal_refuted", len(report.refuted_proofs))
    return report
