"""Differential + formal verification subsystem.

"Bit-identical" is an invariant, not a comment: this package drives
every registered ACA/VLSA implementation — compiled-engine backends,
the legacy interpreter, the functional models, the cycle-accurate
machine, and the service executors — from one seeded vector stream,
cross-checks them elementwise, and tests their empirical error/detector
rates against the exact analytic model with binomial bounds.

Three methods of escalating strength share one report format
(:data:`VERIFY_METHODS`): ``statistical`` fuzzing, ``exhaustive``
small-width enumeration with exact count equality, and ``formal`` BDD
proof over the gate-level netlists (:mod:`repro.verify.formal`) —
recovery exactness and symbolic error-set characterisation at full
production width.  See :mod:`repro.verify.differential` for the fuzz
engine, :mod:`repro.verify.vectors` for the streams, and ``python -m
repro verify --help`` for the CLI front-end.
"""

from .differential import (
    DEFAULT_STREAMS,
    DifferentialVerifier,
    ImplResult,
    Implementation,
    VerificationError,
    available_implementations,
    default_implementations,
    make_implementation,
    register_implementation,
    run_exhaustive,
    unregister_implementation,
)
from .formal import prove_datapath, run_formal
from .report import (VERIFY_METHODS, Coverage, Discrepancy, ExhaustiveCell,
                     ProofCertificate, VerifyReport)
from .shrink import shrink_pair
from .stats import RateCheck, binomial_bounds, check_rate, wilson_interval
from .vectors import STREAMS, boundary_patterns, pair_stream

__all__ = [
    "DEFAULT_STREAMS",
    "STREAMS",
    "VERIFY_METHODS",
    "Coverage",
    "DifferentialVerifier",
    "Discrepancy",
    "ExhaustiveCell",
    "ImplResult",
    "Implementation",
    "ProofCertificate",
    "RateCheck",
    "VerificationError",
    "VerifyReport",
    "available_implementations",
    "binomial_bounds",
    "boundary_patterns",
    "check_rate",
    "default_implementations",
    "make_implementation",
    "pair_stream",
    "prove_datapath",
    "register_implementation",
    "run_exhaustive",
    "run_formal",
    "shrink_pair",
    "unregister_implementation",
    "wilson_interval",
]
