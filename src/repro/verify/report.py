"""Machine-readable verification reports.

A :class:`VerifyReport` is the single artefact a verification run
produces: per-pair coverage counts, every discrepancy (with its first
failing vector and a minimised reproducer), the statistical rate checks,
and the exhaustive-grid results.  ``as_dict()`` is what the CLI writes
to ``results/verify_report.json``; ``render()`` is the human view built
from the same data.

Reproducing a reported discrepancy needs only the fields the report
records: the stream tuple ``(name, width, window, seed)`` replays the
identical vector sequence (see :mod:`repro.verify.vectors`), and the
``a``/``b`` (or ``shrunk_a``/``shrunk_b``) operands re-trigger the
failure directly on the named implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..reporting import Table
from .stats import RateCheck

__all__ = ["Discrepancy", "Coverage", "ExhaustiveCell", "VerifyReport"]


@dataclass
class Discrepancy:
    """One implementation/reference disagreement.

    Attributes:
        kind: What disagreed (``sum``/``cout``/``flag``/``latency``/
            ``spec_error``/``reference``).
        impl: Implementation that produced the wrong value.
        stream: Stream name the vector came from.
        width, window: Configuration under test.
        index: Vector position within the stream (with the stream seed,
            this pinpoints the exact failing vector).
        a, b: The first failing operands.
        expected, got: Reference versus implementation value.
        shrunk_a, shrunk_b: Minimised reproducer (same failure), when
            shrinking was enabled and succeeded.
        seed: Stream seed (replays the whole failing sequence).
    """

    kind: str
    impl: str
    stream: str
    width: int
    window: int
    index: int
    a: int
    b: int
    expected: Any
    got: Any
    seed: Optional[int] = None
    shrunk_a: Optional[int] = None
    shrunk_b: Optional[int] = None
    family: str = "aca"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "kind": self.kind,
            "impl": self.impl,
            "stream": self.stream,
            "width": self.width,
            "window": self.window,
            "index": self.index,
            "a": self.a,
            "b": self.b,
            "expected": self.expected,
            "got": self.got,
            "seed": self.seed,
            "shrunk_a": self.shrunk_a,
            "shrunk_b": self.shrunk_b,
        }

    def describe(self) -> str:
        base = (f"{self.impl}: {self.kind} mismatch at "
                f"{self.stream}[{self.index}] (family={self.family}, "
                f"width={self.width}, "
                f"window={self.window}, seed={self.seed}): "
                f"a={self.a:#x} b={self.b:#x} "
                f"expected {self.expected!r} got {self.got!r}")
        if self.shrunk_a is not None:
            base += (f"; minimised: a={self.shrunk_a:#x} "
                     f"b={self.shrunk_b:#x}")
        return base


@dataclass
class Coverage:
    """Vectors driven through one implementation/reference pair."""

    impl: str
    reference: str = "functional"
    vectors: int = 0
    mismatches: int = 0
    per_stream: Dict[str, int] = field(default_factory=dict)

    def add(self, stream: str, count: int) -> None:
        self.vectors += count
        self.per_stream[stream] = self.per_stream.get(stream, 0) + count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "impl": self.impl,
            "reference": self.reference,
            "vectors": self.vectors,
            "mismatches": self.mismatches,
            "per_stream": dict(self.per_stream),
        }


@dataclass
class ExhaustiveCell:
    """Result of one exhaustive ``(width, window)`` grid cell.

    When the cell covered *all* ``4^width`` operand pairs, the observed
    error/detector counts are compared **exactly** (integer equality)
    against the analytic probabilities — the strongest possible check of
    the ``A_n(x)`` recurrence.
    """

    width: int
    window: int
    pairs: int
    complete: bool
    mismatches: int = 0
    error_count: int = 0
    expected_error_count: Optional[int] = None
    flag_count: int = 0
    expected_flag_count: Optional[int] = None
    family: str = "aca"

    @property
    def ok(self) -> bool:
        if self.mismatches:
            return False
        if self.complete:
            if (self.expected_error_count is not None
                    and self.error_count != self.expected_error_count):
                return False
            if (self.expected_flag_count is not None
                    and self.flag_count != self.expected_flag_count):
                return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "width": self.width,
            "window": self.window,
            "pairs": self.pairs,
            "complete": self.complete,
            "mismatches": self.mismatches,
            "error_count": self.error_count,
            "expected_error_count": self.expected_error_count,
            "flag_count": self.flag_count,
            "expected_flag_count": self.expected_flag_count,
            "ok": self.ok,
        }


@dataclass
class VerifyReport:
    """Complete outcome of a verification run."""

    width: int
    window: int
    seed: int
    family: str = "aca"
    streams: List[str] = field(default_factory=list)
    impls: List[str] = field(default_factory=list)
    coverage: List[Coverage] = field(default_factory=list)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    rate_checks: List[RateCheck] = field(default_factory=list)
    exhaustive: List[ExhaustiveCell] = field(default_factory=list)

    @property
    def mismatch_count(self) -> int:
        # Exhaustive cells summarise the same coverage entries, so the
        # coverage sum alone is the non-double-counted total.
        return sum(c.mismatches for c in self.coverage)

    @property
    def stat_failures(self) -> List[RateCheck]:
        return [rc for rc in self.rate_checks if not rc.ok]

    @property
    def ok(self) -> bool:
        return (self.mismatch_count == 0
                and not self.stat_failures
                and all(cell.ok for cell in self.exhaustive))

    def merge(self, other: "VerifyReport") -> "VerifyReport":
        """Fold *other*'s results into this report (grid aggregation)."""
        self.coverage.extend(other.coverage)
        self.discrepancies.extend(other.discrepancies)
        self.rate_checks.extend(other.rate_checks)
        self.exhaustive.extend(other.exhaustive)
        for name in other.impls:
            if name not in self.impls:
                self.impls.append(name)
        for name in other.streams:
            if name not in self.streams:
                self.streams.append(name)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "width": self.width,
            "window": self.window,
            "seed": self.seed,
            "streams": list(self.streams),
            "impls": list(self.impls),
            "ok": self.ok,
            "mismatch_count": self.mismatch_count,
            "coverage": [c.as_dict() for c in self.coverage],
            "discrepancies": [d.as_dict() for d in self.discrepancies],
            "rate_checks": [rc.as_dict() for rc in self.rate_checks],
            "exhaustive": [cell.as_dict() for cell in self.exhaustive],
        }

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable text rendering (coverage + rates + failures)."""
        chunks: List[str] = []
        cov = Table(
            f"Differential verification: family={self.family} "
            f"width={self.width} "
            f"window={self.window} seed={self.seed}",
            ["implementation", "reference", "vectors", "mismatches",
             "streams"])
        for c in self.coverage:
            cov.add_row(c.impl, c.reference, c.vectors, c.mismatches,
                        ",".join(sorted(c.per_stream)))
        chunks.append(cov.render())

        if self.rate_checks:
            rates = Table(
                "Statistical cross-checks (binomial bound vs exact model)",
                ["check", "stream", "observed", "expected", "interval",
                 "ok"])
            for rc in self.rate_checks:
                lo = rc.lo / rc.trials if rc.trials else 0.0
                hi = rc.hi / rc.trials if rc.trials else 0.0
                rates.add_row(rc.name, rc.stream, f"{rc.rate:.6f}",
                              f"{rc.expected:.6f}",
                              f"[{lo:.6f}, {hi:.6f}]",
                              "yes" if rc.ok else "NO")
            chunks.append(rates.render())

        if self.exhaustive:
            grid = Table(
                "Exhaustive grid (exact count equality when complete)",
                ["family", "width", "window", "pairs", "complete",
                 "mismatches", "errors (got/exp)", "flags (got/exp)",
                 "ok"])
            for cell in self.exhaustive:
                exp_err = (cell.expected_error_count
                           if cell.expected_error_count is not None else "-")
                exp_flag = (cell.expected_flag_count
                            if cell.expected_flag_count is not None else "-")
                grid.add_row(
                    cell.family, cell.width, cell.window, cell.pairs,
                    "yes" if cell.complete else "sampled",
                    cell.mismatches,
                    f"{cell.error_count}/{exp_err}",
                    f"{cell.flag_count}/{exp_flag}",
                    "yes" if cell.ok else "NO")
            chunks.append(grid.render())

        if self.discrepancies:
            lines = ["Discrepancies:"]
            lines += [f"  - {d.describe()}" for d in self.discrepancies]
            chunks.append("\n".join(lines))

        verdict = "PASS" if self.ok else "FAIL"
        chunks.append(f"verdict: {verdict} "
                      f"({self.mismatch_count} mismatches, "
                      f"{len(self.stat_failures)} failed rate checks)")
        return "\n\n".join(chunks)
