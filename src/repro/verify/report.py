"""Machine-readable verification reports.

A :class:`VerifyReport` is the single artefact a verification run
produces: per-pair coverage counts, every discrepancy (with its first
failing vector and a minimised reproducer), the statistical rate checks,
and the exhaustive-grid results.  ``as_dict()`` is what the CLI writes
to ``results/verify_report.json``; ``render()`` is the human view built
from the same data.

Reproducing a reported discrepancy needs only the fields the report
records: the stream tuple ``(name, width, window, seed)`` replays the
identical vector sequence (see :mod:`repro.verify.vectors`), and the
``a``/``b`` (or ``shrunk_a``/``shrunk_b``) operands re-trigger the
failure directly on the named implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..reporting import Table
from .stats import RateCheck

__all__ = ["Discrepancy", "Coverage", "ExhaustiveCell", "ProofCertificate",
           "VerifyReport", "VERIFY_METHODS"]

#: The three escalating verification methods a report can carry:
#: seeded fuzzing with binomial rate bounds, complete small-width
#: enumeration with exact count equality, and BDD-backed symbolic proof
#: over the gate-level netlists (exact at any width).
VERIFY_METHODS = ("statistical", "exhaustive", "formal")


@dataclass
class Discrepancy:
    """One implementation/reference disagreement.

    Attributes:
        kind: What disagreed (``sum``/``cout``/``flag``/``latency``/
            ``spec_error``/``reference``).
        impl: Implementation that produced the wrong value.
        stream: Stream name the vector came from.
        width, window: Configuration under test.
        index: Vector position within the stream (with the stream seed,
            this pinpoints the exact failing vector).
        a, b: The first failing operands.
        expected, got: Reference versus implementation value.
        shrunk_a, shrunk_b: Minimised reproducer (same failure), when
            shrinking was enabled and succeeded.
        seed: Stream seed (replays the whole failing sequence).
    """

    kind: str
    impl: str
    stream: str
    width: int
    window: int
    index: int
    a: int
    b: int
    expected: Any
    got: Any
    seed: Optional[int] = None
    shrunk_a: Optional[int] = None
    shrunk_b: Optional[int] = None
    family: str = "aca"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "kind": self.kind,
            "impl": self.impl,
            "stream": self.stream,
            "width": self.width,
            "window": self.window,
            "index": self.index,
            "a": self.a,
            "b": self.b,
            "expected": self.expected,
            "got": self.got,
            "seed": self.seed,
            "shrunk_a": self.shrunk_a,
            "shrunk_b": self.shrunk_b,
        }

    def describe(self) -> str:
        base = (f"{self.impl}: {self.kind} mismatch at "
                f"{self.stream}[{self.index}] (family={self.family}, "
                f"width={self.width}, "
                f"window={self.window}, seed={self.seed}): "
                f"a={self.a:#x} b={self.b:#x} "
                f"expected {self.expected!r} got {self.got!r}")
        if self.shrunk_a is not None:
            base += (f"; minimised: a={self.shrunk_a:#x} "
                     f"b={self.shrunk_b:#x}")
        return base


@dataclass
class Coverage:
    """Vectors driven through one implementation/reference pair."""

    impl: str
    reference: str = "functional"
    vectors: int = 0
    mismatches: int = 0
    per_stream: Dict[str, int] = field(default_factory=dict)

    def add(self, stream: str, count: int) -> None:
        self.vectors += count
        self.per_stream[stream] = self.per_stream.get(stream, 0) + count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "impl": self.impl,
            "reference": self.reference,
            "vectors": self.vectors,
            "mismatches": self.mismatches,
            "per_stream": dict(self.per_stream),
        }


@dataclass
class ExhaustiveCell:
    """Result of one exhaustive ``(width, window)`` grid cell.

    When the cell covered *all* ``4^width`` operand pairs, the observed
    error/detector counts are compared **exactly** (integer equality)
    against the analytic probabilities — the strongest possible check of
    the ``A_n(x)`` recurrence.
    """

    width: int
    window: int
    pairs: int
    complete: bool
    mismatches: int = 0
    error_count: int = 0
    expected_error_count: Optional[int] = None
    flag_count: int = 0
    expected_flag_count: Optional[int] = None
    family: str = "aca"

    @property
    def ok(self) -> bool:
        if self.mismatches:
            return False
        if self.complete:
            if (self.expected_error_count is not None
                    and self.error_count != self.expected_error_count):
                return False
            if (self.expected_flag_count is not None
                    and self.flag_count != self.expected_flag_count):
                return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "width": self.width,
            "window": self.window,
            "pairs": self.pairs,
            "complete": self.complete,
            "mismatches": self.mismatches,
            "error_count": self.error_count,
            "expected_error_count": self.expected_error_count,
            "flag_count": self.flag_count,
            "expected_flag_count": self.expected_flag_count,
            "ok": self.ok,
        }


@dataclass
class ProofCertificate:
    """Machine-readable outcome of one formal proof obligation.

    A certificate records everything needed to audit (and re-run) one
    symbolic check of one family configuration: which obligation was
    discharged, on which netlist, under which engine and variable
    order, and — for the counting obligations — the exact BDD model
    count next to the analytic expectation.  ``status`` is ``"proved"``
    or ``"refuted"``; a refuted obligation carries a concrete
    counterexample operand pair extracted from the BDD.

    Obligations:

    * ``recovery_sum`` / ``recovery_cout`` — the recovery datapath's
      ``sum_exact``/``cout_exact`` equal true addition on **all**
      ``4^width`` operand pairs (pointer equality against a golden
      ripple specification built directly in the manager);
    * ``core_consistent`` — the standalone speculative core netlist is
      equivalent to the datapath's speculative outputs;
    * ``detector_sound`` — ``err = 0`` implies the speculative result
      is exact (the detector never misses an error);
    * ``error_count`` — the BDD model count of the speculative-vs-true
      miter equals ``exact_error_rate * 4^width`` as an integer;
    * ``flag_count`` — the model count of ``err`` equals
      ``exact_flag_rate * 4^width`` as an integer.

    Together ``detector_sound`` + ``error_count`` + ``flag_count``
    characterise the family's error set exactly: when the two counts
    coincide (CESA-R), soundness upgrades to flag *iff* error.
    """

    family: str
    width: int
    params: Dict[str, int]
    obligation: str
    status: str
    circuit: str = ""
    engine: str = "robdd"
    variable_order: str = "interleaved"
    bdd_nodes: int = 0
    expected_count: Optional[int] = None
    counted: Optional[int] = None
    counterexample: Optional[Dict[str, int]] = None
    detail: str = ""
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "proved"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "width": self.width,
            "params": dict(self.params),
            "obligation": self.obligation,
            "status": self.status,
            "ok": self.ok,
            "circuit": self.circuit,
            "engine": self.engine,
            "variable_order": self.variable_order,
            "bdd_nodes": self.bdd_nodes,
            "expected_count": self.expected_count,
            "counted": self.counted,
            "counterexample": (dict(self.counterexample)
                               if self.counterexample else None),
            "detail": self.detail,
            "elapsed_s": self.elapsed_s,
        }

    def describe(self) -> str:
        base = (f"{self.family} width={self.width} "
                f"params={self.params}: {self.obligation} {self.status}")
        if self.counted is not None:
            base += (f" (counted {self.counted}, "
                     f"expected {self.expected_count})")
        if self.counterexample:
            base += (f"; counterexample a={self.counterexample['a']:#x} "
                     f"b={self.counterexample['b']:#x}")
        if self.detail:
            base += f" — {self.detail}"
        return base


@dataclass
class VerifyReport:
    """Complete outcome of a verification run."""

    width: int
    window: int
    seed: int
    family: str = "aca"
    method: str = "statistical"
    streams: List[str] = field(default_factory=list)
    impls: List[str] = field(default_factory=list)
    coverage: List[Coverage] = field(default_factory=list)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    rate_checks: List[RateCheck] = field(default_factory=list)
    exhaustive: List[ExhaustiveCell] = field(default_factory=list)
    proofs: List[ProofCertificate] = field(default_factory=list)

    @property
    def mismatch_count(self) -> int:
        # Exhaustive cells summarise the same coverage entries, so the
        # coverage sum alone is the non-double-counted total.
        return sum(c.mismatches for c in self.coverage)

    @property
    def stat_failures(self) -> List[RateCheck]:
        return [rc for rc in self.rate_checks if not rc.ok]

    @property
    def refuted_proofs(self) -> List[ProofCertificate]:
        return [p for p in self.proofs if not p.ok]

    @property
    def ok(self) -> bool:
        return (self.mismatch_count == 0
                and not self.stat_failures
                and all(cell.ok for cell in self.exhaustive)
                and all(p.ok for p in self.proofs))

    def merge(self, other: "VerifyReport") -> "VerifyReport":
        """Fold *other*'s results into this report (grid aggregation)."""
        self.coverage.extend(other.coverage)
        self.discrepancies.extend(other.discrepancies)
        self.rate_checks.extend(other.rate_checks)
        self.exhaustive.extend(other.exhaustive)
        self.proofs.extend(other.proofs)
        for name in other.impls:
            if name not in self.impls:
                self.impls.append(name)
        for name in other.streams:
            if name not in self.streams:
                self.streams.append(name)
        if other.method != self.method:
            used = set(self.method.split("+")) | set(other.method.split("+"))
            self.method = "+".join(m for m in VERIFY_METHODS if m in used)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "method": self.method,
            "width": self.width,
            "window": self.window,
            "seed": self.seed,
            "streams": list(self.streams),
            "impls": list(self.impls),
            "ok": self.ok,
            "mismatch_count": self.mismatch_count,
            "coverage": [c.as_dict() for c in self.coverage],
            "discrepancies": [d.as_dict() for d in self.discrepancies],
            "rate_checks": [rc.as_dict() for rc in self.rate_checks],
            "exhaustive": [cell.as_dict() for cell in self.exhaustive],
            "proofs": [p.as_dict() for p in self.proofs],
        }

    def describe(self) -> str:
        """One-line verdict summary (the footer of :meth:`render`)."""
        verdict = "PASS" if self.ok else "FAIL"
        return (f"{verdict}: method={self.method} family={self.family} "
                f"width={self.width} — {self.mismatch_count} mismatches, "
                f"{len(self.stat_failures)} failed rate checks, "
                f"{len(self.refuted_proofs)} refuted proofs")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable text rendering (coverage + rates + failures)."""
        chunks: List[str] = []
        if self.coverage or not self.proofs:
            cov = Table(
                f"Differential verification: family={self.family} "
                f"method={self.method} width={self.width} "
                f"window={self.window} seed={self.seed}",
                ["implementation", "reference", "vectors", "mismatches",
                 "streams"])
            for c in self.coverage:
                cov.add_row(c.impl, c.reference, c.vectors, c.mismatches,
                            ",".join(sorted(c.per_stream)))
            chunks.append(cov.render())

        if self.rate_checks:
            rates = Table(
                "Statistical cross-checks (binomial bound vs exact model)",
                ["check", "stream", "observed", "expected", "interval",
                 "ok"])
            for rc in self.rate_checks:
                lo = rc.lo / rc.trials if rc.trials else 0.0
                hi = rc.hi / rc.trials if rc.trials else 0.0
                rates.add_row(rc.name, rc.stream, f"{rc.rate:.6f}",
                              f"{rc.expected:.6f}",
                              f"[{lo:.6f}, {hi:.6f}]",
                              "yes" if rc.ok else "NO")
            chunks.append(rates.render())

        if self.exhaustive:
            grid = Table(
                "Exhaustive grid (exact count equality when complete)",
                ["family", "width", "window", "pairs", "complete",
                 "mismatches", "errors (got/exp)", "flags (got/exp)",
                 "ok"])
            for cell in self.exhaustive:
                exp_err = (cell.expected_error_count
                           if cell.expected_error_count is not None else "-")
                exp_flag = (cell.expected_flag_count
                            if cell.expected_flag_count is not None else "-")
                grid.add_row(
                    cell.family, cell.width, cell.window, cell.pairs,
                    "yes" if cell.complete else "sampled",
                    cell.mismatches,
                    f"{cell.error_count}/{exp_err}",
                    f"{cell.flag_count}/{exp_flag}",
                    "yes" if cell.ok else "NO")
            chunks.append(grid.render())

        if self.proofs:
            proof = Table(
                "Formal proofs (BDD symbolic, exact over all "
                "4^width operand pairs)",
                ["family", "width", "params", "obligation", "status",
                 "counted/expected", "bdd nodes"])
            for p in self.proofs:
                counts = ("-" if p.counted is None
                          else f"{p.counted}/{p.expected_count}")
                proof.add_row(
                    p.family, p.width,
                    " ".join(f"{k}={v}" for k, v in sorted(p.params.items())),
                    p.obligation,
                    p.status if p.ok else p.status.upper(),
                    counts, p.bdd_nodes)
            chunks.append(proof.render())
            for p in self.refuted_proofs:
                chunks.append(f"REFUTED: {p.describe()}")

        if self.discrepancies:
            lines = ["Discrepancies:"]
            lines += [f"  - {d.describe()}" for d in self.discrepancies]
            chunks.append("\n".join(lines))

        verdict = "PASS" if self.ok else "FAIL"
        chunks.append(f"verdict: {verdict} "
                      f"({self.mismatch_count} mismatches, "
                      f"{len(self.stat_failures)} failed rate checks, "
                      f"{len(self.refuted_proofs)} refuted proofs)")
        return "\n\n".join(chunks)
