"""Analytic stall/latency forecasts for candidate adder configurations.

This is the bridge between the exact-Fraction error models of
:mod:`repro.families` and the online policy engine: given an observed
operand profile ``(p_propagate, p_generate)`` it predicts, *before any
reconfiguration is committed*, the stall (flag) rate and latency of a
candidate ``(family, primary knob, batch size)``.

Model per family (i.i.d. bits at the profiled fractions — the same
assumption under which the families' uniform Fractions are exact):

``aca``
    The detector fires iff the operand word contains a propagate run of
    length >= ``window``; the biased probability of that event is the
    linear DP :func:`repro.analysis.biased.run_at_least_probability_biased`.
    At ``p_propagate = 0.5`` this reproduces the family's exact uniform
    flag rate.  A window >= width degenerates to the all-propagate word
    (probability ``p^width``), matching the reference detector.

``blockspec`` (Wu et al., arXiv:1703.03522)
    Each non-anchored block boundary speculates its carry-in from a
    ``lookahead``-bit window and flags whenever that window is
    all-propagate: per-boundary probability ``p^L``.  Boundaries are
    combined under an independence approximation,
    ``1 - prod(1 - p_j)`` — the same union bound Wu et al. use; at
    uniform inputs it agrees with the exact boundary DP to well under a
    percent for practical knobs (cross-checked by the bench band).

``cesa`` (arXiv:2008.11591)
    The rectifier flag fires only on *actual* mispredictions: the
    1-bit lookahead window is all-propagate **and** a true carry enters
    it from below.  The carry-in probability at bit ``i`` follows the
    stationary recurrence ``c_{i+1} = p_generate + p_propagate * c_i``
    (Kedem's general inaccurate-adder model, arXiv:1606.01753), giving
    per-boundary probability ``p^L * c`` before the same combination.

Unknown externally-registered families fall back to their exact uniform
flag rate (bias-insensitive but always available).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.biased import run_at_least_probability_biased
from ..families import get_family
from ..families.blocks import block_boundaries

__all__ = [
    "CandidateConfig",
    "Forecast",
    "predict_stall_rate",
    "delay_units",
    "forecast",
]

# Detector/recovery mux overhead of the analytic delay proxy, in the
# same log2 gate-depth units as the prefix tree (see delay_units).
_EXTRA_DEPTH = 4.0
# Fixed per-batch dispatch overhead (queue pop, slicing, future wakeup)
# amortized over the batch in the throughput objective, expressed in
# delay units so it trades directly against per-op latency.
DEFAULT_BATCH_OVERHEAD_UNITS = 64.0


def _carry_in_probability(bits: int, p: float, g: float) -> float:
    """P(true carry into bit ``bits``) under i.i.d. (p, g) bits.

    Linear recurrence ``c_0 = 0, c_{i+1} = g + p * c_i``; converges to
    the stationary ``g / (1 - p)`` within a few bits.
    """
    c = 0.0
    for _ in range(bits):
        c = g + p * c
    return c


def predict_stall_rate(family: str, width: int, params: Dict[str, int],
                       p_propagate: float,
                       p_generate: Optional[float] = None) -> float:
    """Forecast the flag (stall) probability of one configuration.

    ``params`` are resolved family knobs (``resolve_params`` output).
    ``p_generate`` defaults to a symmetric split of the non-propagate
    mass, which is exact for independent uniform-ish operands.
    """
    p = min(max(p_propagate, 0.0), 1.0)
    if p_generate is None:
        g = (1.0 - p) / 2.0
    else:
        g = min(max(p_generate, 0.0), 1.0 - p)

    if family == "aca":
        window = params["window"]
        if window >= width:
            # Degenerate detector: fires only on the all-propagate word.
            return p ** width
        return run_at_least_probability_biased(width, window, p)

    if family in ("blockspec", "cesa"):
        if family == "cesa":
            boundaries = block_boundaries(width, params["block"], 1)
        else:
            boundaries = block_boundaries(width, params["block"],
                                          params["lookahead"])
        ok = 1.0
        for bnd in boundaries:
            p_window = p ** bnd.lookahead
            if family == "cesa":
                # Rectifier flags actual errors only: window
                # all-propagate AND a true carry arriving below it.
                p_window *= _carry_in_probability(
                    bnd.pos - bnd.lookahead, p, g)
            ok *= 1.0 - p_window
        return 1.0 - ok

    # Unknown family: exact uniform rate, insensitive to the profile.
    fam = get_family(family)
    return float(fam.error_model(width, **params).flag_rate)


def delay_units(family: str, width: int, params: Dict[str, int]) -> float:
    """Analytic combinational-depth proxy for the speculative core.

    The paper's argument is that an almost-correct adder needs only a
    prefix tree over its ``w``-bit window: depth ``ceil(log2 w)`` plus a
    constant for pg-setup, detector, and the recovery mux.  The proxy
    ranks candidates by that depth; absolute units cancel in the policy
    comparison.
    """
    fam = get_family(family)
    primary = fam.primary_value(width, params)
    span = min(max(int(primary), 2), max(width, 2))
    return 2.0 * math.ceil(math.log2(span)) + _EXTRA_DEPTH


def exact_delay_units(width: int) -> float:
    """Same proxy for the exact reference adder (full-width prefix)."""
    return 2.0 * math.ceil(math.log2(max(width, 2))) + _EXTRA_DEPTH


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the policy search space."""

    family: str
    width: int
    params: Dict[str, int] = field(hash=False)
    batch_ops: int = 4096

    @property
    def primary(self) -> int:
        fam = get_family(self.family)
        return int(fam.primary_value(self.width, self.params))

    def key(self) -> tuple:
        return (self.family, self.width,
                tuple(sorted(self.params.items())), self.batch_ops)

    def as_dict(self) -> Dict[str, Any]:
        return {"family": self.family, "width": self.width,
                "params": dict(self.params), "primary": self.primary,
                "batch_ops": self.batch_ops}


@dataclass(frozen=True)
class Forecast:
    """Analytic prediction for one candidate under one profile."""

    candidate: CandidateConfig
    p_propagate: float
    p_generate: float
    stall_rate: float
    uniform_stall_rate: float
    mean_latency_cycles: float
    p99_latency_cycles: float
    delay_units: float
    avg_time_units: float

    def as_dict(self) -> Dict[str, Any]:
        d = self.candidate.as_dict()
        d.update({
            "p_propagate": self.p_propagate,
            "p_generate": self.p_generate,
            "stall_rate": self.stall_rate,
            "uniform_stall_rate": self.uniform_stall_rate,
            "mean_latency_cycles": self.mean_latency_cycles,
            "p99_latency_cycles": self.p99_latency_cycles,
            "delay_units": self.delay_units,
            "avg_time_units": self.avg_time_units,
        })
        return d


def forecast(candidate: CandidateConfig, p_propagate: float,
             p_generate: Optional[float] = None,
             recovery_cycles: int = 1,
             overhead_units: float = DEFAULT_BATCH_OVERHEAD_UNITS,
             ) -> Forecast:
    """Full analytic forecast for one candidate configuration.

    The latency model is the paper's variable-latency accounting: a
    non-flagged add completes in 1 cycle, a flagged one in
    ``1 + recovery_cycles``.  The p99 figure additionally charges batch
    queueing — the last request admitted to a micro-batch waits for the
    whole batch — so the ``p99`` SLA knob constrains ``batch_ops``
    while the stall SLA constrains the window:

        p99 ~= (1 + rc) + (batch_ops - 1) * mean_op_latency

    ``avg_time_units`` is the throughput objective the policy minimizes:
    per-op wall time proportional to core depth times mean cycles, plus
    the fixed batch overhead amortized over the batch.
    """
    p = min(max(p_propagate, 0.0), 1.0)
    g = (1.0 - p) / 2.0 if p_generate is None else p_generate
    fam = get_family(candidate.family)
    stall = predict_stall_rate(candidate.family, candidate.width,
                               candidate.params, p, g)
    uniform = float(fam.error_model(candidate.width,
                                    **candidate.params).flag_rate)
    mean_cycles = 1.0 + stall * recovery_cycles
    # Worst-case queueing for the last op of a full batch, with recovery
    # charged whenever stalls are non-negligible at batch scale.
    tail_recovery = recovery_cycles if stall * candidate.batch_ops >= 0.01 \
        else 0.0
    p99 = 1.0 + tail_recovery + (candidate.batch_ops - 1) * mean_cycles
    depth = delay_units(candidate.family, candidate.width, candidate.params)
    avg = depth * mean_cycles + overhead_units / max(candidate.batch_ops, 1)
    return Forecast(candidate=candidate, p_propagate=p, p_generate=g,
                    stall_rate=stall, uniform_stall_rate=uniform,
                    mean_latency_cycles=mean_cycles, p99_latency_cycles=p99,
                    delay_units=depth, avg_time_units=avg)


def forecast_many(candidates: Sequence[CandidateConfig], p_propagate: float,
                  p_generate: Optional[float] = None,
                  recovery_cycles: int = 1,
                  overhead_units: float = DEFAULT_BATCH_OVERHEAD_UNITS,
                  ) -> List[Forecast]:
    return [forecast(c, p_propagate, p_generate, recovery_cycles,
                     overhead_units) for c in candidates]
