"""Online autotune controller: observe traffic, decide, reconfigure.

The controller closes the loop between the operand profile, the policy
engine and a live execution target.  It observes every executed batch
(operand pairs + outcome), keeps the sliding operand profile and an
epoch accumulator of observed stalls, and every ``decide_every_ops``
operations asks the policy for the best predicted-safe configuration.
If the decision differs from the incumbent it calls the target's
``reconfigure(...)`` — which both :class:`~repro.service.service.VlsaService`
and :class:`~repro.cluster.router.ClusterRouter` apply **atomically
between micro-batches**, so bit-exactness is preserved by construction
(recovery is exact at every window of every family).

Observability: per-tenant gauges for the current window/batch size and
predicted-vs-observed stall rate, counters for decisions /
reconfigurations / SLA violations, a trace event per decision, and a
JSON-able :meth:`AutotuneController.decision_trace` for CI artifacts.

:class:`SyncAutotunedExecutor` is the synchronous twin used by the
verify registry and the convergence tests: a plain ``execute(pairs)``
façade over :class:`~repro.service.executor.VlsaBatchExecutor` that
splits work into micro-batches and runs the controller between them —
deterministic, event-loop-free, and bit-identical to the exact adder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..service.executor import BatchOutcome, VlsaBatchExecutor
from ..service.metrics import MetricsRegistry
from ..service.tracing import Tracer
from ..families import get_family
from .policy import Decision, PolicyEngine
from .predictor import CandidateConfig, forecast
from .profile import OperandProfile

__all__ = ["AutotuneController", "DecisionRecord", "SyncAutotunedExecutor"]


@dataclass
class DecisionRecord:
    """One controller decision, for the trace artifact."""

    ops_seen: int
    epoch_ops: int
    epoch_stalls: int
    observed_stall_rate: float
    predicted_stall_rate: float
    p_propagate: float
    p_generate: float
    family: str
    window: int
    batch_ops: int
    switched: bool
    feasible: bool
    sla_violated: bool

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


class AutotuneController:
    """SLA-driven online controller over a reconfigurable target.

    Parameters
    ----------
    policy:
        The configured :class:`~repro.autotune.policy.PolicyEngine`.
    decide_every_ops:
        Decision cadence in observed operations (one epoch).
    sample_pairs:
        At most this many pairs per batch are folded into the operand
        profile (popcount cost control); stall accounting always uses
        the full batch.
    profile_pairs:
        Sliding-window size of the operand profile.
    registry / tenant:
        Metrics registry and tenant label for the gauge/counter names.
    """

    def __init__(self, policy: PolicyEngine,
                 decide_every_ops: int = 8192,
                 sample_pairs: int = 1024,
                 profile_pairs: int = 8192,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 tenant: str = "default") -> None:
        if decide_every_ops < 1:
            raise ValueError("decide_every_ops must be >= 1")
        self.policy = policy
        self.decide_every_ops = decide_every_ops
        self.sample_pairs = sample_pairs
        self.profile = OperandProfile(width=policy.width,
                                      window_pairs=profile_pairs)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.tenant = tenant
        self.target: Optional[Any] = None
        self.current: Optional[CandidateConfig] = None
        self.decisions: List[DecisionRecord] = []
        self._ops_seen = 0
        self._epoch_ops = 0
        self._epoch_stalls = 0
        self._make_metrics()

    def _make_metrics(self) -> None:
        reg, t = self.registry, self.tenant
        self.g_window = reg.gauge(
            f"autotune_{t}_window", "current primary knob (tenant gauge)")
        self.g_batch = reg.gauge(
            f"autotune_{t}_batch_ops", "current max batch ops")
        self.g_predicted = reg.gauge(
            f"autotune_{t}_predicted_stall_rate",
            "analytic stall-rate forecast for the current config")
        self.g_observed = reg.gauge(
            f"autotune_{t}_observed_stall_rate",
            "stall rate observed over the last decision epoch")
        self.m_decisions = reg.counter(
            "autotune_decisions_total", "policy evaluations run")
        self.m_reconfigs = reg.counter(
            "autotune_reconfigs_total", "reconfigurations applied")
        self.m_violations = reg.counter(
            "autotune_sla_violations_total",
            "decision epochs whose observed stall rate broke the SLA")
        self.m_infeasible = reg.counter(
            "autotune_infeasible_total",
            "decisions where no candidate was predicted safe")

    # -- wiring ---------------------------------------------------------

    def attach(self, target: Any,
               register_observer: bool = True) -> "AutotuneController":
        """Bind to a target exposing ``reconfigure(...)``.

        When the target also exposes ``add_batch_observer`` (the
        service does), the controller registers itself so every batch
        is observed automatically.
        """
        self.target = target
        fam = get_family(getattr(target, "family", "aca"))
        params = fam.resolve_params(self.policy.width,
                                    window=getattr(target, "window", None))
        self.current = CandidateConfig(
            family=fam.name, width=self.policy.width, params=params,
            batch_ops=getattr(target, "max_batch_ops", 4096))
        self._publish_config(self.current)
        if register_observer and hasattr(target, "add_batch_observer"):
            target.add_batch_observer(self.observe_batch)
        return self

    def _publish_config(self, cand: CandidateConfig) -> None:
        self.g_window.set(cand.primary)
        self.g_batch.set(cand.batch_ops)

    # -- observation ----------------------------------------------------

    def observe_batch(self, pairs: Any, outcome: BatchOutcome) -> None:
        """Fold one executed batch into the profile and epoch stats."""
        n = outcome.size
        if n == 0:
            return
        sample = pairs[:self.sample_pairs] if self.sample_pairs else pairs
        self.profile.observe(sample)
        self._ops_seen += n
        self._epoch_ops += n
        self._epoch_stalls += outcome.stall_count
        if self._epoch_ops >= self.decide_every_ops:
            self.decide()

    # -- decision -------------------------------------------------------

    def decide(self) -> Decision:
        """Run the policy now and apply the result to the target."""
        observed = (self._epoch_stalls / self._epoch_ops
                    if self._epoch_ops else 0.0)
        decision = self.policy.decide(self.profile, current=self.current)
        chosen = decision.chosen.candidate
        predicted_current = forecast(
            self.current, self.profile.p_propagate, self.profile.p_generate,
            self.policy.recovery_cycles).stall_rate \
            if self.current is not None else decision.chosen.stall_rate
        sla = self.policy.sla
        violated = (sla.stall_rate is not None and self._epoch_ops > 0
                    and observed > sla.stall_rate)
        self.m_decisions.inc()
        if violated:
            self.m_violations.inc()
        if not decision.feasible:
            self.m_infeasible.inc()
        if decision.switched and self.target is not None:
            self.target.reconfigure(
                window=chosen.primary, family=chosen.family,
                max_batch_ops=chosen.batch_ops)
            self.m_reconfigs.inc()
        if decision.switched or self.current is None:
            self.current = chosen
        self._publish_config(self.current)
        self.g_predicted.set(decision.chosen.stall_rate)
        self.g_observed.set(observed)
        record = DecisionRecord(
            ops_seen=self._ops_seen, epoch_ops=self._epoch_ops,
            epoch_stalls=self._epoch_stalls,
            observed_stall_rate=observed,
            predicted_stall_rate=predicted_current,
            p_propagate=self.profile.p_propagate,
            p_generate=self.profile.p_generate,
            family=self.current.family, window=self.current.primary,
            batch_ops=self.current.batch_ops,
            switched=decision.switched, feasible=decision.feasible,
            sla_violated=violated)
        self.decisions.append(record)
        self.tracer.emit("autotune_decision", tenant=self.tenant,
                         **record.as_dict())
        self._epoch_ops = 0
        self._epoch_stalls = 0
        return decision

    # -- reporting ------------------------------------------------------

    @property
    def ops_seen(self) -> int:
        return self._ops_seen

    @property
    def reconfigurations(self) -> int:
        return self.m_reconfigs.value

    @property
    def sla_violations(self) -> int:
        return self.m_violations.value

    def decision_trace(self) -> List[Dict[str, Any]]:
        """JSON-able decision history (the CI artifact payload)."""
        return [r.as_dict() for r in self.decisions]


class SyncAutotunedExecutor:
    """Synchronous autotuned execution path.

    Drop-in for :class:`~repro.service.executor.VlsaBatchExecutor` with
    the controller in the loop: ``execute(pairs)`` splits the work into
    micro-batches of the *current* ``batch_ops``, lets the controller
    observe and possibly reconfigure between them, and concatenates the
    outcomes.  Because recovery is exact at every configuration, the
    merged sums/couts are bit-identical to the exact adder regardless
    of the reconfiguration schedule — the property the
    ``service:autotuned`` verify implementation re-checks.
    """

    def __init__(self, width: int, policy: PolicyEngine,
                 window: Optional[int] = None, family: str = "aca",
                 recovery_cycles: int = 1, backend: Optional[str] = None,
                 decide_every_ops: int = 2048,
                 sample_pairs: int = 1024,
                 profile_pairs: int = 8192,
                 registry: Optional[MetricsRegistry] = None,
                 tenant: str = "default") -> None:
        self.width = width
        self.recovery_cycles = recovery_cycles
        self._backend = backend
        self.executor = VlsaBatchExecutor(width, window=window,
                                          recovery_cycles=recovery_cycles,
                                          backend=backend, family=family)
        self.window = self.executor.window
        self.family = family
        self.max_batch_ops = 4096
        self.controller = AutotuneController(
            policy, decide_every_ops=decide_every_ops,
            sample_pairs=sample_pairs, profile_pairs=profile_pairs,
            registry=registry, tenant=tenant).attach(
                self, register_observer=False)

    @property
    def backend(self) -> str:
        return self.executor.backend

    def reconfigure(self, window: Optional[int] = None,
                    family: Optional[str] = None,
                    max_batch_ops: Optional[int] = None) -> None:
        family = family if family is not None else self.family
        self.executor = VlsaBatchExecutor(
            self.width, window=window, recovery_cycles=self.recovery_cycles,
            backend=self._backend, family=family)
        self.window = self.executor.window
        self.family = family
        if max_batch_ops is not None:
            self.max_batch_ops = max_batch_ops

    def execute(self, pairs: Sequence[Tuple[int, int]]) -> BatchOutcome:
        pairs = list(pairs)
        sums: List[int] = []
        couts: List[int] = []
        stalled: List[bool] = []
        spec_errors: List[bool] = []
        latencies: List[int] = []
        cycles = 0
        offset = 0
        while offset < len(pairs):
            chunk = pairs[offset:offset + self.max_batch_ops]
            offset += len(chunk)
            outcome = self.executor.execute(chunk)
            sums.extend(outcome.sums)
            couts.extend(outcome.couts)
            stalled.extend(outcome.stalled)
            spec_errors.extend(outcome.spec_errors)
            latencies.extend(outcome.latencies)
            cycles += outcome.cycles
            # Controller between micro-batches — reconfigurations land
            # before the next chunk, never inside one.
            self.controller.observe_batch(chunk, outcome)
        return BatchOutcome(sums=sums, couts=couts, stalled=stalled,
                            spec_errors=spec_errors, latencies=latencies,
                            cycles=cycles)
