"""Adaptive autotuning: SLA-driven online control of window & batch size.

The subsystem closes the loop the paper leaves open: speculative window
size trades delay against a *predictable* stall rate, so a serving
stack can pick — and keep re-picking — the best configuration for the
traffic it is actually seeing.  Four pieces:

* :mod:`~repro.autotune.profile` — sliding-window operand statistics
  (per-bit propagate/generate fractions) estimated online.
* :mod:`~repro.autotune.predictor` — analytic stall-rate and latency
  forecasts per ``(family, knob, batch size)`` candidate, built on the
  families' exact error models.
* :mod:`~repro.autotune.policy` — SLA knobs (``stall rate <= Y``,
  ``p99 latency <= X``) filtering the candidate space to the
  predicted-safe set, ranked by a throughput objective.
* :mod:`~repro.autotune.controller` — the online controller applying
  reconfigurations atomically between micro-batches on a live
  :class:`~repro.service.service.VlsaService` or
  :class:`~repro.cluster.router.ClusterRouter`; bit-exactness holds by
  construction (recovery is exact at every window) and is re-checked by
  the ``service:autotuned`` verify implementation.

Offline entry points live in :mod:`~repro.autotune.offline`
(`what_if`, `run_online`) and behind the ``repro autotune`` CLI verb.
"""

from .controller import AutotuneController, DecisionRecord, \
    SyncAutotunedExecutor
from .offline import run_online, what_if
from .policy import SLA, Decision, PolicyEngine, default_windows
from .predictor import (CandidateConfig, Forecast, delay_units, forecast,
                        predict_stall_rate)
from .profile import OperandProfile

__all__ = [
    "AutotuneController",
    "CandidateConfig",
    "Decision",
    "DecisionRecord",
    "Forecast",
    "OperandProfile",
    "PolicyEngine",
    "SLA",
    "SyncAutotunedExecutor",
    "default_windows",
    "delay_units",
    "forecast",
    "predict_stall_rate",
    "run_online",
    "what_if",
]
