"""Offline what-if analysis and the online convergence runner.

``what_if`` answers "which configuration would the policy pick for a
workload with these bit statistics?" without touching a live service —
the CLI's ``repro autotune`` verb is a thin wrapper over it.

``run_online`` drives a (typically nonstationary ``drift``) workload
through a real :class:`~repro.service.service.VlsaService` with an
:class:`~repro.autotune.controller.AutotuneController` attached, then
grades the run per phase: did the controller converge to a stable
configuration after each distribution shift, did the observed stall
rate stay inside the SLA, and does predicted-vs-observed agree within
the verify subsystem's binomial z-sigma cross-check?  The CI smoke and
the tier-1 convergence test both consume its report.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..engine.context import RunContext, resolve_rng
from ..service.loadgen import make_workload
from ..service.metrics import MetricsRegistry
from ..service.service import VlsaService
from ..verify.stats import binomial_bounds, check_rate
from .controller import AutotuneController
from .policy import SLA, Decision, PolicyEngine
from .profile import OperandProfile

__all__ = ["what_if", "run_online"]

# Fraction of each phase treated as settling time: the controller may
# still be reacting to the shift there, so convergence is graded on the
# remaining tail only.
SETTLE_FRACTION = 0.5


def what_if(width: int, sla: SLA, p_propagate: float = 0.5,
            p_generate: Optional[float] = None,
            families: Optional[Sequence[str]] = None,
            windows: Optional[Sequence[int]] = None,
            batch_sizes: Optional[Sequence[int]] = None,
            recovery_cycles: int = 1,
            alternatives: int = 8) -> Decision:
    """One policy evaluation against a synthetic operand profile."""
    policy = PolicyEngine(width, sla, families=families, windows=windows,
                          batch_sizes=batch_sizes,
                          recovery_cycles=recovery_cycles)
    profile = OperandProfile.fixed(width, p_propagate, p_generate)
    return policy.decide(profile, alternatives=alternatives)


def _grade_phase(phase: Dict[str, Any], rows: List[Dict[str, Any]],
                 sla: SLA, z: float) -> Dict[str, Any]:
    """Convergence verdict for one drift phase from its chunk rows."""
    total_ops = sum(r["ops"] for r in rows)
    settle = int(total_ops * SETTLE_FRACTION)
    done = 0
    tail: List[Dict[str, Any]] = []
    for r in rows:
        done += r["ops"]
        if done > settle:
            tail.append(r)
    final = (tail[-1]["family"], tail[-1]["window"]) if tail else None
    stable = all((r["family"], r["window"]) == final for r in tail)
    tail_ops = sum(r["ops"] for r in tail)
    tail_stalls = sum(r["stalls"] for r in tail)
    observed = tail_stalls / tail_ops if tail_ops else 0.0
    predicted = tail[-1]["predicted_stall_rate"] if tail else 0.0
    agreement = check_rate(
        name=f"phase:{phase.get('name', '?')}",
        stream="autotune-online", observed=tail_stalls, trials=tail_ops,
        expected_p=predicted, z=z)
    if sla.stall_rate is None:
        sla_ok = True
    else:
        # One-sided: the observed count must be consistent with a true
        # rate <= the SLA knob (upper binomial bound at the knob).
        _, hi = binomial_bounds(sla.stall_rate, tail_ops, z)
        sla_ok = tail_stalls <= hi
    return {
        "name": phase.get("name"),
        "ops": total_ops,
        "tail_ops": tail_ops,
        "p_propagate": phase.get("p_propagate"),
        "final_family": final[0] if final else None,
        "final_window": final[1] if final else None,
        "stable": stable,
        "observed_stall_rate": observed,
        "predicted_stall_rate": predicted,
        "agreement": agreement.as_dict(),
        "agreement_ok": agreement.ok,
        "sla_ok": sla_ok,
        "converged": stable and agreement.ok and sla_ok,
    }


def run_online(width: int = 64, sla: Optional[SLA] = None,
               ops: int = 60000, workload: str = "drift",
               chunk: int = 512, alpha: float = 0.75,
               families: Optional[Sequence[str]] = None,
               windows: Optional[Sequence[int]] = None,
               batch_sizes: Optional[Sequence[int]] = None,
               recovery_cycles: int = 1,
               decide_every_ops: int = 2048,
               profile_pairs: Optional[int] = None,
               max_batch_ops: int = 4096,
               z: float = 3.0, tenant: str = "default",
               seed: Optional[int] = None,
               ctx: Optional[RunContext] = None,
               registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """Drive *workload* through an autotuned service; grade convergence.

    Deterministic for a fixed seed: chunks are submitted sequentially,
    so each forms exactly one micro-batch and the controller sees the
    same stream every run.
    """
    import asyncio

    sla = sla if sla is not None else SLA()
    rng = resolve_rng(np.random.default_rng(seed) if seed is not None
                      else None, ctx)
    registry = registry if registry is not None else MetricsRegistry()
    policy = PolicyEngine(width, sla, families=families, windows=windows,
                          batch_sizes=batch_sizes or [max_batch_ops],
                          recovery_cycles=recovery_cycles)
    wl = make_workload(workload, width, policy.windows[-1], ops,
                       chunk=chunk, alpha=alpha, rng=rng, ctx=ctx)
    phases = wl.params.get("phases") or [
        {"name": wl.name, "ops": ops,
         "analytic_stall_rate": wl.analytic_stall_probability}]

    rows: List[Dict[str, Any]] = []

    async def _drive() -> AutotuneController:
        service = VlsaService(width=width, recovery_cycles=recovery_cycles,
                              max_batch_ops=max_batch_ops,
                              registry=registry, ctx=ctx)
        controller = AutotuneController(
            policy, decide_every_ops=decide_every_ops,
            profile_pairs=(profile_pairs if profile_pairs is not None
                           else 2 * decide_every_ops),
            registry=registry, tracer=service.tracer,
            tenant=tenant).attach(service)
        async with service:
            for pairs in wl.chunks:
                resp = await service.submit_batch(pairs)
                rows.append({
                    "ops": len(pairs),
                    "stalls": resp.stall_count,
                    "family": service.family,
                    "window": service.window,
                    "predicted_stall_rate": controller.g_predicted.value,
                })
        return controller

    controller = asyncio.run(_drive())

    # Partition chunk rows into the workload's phases.
    graded: List[Dict[str, Any]] = []
    idx = 0
    for phase in phases:
        want = phase.get("ops", 0)
        got = 0
        phase_rows: List[Dict[str, Any]] = []
        while idx < len(rows) and got < want:
            phase_rows.append(rows[idx])
            got += rows[idx]["ops"]
            idx += 1
        graded.append(_grade_phase(phase, phase_rows, sla, z))

    report = {
        "workload": wl.name,
        "width": width,
        "ops": sum(r["ops"] for r in rows),
        "chunk": chunk,
        "seed": seed,
        "sla": sla.as_dict(),
        "z": z,
        "decide_every_ops": decide_every_ops,
        "phases": graded,
        "final": {"family": controller.current.family,
                  "window": controller.current.primary,
                  "batch_ops": controller.current.batch_ops},
        "decisions": controller.decision_trace(),
        "reconfigurations": controller.reconfigurations,
        "sla_violations": controller.sla_violations,
        "observed_stall_rate": (
            sum(r["stalls"] for r in rows) / max(sum(r["ops"] for r in rows),
                                                 1)),
        "converged": all(p["converged"] for p in graded),
        "sla_met": all(p["sla_ok"] for p in graded),
    }
    return report
