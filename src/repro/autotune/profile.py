"""Online operand-profile estimation for the autotuner.

The analytic forecasts in :mod:`repro.autotune.predictor` are functions
of two per-bit probabilities of the operand stream:

``p_propagate``
    probability that a bit position propagates a carry (``a_i ^ b_i``),
``p_generate``
    probability that a bit position generates a carry (``a_i & b_i``).

Under the i.i.d.-bit model of the paper these two numbers determine the
exact stall rate of every registered adder family (see
:func:`repro.analysis.biased.run_at_least_probability_biased` and the
boundary DP in :mod:`repro.families.stats`).  The profile estimates them
from a **sliding window** of recently observed batches so the policy
engine reacts to distribution shift while forgetting stale traffic.

The estimator is deliberately cheap: one XOR, one AND, and two
popcounts per sampled operand pair.  Batches may be subsampled by the
caller; the window is bounded in *pairs*, not batches, so bursts of
tiny batches and single huge batches age out at the same rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = ["OperandProfile"]


def _popcount_words(words: "np.ndarray") -> int:
    """Total set bits across a uint64 array."""
    if words.size == 0:
        return 0
    return int(np.unpackbits(words.view(np.uint8)).sum())


def _popcount_int(value: int) -> int:
    return bin(value).count("1")


@dataclass
class OperandProfile:
    """Sliding-window estimate of per-bit propagate/generate fractions.

    Parameters
    ----------
    width:
        Operand width in bits; the denominator of every bit fraction.
    window_pairs:
        Maximum number of operand pairs retained.  Older segments are
        evicted whole once the total exceeds the window.
    """

    width: int
    window_pairs: int = 8192
    _segments: Deque[Tuple[int, int, int]] = field(default_factory=deque)
    _pairs: int = 0
    _prop_bits: int = 0
    _gen_bits: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.window_pairs < 1:
            raise ValueError("window_pairs must be >= 1")

    # -- ingestion ------------------------------------------------------

    def observe_arrays(self, a: "np.ndarray", b: "np.ndarray") -> None:
        """Fold a batch of uint64 operand arrays into the window.

        Operands are assumed already masked to ``width`` (the service
        masks on admission), so bits above ``width`` contribute zero to
        either popcount.
        """
        a = np.ascontiguousarray(a, dtype=np.uint64)
        b = np.ascontiguousarray(b, dtype=np.uint64)
        if a.shape != b.shape:
            raise ValueError("operand arrays must have the same shape")
        self._push(int(a.size), _popcount_words(a ^ b), _popcount_words(a & b))

    def observe_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Fold ``(a, b)`` integer pairs (any width, bigint safe)."""
        prop = gen = 0
        n = 0
        for a, b in pairs:
            prop += _popcount_int(a ^ b)
            gen += _popcount_int(a & b)
            n += 1
        self._push(n, prop, gen)

    def observe(self, pairs: Any) -> None:
        """Dispatch on the batch representation used by the executor."""
        if isinstance(pairs, np.ndarray):
            # (n, 2) operand matrix as produced by coerce_pairs_array.
            self.observe_arrays(pairs[:, 0], pairs[:, 1])
        else:
            self.observe_pairs(pairs)

    def _push(self, n: int, prop_bits: int, gen_bits: int) -> None:
        if n <= 0:
            return
        self._segments.append((n, prop_bits, gen_bits))
        self._pairs += n
        self._prop_bits += prop_bits
        self._gen_bits += gen_bits
        while self._pairs > self.window_pairs and len(self._segments) > 1:
            old_n, old_p, old_g = self._segments.popleft()
            self._pairs -= old_n
            self._prop_bits -= old_p
            self._gen_bits -= old_g

    # -- estimates ------------------------------------------------------

    @property
    def pairs(self) -> int:
        """Operand pairs currently inside the window."""
        return self._pairs

    @property
    def bits(self) -> int:
        """Bit positions observed (pairs x width)."""
        return self._pairs * self.width

    @property
    def p_propagate(self) -> float:
        """Estimated per-bit propagate probability (0.5 when empty).

        The uniform prior matches the paper's i.i.d. model, so an
        unwarmed profile reproduces the exact uniform forecasts.
        """
        if self._pairs == 0:
            return 0.5
        return self._prop_bits / self.bits

    @property
    def p_generate(self) -> float:
        """Estimated per-bit generate probability (0.25 when empty)."""
        if self._pairs == 0:
            return 0.25
        return self._gen_bits / self.bits

    @property
    def p_kill(self) -> float:
        return max(0.0, 1.0 - self.p_propagate - self.p_generate)

    def reset(self) -> None:
        self._segments.clear()
        self._pairs = self._prop_bits = self._gen_bits = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary for decision traces and reports."""
        return {
            "width": self.width,
            "window_pairs": self.window_pairs,
            "pairs": self._pairs,
            "p_propagate": self.p_propagate,
            "p_generate": self.p_generate,
            "p_kill": self.p_kill,
        }

    @classmethod
    def fixed(cls, width: int, p_propagate: float,
              p_generate: float = None, pairs: int = 1 << 20,
              ) -> "OperandProfile":
        """A synthetic profile pinned at given bit fractions.

        Used by the offline what-if path where no live traffic exists.
        The remaining probability mass is split evenly between generate
        and kill when ``p_generate`` is not given (symmetric operands).
        """
        if not 0.0 <= p_propagate <= 1.0:
            raise ValueError("p_propagate must be in [0, 1]")
        if p_generate is None:
            p_generate = (1.0 - p_propagate) / 2.0
        if p_generate < 0 or p_propagate + p_generate > 1.0 + 1e-12:
            raise ValueError("p_propagate + p_generate must be <= 1")
        prof = cls(width=width, window_pairs=max(pairs, 1))
        bits = pairs * width
        prof._push(pairs, round(p_propagate * bits), round(p_generate * bits))
        return prof


def profile_from_pairs(width: int, pairs: Iterable[Tuple[int, int]],
                       window_pairs: int = 8192) -> OperandProfile:
    """Convenience constructor used in tests and offline analysis."""
    prof = OperandProfile(width=width, window_pairs=window_pairs)
    prof.observe_pairs(list(pairs))
    return prof
