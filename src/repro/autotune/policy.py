"""SLA-driven policy engine over the analytic candidate space.

The policy turns an operand profile into a concrete configuration
choice.  It enumerates candidates ``(family, primary knob, batch_ops)``,
forecasts each with :mod:`repro.autotune.predictor`, filters to the set
the model predicts **safe** under the SLA knobs, and ranks the safe set
by the throughput objective ``avg_time_units``.  Only predicted-safe
configurations are ever proposed; if nothing is safe the policy falls
back to the most conservative candidate (minimum predicted stall rate,
largest window) and marks the decision infeasible so callers can alarm.

A hysteresis margin suppresses flapping: the incumbent configuration is
kept unless the challenger's predicted objective improves on it by more
than ``hysteresis`` (relative), or the incumbent has become unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..families import family_names, get_family
from .predictor import (DEFAULT_BATCH_OVERHEAD_UNITS, CandidateConfig,
                        Forecast, forecast)
from .profile import OperandProfile

__all__ = ["SLA", "Decision", "PolicyEngine", "default_windows"]

# Safety margin applied to the stall-rate SLA: a candidate is proposed
# only if its *predicted* rate clears the knob with this much headroom,
# absorbing profile-estimation noise (see the binomial cross-check in
# tests/autotune/test_controller.py).
DEFAULT_SAFETY_MARGIN = 0.8


@dataclass(frozen=True)
class SLA:
    """Service-level objectives the policy must satisfy.

    ``None`` disables a knob.  ``stall_rate`` bounds the predicted flag
    probability per op; ``p99_latency_cycles`` bounds the forecast
    queueing-inclusive tail latency (which makes it a batch-size knob).
    """

    stall_rate: Optional[float] = 0.02
    p99_latency_cycles: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"stall_rate": self.stall_rate,
                "p99_latency_cycles": self.p99_latency_cycles}


def default_windows(width: int) -> List[int]:
    """Geometric ladder of primary-knob values clamped to the width.

    Covers the interesting regimes: tiny windows (fast, stall-heavy),
    the paper's accuracy-targeted sizes, and the degenerate
    window == width point that behaves as the exact adder (stall rate
    ~0) — the fail-safe the policy falls back to under adversarial
    traffic.
    """
    ladder = [2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256]
    return sorted({w for w in ladder if w <= width} | {width})


@dataclass(frozen=True)
class Decision:
    """Outcome of one policy evaluation."""

    chosen: Forecast
    feasible: bool
    switched: bool
    considered: int
    sla: SLA
    profile: Dict[str, Any]
    alternatives: List[Forecast] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chosen": self.chosen.as_dict(),
            "feasible": self.feasible,
            "switched": self.switched,
            "considered": self.considered,
            "sla": self.sla.as_dict(),
            "profile": dict(self.profile),
            "alternatives": [f.as_dict() for f in self.alternatives],
        }


class PolicyEngine:
    """Search the candidate space under SLA constraints.

    Parameters
    ----------
    width:
        Operand width of the deployment.
    sla:
        The knobs; see :class:`SLA`.
    families:
        Family names to consider (default: every registered family).
    windows:
        Primary-knob ladder (default :func:`default_windows`).
    batch_sizes:
        ``max_batch_ops`` candidates (default: the service default only,
        so batch size is tuned only when the caller opts in).
    hysteresis:
        Relative objective improvement a challenger must show before the
        incumbent is replaced.
    """

    def __init__(self, width: int, sla: SLA,
                 families: Optional[Sequence[str]] = None,
                 windows: Optional[Sequence[int]] = None,
                 batch_sizes: Optional[Sequence[int]] = None,
                 recovery_cycles: int = 1,
                 overhead_units: float = DEFAULT_BATCH_OVERHEAD_UNITS,
                 safety_margin: float = DEFAULT_SAFETY_MARGIN,
                 hysteresis: float = 0.05) -> None:
        self.width = width
        self.sla = sla
        self.families = list(families) if families else family_names()
        for name in self.families:
            get_family(name)  # fail fast on unknown names
        self.windows = sorted(set(windows)) if windows \
            else default_windows(width)
        self.batch_sizes = sorted(set(batch_sizes)) if batch_sizes \
            else [4096]
        self.recovery_cycles = recovery_cycles
        self.overhead_units = overhead_units
        self.safety_margin = safety_margin
        self.hysteresis = hysteresis
        self._candidates = self._build_candidates()

    def _build_candidates(self) -> List[CandidateConfig]:
        out: List[CandidateConfig] = []
        seen = set()
        for name in self.families:
            fam = get_family(name)
            for w in self.windows:
                # resolve_params maps the bare knob onto the family's
                # primary parameter and clamps it to a legal value.
                params = fam.resolve_params(self.width, window=w)
                for batch in self.batch_sizes:
                    cand = CandidateConfig(family=name, width=self.width,
                                           params=params, batch_ops=batch)
                    if cand.key() in seen:
                        continue
                    seen.add(cand.key())
                    out.append(cand)
        return out

    @property
    def candidates(self) -> List[CandidateConfig]:
        return list(self._candidates)

    # -- decision -------------------------------------------------------

    def _safe(self, fc: Forecast) -> bool:
        if self.sla.stall_rate is not None and \
                fc.stall_rate > self.sla.stall_rate * self.safety_margin:
            return False
        if self.sla.p99_latency_cycles is not None and \
                fc.p99_latency_cycles > self.sla.p99_latency_cycles:
            return False
        return True

    def decide(self, profile: OperandProfile,
               current: Optional[CandidateConfig] = None,
               alternatives: int = 5) -> Decision:
        """Pick the best predicted-safe configuration for the profile."""
        p, g = profile.p_propagate, profile.p_generate
        forecasts = [forecast(c, p, g, self.recovery_cycles,
                              self.overhead_units)
                     for c in self._candidates]
        # Deterministic ranking: objective, then the more conservative
        # (larger) window, then family name, so ties never flap.
        forecasts.sort(key=lambda f: (f.avg_time_units,
                                      -f.candidate.primary,
                                      f.candidate.family,
                                      f.candidate.batch_ops))
        safe = [f for f in forecasts if self._safe(f)]
        feasible = bool(safe)
        if safe:
            best = safe[0]
        else:
            # Fail-safe: most conservative candidate — minimum predicted
            # stall, ties to the largest window (exact-adder behavior).
            best = min(forecasts,
                       key=lambda f: (f.stall_rate, -f.candidate.primary))
        switched = True
        if current is not None:
            cur_fc = forecast(current, p, g, self.recovery_cycles,
                              self.overhead_units)
            keep = self._safe(cur_fc) and (
                best.candidate.key() == current.key()
                or best.avg_time_units >
                cur_fc.avg_time_units * (1.0 - self.hysteresis))
            if keep:
                best = cur_fc
                switched = False
            elif best.candidate.key() == current.key():
                switched = False
        return Decision(chosen=best, feasible=feasible, switched=switched,
                        considered=len(forecasts), sla=self.sla,
                        profile=profile.snapshot(),
                        alternatives=forecasts[:alternatives])
