"""Error detection for the ACA (paper Section 4.1).

The ACA can only be wrong when a propagate chain of length >= ``w`` exists
in the addenda, so the error signal is::

    ER = OR over i of AND(p_i, p_{i+1}, ..., p_{i+w-1})

Each AND term is exactly the *propagate* half of a window product the ACA
already computes, so when built through an :class:`~repro.core.aca.AcaBuilder`
the detector adds only the final OR tree.  The standalone variant builds
the propagate strips itself — still only simple AND/OR gates, which is why
its critical path comes out around 2/3 of a traditional adder's even
though both have ``O(log n)`` levels (Section 4.1).
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit import Circuit, CircuitError, or_tree
from .aca import AcaBuilder

__all__ = ["attach_error_detector", "build_error_detector"]

#: OR-tree arity used for the reduction (4-input cells keep it shallow).
_OR_ARITY = 4


def attach_error_detector(builder: AcaBuilder) -> int:
    """Add the ER signal to a built ACA, reusing its window products.

    Args:
        builder: An :class:`AcaBuilder` whose :meth:`build` has run.

    Returns:
        The net id of the error flag (1 = speculative sum may be wrong).
    """
    if not builder.windows:
        raise CircuitError("builder must be built before attaching detection")
    w = builder.window
    if w > builder.width:
        return builder.circuit.const(0)  # no chain can reach the window
    terms = [builder.windows[i][1] for i in range(w - 1, builder.width)]
    return or_tree(builder.circuit, terms, max_arity=_OR_ARITY)


def build_error_detector(width: int, window: int) -> Circuit:
    """Standalone ER circuit: inputs ``a``/``b``, output ``err``.

    Builds the propagate run-detection with AND doubling strips (sharing
    identical to the ACA's propagate half) followed by an OR tree.
    """
    if window < 1:
        raise CircuitError("window must be >= 1")
    circuit = Circuit(f"error_detect{width}_w{window}")
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    if window > width:
        circuit.set_output("err", circuit.const(0))
        circuit.attrs["window"] = window
        return circuit

    p = [circuit.add_gate("XOR", ai, bi, pos=float(i))
         for i, (ai, bi) in enumerate(zip(a, b))]

    # AND-doubling: level j holds AND of the 2^j propagates ending at i.
    level: List[int] = list(p)
    certified = 1
    while certified * 2 <= window:
        step = certified
        level = [level[i] if i < step else
                 circuit.add_gate("AND", level[i], level[i - step],
                                  pos=float(i))
                 for i in range(width)]
        certified *= 2
    if certified < window:
        step = window - certified
        level = [level[i] if i < step else
                 circuit.add_gate("AND", level[i], level[i - step],
                                  pos=float(i))
                 for i in range(width)]

    terms = [level[i] for i in range(window - 1, width)]
    circuit.set_output("err", or_tree(circuit, terms, max_arity=_OR_ARITY))
    circuit.attrs["window"] = window
    return circuit
