"""Speculative multi-operand addition (paper Section 6 future work).

The paper notes that redundant (carry-save) arithmetic defers carry
propagation and that its conversion back to binary is the expensive step
— which is precisely where the ACA slots in.  This module implements:

* a gate-level **carry-save reduction tree** (3:2 compressors, Wallace
  style) that sums any number of operands into two rows with O(log m)
  depth and *no* carry propagation, and
* :func:`build_multi_operand_adder` — the reduction tree followed by a
  final adder that is either exact (Kogge-Stone) or an ACA, optionally
  with the error-detection flag.

The only approximate step is the final carry-propagate addition, so the
error analysis of the plain ACA carries over unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import Circuit, CircuitError
from .aca import AcaBuilder
from .error_detect import attach_error_detector

__all__ = ["reduce_carry_save", "build_multi_operand_adder"]


def _full_adder(circuit: Circuit, a: int, b: int, c: int,
                pos: float) -> Tuple[int, int]:
    """3:2 compressor: returns (sum, carry)."""
    s = circuit.add_gate("XOR", a, b, c, pos=pos)
    carry = circuit.add_gate("MAJ3", a, b, c, pos=pos)
    return s, carry


def _half_adder(circuit: Circuit, a: int, b: int,
                pos: float) -> Tuple[int, int]:
    s = circuit.add_gate("XOR", a, b, pos=pos)
    carry = circuit.add_gate("AND", a, b, pos=pos)
    return s, carry


def reduce_carry_save(circuit: Circuit, columns: List[List[int]],
                      ) -> Tuple[List[int], List[int]]:
    """Wallace-style reduction of bit *columns* down to two rows.

    Args:
        circuit: Target circuit.
        columns: ``columns[i]`` holds the nets of weight ``2^i``.  The
            list is modified destructively.

    Returns:
        ``(row_a, row_b)`` — two equal-length rows whose binary sum (with
        row_b shifted appropriately already baked into the columns)
        equals the sum of all input bits.  Columns beyond the input
        width may be appended for overflow.
    """
    columns = [list(col) for col in columns]
    while any(len(col) > 2 for col in columns):
        nxt: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for i, col in enumerate(columns):
            pos = float(i)
            j = 0
            while len(col) - j >= 3:
                s, c = _full_adder(circuit, col[j], col[j + 1], col[j + 2],
                                   pos)
                nxt[i].append(s)
                nxt[i + 1].append(c)
                j += 3
            if len(col) - j == 2:
                s, c = _half_adder(circuit, col[j], col[j + 1], pos)
                nxt[i].append(s)
                nxt[i + 1].append(c)
                j += 2
            nxt[i].extend(col[j:])
        while nxt and not nxt[-1]:
            nxt.pop()
        columns = nxt

    zero = circuit.const(0)
    row_a = [col[0] if len(col) >= 1 else zero for col in columns]
    row_b = [col[1] if len(col) >= 2 else zero for col in columns]
    return row_a, row_b


def build_multi_operand_adder(width: int, operands: int,
                              window: Optional[int] = None,
                              with_detector: bool = True) -> Circuit:
    """Sum *operands* unsigned *width*-bit inputs with one speculative CPA.

    Args:
        width: Width of each input operand.
        operands: Number of operands (>= 2); inputs are named ``x0..``.
        window: ACA window for the final carry-propagate addition; None
            builds an exact final adder instead (baseline).
        with_detector: Add an ``err`` output (speculative variant only).

    Returns:
        Circuit with inputs ``x0 .. x{m-1}`` and output ``sum`` wide
        enough to hold the full result (``width + ceil(log2 m)`` bits),
        plus ``err`` when requested.
    """
    if operands < 2:
        raise CircuitError("need at least two operands")
    import math

    out_width = width + math.ceil(math.log2(operands))
    name = (f"multiop{operands}x{width}_w{window}" if window
            else f"multiop{operands}x{width}_exact")
    circuit = Circuit(name)
    buses = [circuit.add_input_bus(f"x{k}", width) for k in range(operands)]

    columns: List[List[int]] = [[] for _ in range(out_width)]
    for bus in buses:
        for i, net in enumerate(bus):
            columns[i].append(net)

    row_a, row_b = reduce_carry_save(circuit, columns)
    # Pad the rows to the output width.
    zero = circuit.const(0)
    row_a = (row_a + [zero] * out_width)[:out_width]
    row_b = (row_b + [zero] * out_width)[:out_width]

    if window is None:
        from ..adders.kogge_stone import kogge_stone_schedule
        from ..circuit import carry_combine, pg_preprocess, sum_postprocess

        g, p = pg_preprocess(circuit, row_a, row_b)
        cur_g, cur_p = list(g), list(p)
        for level in kogge_stone_schedule(out_width):
            src_g, src_p = list(cur_g), list(cur_p)
            for i, j in level:
                cur_g[i], cur_p[i] = carry_combine(
                    circuit, src_g[i], src_p[i], src_g[j], src_p[j],
                    pos=float(i))
        carries = [zero] + cur_g[:out_width - 1]
        circuit.set_output("sum", sum_postprocess(circuit, p, carries))
    else:
        builder = AcaBuilder(circuit, row_a, row_b, window).build()
        circuit.set_output("sum", builder.sums)
        if with_detector:
            circuit.set_output("err", attach_error_detector(builder))
        circuit.attrs["window"] = builder.window

    circuit.attrs["operands"] = operands
    circuit.attrs["operand_width"] = width
    return circuit
