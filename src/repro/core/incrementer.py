"""Speculative incrementer (``x + 1``) — the simplest VLSA instance.

Incrementing carries through the trailing block of ones.  A ``w``-bit
window truncates that chain: the speculative carry into bit ``i`` is the
AND of the ``w`` bits below, so it is *too high* exactly when those bits
are all ones but the ones-run is broken by a zero further down.  Runs
anchored at bit 0 are always handled exactly (the +1 genuinely enters
there), mirroring the ACA's anchored-window property.

Detector: any ``w``-long ones-run starting above bit 0 — conservative
(an anchored longer run also matches) and complete (every error implies
such a run).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Union

from ..circuit import Circuit, CircuitError, and_tree, or_tree

__all__ = ["build_speculative_incrementer", "incrementer_error_probability"]


def incrementer_error_probability(width: int, window: int,
                                  exact: bool = False
                                  ) -> Union[float, Fraction]:
    """Exact P(speculative increment wrong) for a uniform input.

    Wrong iff the input contains a ones-run of length >= *window* that
    does not extend down to bit 0.  Computed with a linear DP (verified
    against brute force in the tests).
    """
    if width <= 0 or window <= 0:
        raise ValueError("width and window must be positive")
    if window >= width:
        return Fraction(0) if exact else 0.0

    one = Fraction(1) if exact else 1.0
    half = one / 2
    # States walked LSB-first: ("anchored", r) while still inside the run
    # touching bit 0 (capped, can never err), ("run", r) for later runs
    # (err when r reaches window).
    states = {("anchored", 0): one}
    error = one * 0
    for _ in range(width):
        nxt = {}

        def bump(key, mass):
            if mass:
                nxt[key] = nxt.get(key, one * 0) + mass

        for (kind, r), mass in states.items():
            # bit = 0: any current run ends; subsequent runs are unanchored
            bump(("run", 0), mass * half)
            # bit = 1: run extends
            if kind == "anchored":
                bump(("anchored", min(r + 1, window)), mass * half)
            else:
                if r + 1 >= window:
                    error += mass * half
                else:
                    bump(("run", r + 1), mass * half)
        states = nxt
    return error


def build_speculative_incrementer(width: int, window: int,
                                  with_detector: bool = True) -> Circuit:
    """Generate a *width*-bit speculative incrementer.

    Returns:
        Circuit with input ``x``, outputs ``inc`` (speculative sum
        ``x + 1`` mod ``2^width``) and ``cout`` (speculative carry out),
        plus ``err`` when *with_detector*.
    """
    if width <= 0:
        raise CircuitError("width must be positive")
    if window <= 0:
        raise CircuitError("window must be positive")
    window = min(window, width)
    circuit = Circuit(f"inc{width}_w{window}")
    x = circuit.add_input_bus("x", width)

    # Shared AND-doubling strips: runs[i] = AND of x[max(0,i-window+1)..i].
    level: List[int] = list(x)
    certified = 1
    while certified * 2 <= window:
        step = certified
        level = [level[i] if i < step else
                 circuit.add_gate("AND", level[i], level[i - step],
                                  pos=float(i))
                 for i in range(width)]
        certified *= 2
    if certified < window:
        step = window - certified
        level = [level[i] if i < step else
                 circuit.add_gate("AND", level[i], level[i - step],
                                  pos=float(i))
                 for i in range(width)]

    # Speculative carry into bit i = AND of the window below = level[i-1].
    carries = [circuit.const(1)]
    carries += [level[i - 1] for i in range(1, width + 1)]
    incremented = [circuit.add_gate("NOT", x[0], pos=0.0)]
    incremented += [circuit.add_gate("XOR", x[i], carries[i], pos=float(i))
                    for i in range(1, width)]

    circuit.set_output("inc", incremented)
    circuit.set_output("cout", carries[width])
    if with_detector:
        if window >= width:
            circuit.set_output("err", circuit.const(0))
        else:
            # Ones-runs of length `window` ending at bit >= window (i.e.
            # starting above bit 0).
            terms = [level[i] for i in range(window, width)]
            circuit.set_output("err", or_tree(circuit, terms, max_arity=4))
    circuit.attrs["window"] = window
    return circuit
