"""Signed (two's-complement) views and overflow flags for the ACA.

The base adders operate on unsigned bit vectors; this module layers the
signed semantics on top: a speculative adder with a two's-complement
overflow flag (``V = c_out(n) XOR c_out(n-1)``), plus Python-side helpers
to encode/decode signed integers for the functional models.

The overflow flag on the *speculative* path is itself speculative — it is
computed from the speculative carries and therefore guarded by the same
error detector as the sum.
"""

from __future__ import annotations

from typing import Optional

from ..circuit import Circuit, CircuitError
from .aca import AcaBuilder
from .error_detect import attach_error_detector
from .error_recovery import attach_error_recovery

__all__ = ["to_signed", "to_unsigned", "build_signed_adder"]


def to_signed(value: int, width: int) -> int:
    """Interpret the low *width* bits of *value* as two's complement."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Encode a (possibly negative) integer into *width* bits."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if not (lo <= value <= hi):
        raise ValueError(f"{value} does not fit in {width} signed bits")
    return value & ((1 << width) - 1)


def build_signed_adder(width: int, window: int,
                       with_recovery: bool = True) -> Circuit:
    """Speculative signed adder with overflow detection.

    Args:
        width: Operand bitwidth (two's complement).
        window: ACA speculation window.
        with_recovery: Include the exact outputs as well.

    Returns:
        Circuit with inputs ``a``/``b`` and outputs ``sum``, ``overflow``
        (speculative, guarded by ``err``) plus ``sum_exact`` /
        ``overflow_exact`` when *with_recovery*.
    """
    if width < 2:
        raise CircuitError("signed adder needs at least 2 bits")
    circuit = Circuit(f"signed_add{width}_w{window}")
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)

    builder = AcaBuilder(circuit, a, b, window).build()
    circuit.set_output("sum", builder.sums)
    # V = carry into MSB xor carry out of MSB.
    v_spec = circuit.add_gate("XOR", builder.spec_carries[width - 1],
                              builder.spec_carries[width],
                              pos=float(width))
    circuit.set_output("overflow", v_spec)
    circuit.set_output("err", attach_error_detector(builder))

    if with_recovery:
        sums, cout = attach_error_recovery(builder)
        circuit.set_output("sum_exact", sums)
        # Exact carry into the MSB: recover it from the exact sum bit,
        # since s_{n-1} = p_{n-1} ^ c_{n-1}  =>  c_{n-1} = s ^ p.
        c_msb = circuit.add_gate("XOR", sums[width - 1],
                                 builder.p[width - 1], pos=float(width))
        v_exact = circuit.add_gate("XOR", c_msb, cout, pos=float(width))
        circuit.set_output("overflow_exact", v_exact)

    circuit.attrs["window"] = builder.window
    return circuit
