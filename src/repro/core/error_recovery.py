"""Error recovery for the ACA (paper Section 4.2, Fig. 5).

The window products the ACA computes include, for every ``w``-bit block of
the operands, that block's group propagate and generate.  Recovery reuses
them: an ``n/w``-input carry-lookahead computes the true carry into every
block, intra-block prefixes (one extra combine each, from the shared
strips) extend those to the true carry into every bit, and a final XOR row
produces the exact sum.

The recovery path therefore costs roughly one block-lookahead more than
the ACA itself — the paper measures it at about the delay of a traditional
adder — and is exercised only when the detector fires.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..adders.cla import lookahead_carries
from ..circuit import Circuit, CircuitError
from .aca import AcaBuilder

__all__ = ["attach_error_recovery", "build_recovery_adder"]


def attach_error_recovery(builder: AcaBuilder) -> Tuple[List[int], int]:
    """Add exact-sum logic to a built ACA, reusing its block products.

    Args:
        builder: An :class:`AcaBuilder` whose :meth:`build` has run.

    Returns:
        ``(sum_bits, carry_out)`` of the exact (recovered) result.
    """
    if not builder.windows:
        raise CircuitError("builder must be built before attaching recovery")
    c = builder.circuit
    n, w = builder.width, builder.window
    cin = builder.cin

    # Block boundaries: w-bit blocks from the LSB, last block possibly short.
    bounds: List[Tuple[int, int]] = []
    lo = 0
    while lo < n:
        hi = min(lo + w, n) - 1
        bounds.append((lo, hi))
        lo = hi + 1

    # Block (G, P): full blocks come straight from the ACA's window row
    # (windows[hi] spans [hi-w+1, hi] == the block); a short final block
    # needs at most one extra combine from the shared strips.
    grp_g: List[int] = []
    grp_p: List[int] = []
    for lo, hi in bounds:
        if hi - lo + 1 == w:
            g_blk, p_blk = builder.windows[hi]
        else:
            g_blk, p_blk = builder.range_product(lo, hi)
        grp_g.append(g_blk)
        grp_p.append(p_blk)

    # True carry into every block via the classic lookahead unit (block
    # index k lives around bit column k*w, hence pos_step=w).
    block_carries, cout = lookahead_carries(c, grp_g, grp_p, cin,
                                            pos_step=float(w))

    # True carry into every bit: intra-block prefix o block carry.
    carries: List[int] = []
    for k, (lo, hi) in enumerate(bounds):
        c_blk = block_carries[k]
        for i in range(lo, hi + 1):
            if i == lo:
                carries.append(c_blk)
                continue
            g_pre, p_pre = builder.range_product(lo, i - 1)
            carries.append(c.add_gate("AO21", p_pre, c_blk, g_pre,
                                      pos=float(i)))

    sums = [c.add_gate("XOR", builder.p[i], carries[i], pos=float(i))
            for i in range(n)]
    return sums, cout


def build_recovery_adder(width: int, window: int, cin: bool = False
                         ) -> Circuit:
    """ACA + recovery as one exact adder (the paper's "ACA + Error
    Recovery" curve in Fig. 8).

    Returns:
        Circuit with outputs ``sum``/``cout`` (exact) plus the speculative
        ``sum_spec``/``cout_spec`` the ACA produced on the way.
    """
    circuit = Circuit(f"aca_recovery{width}_w{window}")
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    cin_net = circuit.add_input("cin", pos=0.0) if cin else None
    builder = AcaBuilder(circuit, a, b, window, cin_net).build()
    sums, cout = attach_error_recovery(builder)
    circuit.set_output("sum", sums)
    circuit.set_output("cout", cout)
    circuit.set_output("sum_spec", builder.sums)
    circuit.set_output("cout_spec", builder.spec_carries[width])
    circuit.attrs["window"] = builder.window
    return circuit
