"""Speculative multiplication (paper Section 6 future work).

A multiplier is a partial-product generator, a carry-save reduction tree,
and one final carry-propagate addition.  Only the final addition
propagates carries, so it is the natural place to speculate: this module
generates a Wallace-tree multiplier whose final adder is either exact
(the baseline) or an ACA with the usual error detector.

Because the final adder's operands are reduction-tree outputs rather
than uniform random words, the error probability differs from the plain
ACA's; :func:`multiplier_error_rate` measures it empirically and the
benchmark compares it against the uniform-operand model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuit import Circuit, CircuitError, simulate_bus_ints
from .aca import AcaBuilder
from .error_detect import attach_error_detector
from .multiop import reduce_carry_save

__all__ = ["build_multiplier", "multiplier_error_rate"]


def build_multiplier(width: int, window: Optional[int] = None,
                     with_detector: bool = True) -> Circuit:
    """Generate a *width* x *width* unsigned Wallace-tree multiplier.

    Args:
        width: Operand bitwidth (product is ``2*width`` bits).
        window: ACA window for the final addition; ``None`` builds the
            exact (Kogge-Stone) final adder.
        with_detector: Add the ``err`` flag (speculative variant only).

    Returns:
        Circuit with inputs ``a``/``b`` and output ``product`` (plus
        ``err`` when requested).
    """
    if width < 1:
        raise CircuitError("width must be positive")
    out_width = 2 * width
    name = (f"mul{width}_w{window}" if window else f"mul{width}_exact")
    circuit = Circuit(name)
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)

    # Partial products: columns[k] collects a_i & b_j with i + j == k.
    columns: List[List[int]] = [[] for _ in range(out_width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(
                circuit.add_gate("AND", a[i], b[j], pos=float(i + j)))

    row_a, row_b = reduce_carry_save(circuit, columns)
    zero = circuit.const(0)
    row_a = (row_a + [zero] * out_width)[:out_width]
    row_b = (row_b + [zero] * out_width)[:out_width]

    if window is None:
        from ..adders.kogge_stone import kogge_stone_schedule
        from ..circuit import carry_combine, pg_preprocess, sum_postprocess

        g, p = pg_preprocess(circuit, row_a, row_b)
        cur_g, cur_p = list(g), list(p)
        for level in kogge_stone_schedule(out_width):
            src_g, src_p = list(cur_g), list(cur_p)
            for i, j in level:
                cur_g[i], cur_p[i] = carry_combine(
                    circuit, src_g[i], src_p[i], src_g[j], src_p[j],
                    pos=float(i))
        carries = [zero] + cur_g[:out_width - 1]
        circuit.set_output("product", sum_postprocess(circuit, p, carries))
    else:
        builder = AcaBuilder(circuit, row_a, row_b, window).build()
        circuit.set_output("product", builder.sums)
        if with_detector:
            circuit.set_output("err", attach_error_detector(builder))
        circuit.attrs["window"] = builder.window

    circuit.attrs["operand_width"] = width
    return circuit


def multiplier_error_rate(width: int, window: int, samples: int = 2000,
                          seed: Optional[int] = 0
                          ) -> Tuple[float, float]:
    """Measured (error rate, detector-flag rate) of a speculative multiplier.

    Simulates the actual gate-level circuit on uniform random operands;
    the final adder's inputs are *not* uniform (carry-save rows are
    correlated), so this is the honest measurement the uniform-operand
    model cannot provide.
    """
    circuit = build_multiplier(width, window, with_detector=True)
    rng = np.random.default_rng(seed)
    mask = (1 << width) - 1
    errors = flags = 0
    for _ in range(samples):
        a = int(rng.integers(0, mask + 1))
        b = int(rng.integers(0, mask + 1))
        out = simulate_bus_ints(circuit, {"a": a, "b": b})
        if out["product"] != a * b:
            errors += 1
            assert out["err"], "detector must never miss"
        if out["err"]:
            flags += 1
    return errors / samples, flags / samples
