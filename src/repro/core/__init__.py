"""The paper's contribution: ACA, error detection/recovery, VLSA datapath.

* :func:`build_aca` — the Almost Correct Adder (Section 3).
* :func:`build_error_detector` / :func:`attach_error_detector` — the
  propagate-run detector (Section 4.1).
* :func:`build_recovery_adder` / :func:`attach_error_recovery` — block
  lookahead recovery reusing ACA products (Section 4.2, Fig. 5).
* :func:`build_vlsa_datapath` — all three with shared logic (Fig. 6).
"""

from .aca import AcaBuilder, build_aca, naive_aca_window_products
from .error_detect import attach_error_detector, build_error_detector
from .error_recovery import attach_error_recovery, build_recovery_adder
from .vlsa import VlsaTiming, build_vlsa_datapath, characterize_vlsa
from .vlsa_rtl import build_vlsa_rtl
from .multiop import build_multi_operand_adder, reduce_carry_save
from .multiplier import build_multiplier, multiplier_error_rate
from .subtract import build_speculative_subtractor
from .booth import booth_digits, build_booth_multiplier
from .signed import build_signed_adder, to_signed, to_unsigned
from .incrementer import (
    build_speculative_incrementer,
    incrementer_error_probability,
)

__all__ = [
    "AcaBuilder", "build_aca", "naive_aca_window_products",
    "attach_error_detector", "build_error_detector",
    "attach_error_recovery", "build_recovery_adder",
    "VlsaTiming", "build_vlsa_datapath", "characterize_vlsa",
    "build_vlsa_rtl",
    "build_multi_operand_adder", "reduce_carry_save",
    "build_multiplier", "multiplier_error_rate",
    "build_speculative_subtractor",
    "booth_digits", "build_booth_multiplier",
    "build_signed_adder", "to_signed", "to_unsigned",
    "build_speculative_incrementer", "incrementer_error_probability",
]
