"""Radix-4 Booth-encoded signed multiplier with a speculative final add.

A second multiplier architecture alongside the Wallace AND-array of
:mod:`repro.core.multiplier`: modified-Booth recoding halves the number
of partial products, each row being ``{-2,-1,0,+1,+2} * A``.  Negative
rows are realised as full-width complement plus a +1 correction bit, so
the carry-save columns stay a plain multi-set of bits and the same
reduction/final-adder machinery applies — including the ACA final adder
and its error flag.

Operands and product are two's complement (``width`` -> ``2*width``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuit import Circuit, CircuitError
from .aca import AcaBuilder
from .error_detect import attach_error_detector
from .multiop import reduce_carry_save

__all__ = ["build_booth_multiplier", "booth_digits"]


def booth_digits(value: int, width: int) -> List[int]:
    """Reference radix-4 Booth recoding of a signed *width*-bit value.

    Returns digits in {-2..2}, least significant first, such that
    ``sum(d * 4^j) == value`` (two's complement interpretation).
    """
    from .signed import to_signed

    signed = to_signed(value, width)
    digits = []
    bits = value & ((1 << width) - 1)

    def bit(i: int) -> int:
        if i < 0:
            return 0
        if i >= width:
            return (bits >> (width - 1)) & 1  # sign extension
        return (bits >> i) & 1

    num_digits = (width + 1) // 2
    for j in range(num_digits):
        x, y, z = bit(2 * j + 1), bit(2 * j), bit(2 * j - 1)
        digits.append(z + y - 2 * x)
    assert sum(d * 4 ** j for j, d in enumerate(digits)) == signed
    return digits


def build_booth_multiplier(width: int, window: Optional[int] = None,
                           with_detector: bool = True) -> Circuit:
    """Generate a signed *width* x *width* radix-4 Booth multiplier.

    Args:
        width: Operand bitwidth (two's complement); must be >= 2.
        window: ACA window for the final addition (None = exact).
        with_detector: Add the ``err`` flag (speculative variant only).

    Returns:
        Circuit with inputs ``a``/``b`` and output ``product``
        (``2*width`` bits, two's complement), plus ``err`` if requested.
    """
    if width < 2:
        raise CircuitError("Booth multiplier needs width >= 2")
    out_width = 2 * width
    name = (f"booth{width}_w{window}" if window else f"booth{width}_exact")
    circuit = Circuit(name)
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    zero = circuit.const(0)

    def a_ext(k: int) -> int:
        """Sign-extended multiplicand bit ``k`` (a_{-1} = 0)."""
        if k < 0:
            return zero
        if k >= width:
            return a[width - 1]
        return a[k]

    def b_ext(k: int) -> int:
        if k < 0:
            return zero
        if k >= width:
            return b[width - 1]
        return b[k]

    columns: List[List[int]] = [[] for _ in range(out_width)]
    num_digits = (width + 1) // 2
    for j in range(num_digits):
        x = b_ext(2 * j + 1)
        y = b_ext(2 * j)
        z = b_ext(2 * j - 1)
        pos = float(2 * j)
        sel1 = circuit.add_gate("XOR", y, z, pos=pos)        # |d| == 1
        sel2 = circuit.add_gate("XNOR", y, z, pos=pos)
        sel2 = circuit.add_gate("AND", sel2,
                                circuit.add_gate("XOR", x, y, pos=pos),
                                pos=pos)                      # |d| == 2
        neg = x                                               # d < 0

        for c in range(out_width):
            k = c - 2 * j
            if k < 0:
                # Below the shift: 0 before negation -> just `neg` after.
                columns[c].append(neg)
                continue
            v1 = circuit.add_gate("AND", sel1, a_ext(k), pos=float(c))
            v2 = circuit.add_gate("AND", sel2, a_ext(k - 1), pos=float(c))
            v = circuit.add_gate("OR", v1, v2, pos=float(c))
            columns[c].append(circuit.add_gate("XOR", v, neg, pos=float(c)))
        # Two's-complement correction: ~row + 1.
        columns[0].append(neg)

    row_a, row_b = reduce_carry_save(circuit, columns)
    row_a = (row_a + [zero] * out_width)[:out_width]
    row_b = (row_b + [zero] * out_width)[:out_width]

    if window is None:
        from ..adders.kogge_stone import kogge_stone_schedule
        from ..circuit import carry_combine, pg_preprocess, sum_postprocess

        g, p = pg_preprocess(circuit, row_a, row_b)
        cur_g, cur_p = list(g), list(p)
        for level in kogge_stone_schedule(out_width):
            src_g, src_p = list(cur_g), list(cur_p)
            for i, jj in level:
                cur_g[i], cur_p[i] = carry_combine(
                    circuit, src_g[i], src_p[i], src_g[jj], src_p[jj],
                    pos=float(i))
        carries = [zero] + cur_g[:out_width - 1]
        circuit.set_output("product", sum_postprocess(circuit, p, carries))
    else:
        builder = AcaBuilder(circuit, row_a, row_b, window).build()
        circuit.set_output("product", builder.sums)
        if with_detector:
            circuit.set_output("err", attach_error_detector(builder))
        circuit.attrs["window"] = builder.window

    circuit.attrs["operand_width"] = width
    circuit.attrs["encoding"] = "booth-radix4"
    return circuit
