"""Almost Correct Adder (ACA) — paper Sections 3 and 3.2.

The ACA computes the carry into every bit position from a ``w``-bit window
of preceding bits, assuming no carry enters the window.  Conceptually each
sum bit has its own small adder (paper Fig. 1); the realisation here is the
paper's shared-logic construction (Fig. 3/4):

1. Build *strips*: for every position ``i`` and level ``j``, the carry
   operator product of the ``2^j`` matrices ending at ``i`` (a Kogge-Stone
   style doubling recursion, ``O(n log w)`` nodes, fanout bounded by 3).
2. Form each ``w``-wide window product with at most one extra combine, using
   the idempotency of the carry operator across overlapping ranges.

Windows that reach bit 0 are anchored there (and absorb the external
carry-in when present), so the low ``w`` bits are always exact; the adder
as a whole is exact whenever no propagate chain of length ``w`` receives an
incoming carry (see :mod:`repro.analysis.error_model`).

:class:`AcaBuilder` exposes the strip products so the error detector and
the error-recovery logic (paper Fig. 5) can share them — the sharing that
makes the full VLSA barely larger than the ACA plus a block lookahead.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuit import Circuit, CircuitError, carry_combine, pg_preprocess
from ..adders.base import adder_ports

__all__ = ["AcaBuilder", "build_aca", "naive_aca_window_products"]

PG = Tuple[int, int]  # (generate net, propagate net)


class AcaBuilder:
    """Builds ACA logic into a circuit and exposes the shared products.

    Args:
        circuit: Target circuit.
        a: Operand A nets (LSB first).
        b: Operand B nets.
        window: Speculation window ``w`` (>= 1).
        cin: Optional carry-in net (anchored windows absorb it).

    Attributes (populated by :meth:`build`):
        g, p: Per-bit generate/propagate nets.
        strips: ``strips[j][i]`` is the (g, p) product of the ``2^j``
            positions ending at ``i`` (clamped at bit 0).
        windows: ``windows[i]`` is the (g, p) product of the ``w`` positions
            ending at ``i`` (clamped at bit 0).
        spec_carries: ``spec_carries[i]`` is the speculative carry into bit
            ``i`` (index ``width`` is the speculative carry out).
        sums: Speculative sum bits.
    """

    def __init__(self, circuit: Circuit, a: List[int], b: List[int],
                 window: int, cin: Optional[int] = None):
        if window < 1:
            raise CircuitError("window must be >= 1")
        if len(a) != len(b):
            raise CircuitError("operand widths differ")
        self.circuit = circuit
        self.a = list(a)
        self.b = list(b)
        self.width = len(a)
        self.window = min(window, self.width)
        self.cin = cin
        self.g: List[int] = []
        self.p: List[int] = []
        self.strips: List[List[PG]] = []
        self.windows: List[PG] = []
        self.spec_carries: List[int] = []
        self.sums: List[int] = []

    # ------------------------------------------------------------------
    def build(self) -> "AcaBuilder":
        """Construct strips, window products, carries and sum bits."""
        self.build_prefix()
        self._build_windows()
        self._build_carries_and_sums()
        return self

    def build_prefix(self) -> "AcaBuilder":
        """Construct only the (g, p) row and the doubling strips.

        The strips are a generic shared-product substrate — every range
        product up to ``2^ceil(log2(window))`` wide is then one
        :meth:`range_product` call away — so other speculative-adder
        families (see :mod:`repro.families`) reuse them without paying
        for the ACA's own window/carry/sum rows.
        """
        self.g, self.p = pg_preprocess(self.circuit, self.a, self.b)
        self._build_strips()
        return self

    # ------------------------------------------------------------------
    def _build_strips(self) -> None:
        c = self.circuit
        strips: List[List[PG]] = [list(zip(self.g, self.p))]
        m = 0
        while (1 << m) < self.window:
            m += 1
        # Levels 1 .. m-1 (the final doubling is fused into the window row).
        for j in range(1, m):
            step = 1 << (j - 1)
            prev = strips[j - 1]
            level: List[PG] = []
            for i in range(self.width):
                if i < step:
                    level.append(prev[i])  # already anchored at bit 0
                else:
                    gi, pi = prev[i]
                    gj, pj = prev[i - step]
                    level.append(carry_combine(c, gi, pi, gj, pj,
                                               pos=float(i)))
            strips.append(level)
        self.strips = strips
        self._m = m

    def range_product(self, lo: int, hi: int) -> PG:
        """(g, p) of positions ``[lo .. hi]`` using at most one new combine.

        Requires ``hi - lo + 1 <= 2^(levels built)``; used by the window
        row and by error recovery's intra-block prefixes.
        """
        if not (0 <= lo <= hi < self.width):
            raise CircuitError(f"bad range [{lo}..{hi}]")
        u = hi - lo + 1
        j = 0
        while (1 << j) < u:
            j += 1
        # strips[j][hi] covers [max(0, hi - 2^j + 1), hi], which equals
        # [lo, hi] when the range is power-of-two wide or anchored at 0.
        if ((1 << j) == u or lo == 0) and j < len(self.strips):
            return self.strips[j][hi]
        if j - 1 >= len(self.strips):
            raise CircuitError(
                f"range [{lo}..{hi}] wider than built strips allow")
        # Overlap combine: high part [hi-2^(j-1)+1 .. hi] from level j-1,
        # low part ending where the target range begins + 2^(j-1) - 1.
        half = 1 << (j - 1)
        g_hi, p_hi = self.strips[j - 1][hi]
        g_lo, p_lo = self.strips[j - 1][lo + half - 1]
        return carry_combine(self.circuit, g_hi, p_hi, g_lo, p_lo,
                             pos=float(hi))

    def _build_windows(self) -> None:
        c = self.circuit
        w = self.window
        m = self._m
        top = self.strips[-1]  # level m-1 (or level 0 when w == 1)
        windows: List[PG] = []
        if m == 0:
            self.windows = list(top)
            return
        half = 1 << (m - 1)
        for i in range(self.width):
            if i < half:
                windows.append(top[i])  # anchored, covers [0, i]
                continue
            lo_src = max(i - (w - half), half - 1)
            g_hi, p_hi = top[i]
            g_lo, p_lo = top[lo_src]
            windows.append(carry_combine(c, g_hi, p_hi, g_lo, p_lo,
                                         pos=float(i)))
        self.windows = windows

    def _build_carries_and_sums(self) -> None:
        c = self.circuit
        zero = c.const(0)
        carries: List[int] = []
        for i in range(self.width + 1):
            if i == 0:
                carries.append(self.cin if self.cin is not None else zero)
                continue
            g_w, p_w = self.windows[i - 1]
            anchored = (i - 1) < self.window  # window reaches bit 0
            if anchored and self.cin is not None:
                carries.append(c.add_gate("AO21", p_w, self.cin, g_w,
                                          pos=float(i)))
            else:
                carries.append(g_w)
        self.spec_carries = carries
        self.sums = [c.add_gate("XOR", self.p[i], carries[i], pos=float(i))
                     for i in range(self.width)]

    # ------------------------------------------------------------------
    def block_pg(self, lo: int, hi: int) -> PG:
        """Block (G, P) of ``[lo..hi]`` for the recovery lookahead."""
        return self.range_product(lo, hi)


def build_aca(width: int, window: int, cin: bool = False) -> Circuit:
    """Generate a *width*-bit Almost Correct Adder with the given window.

    Args:
        width: Operand bitwidth.
        window: Speculation window ``w``; the result is exact whenever the
            longest propagate chain with an incoming carry is shorter than
            ``w`` (choose via :func:`repro.analysis.error_model.choose_window`).
        cin: Include a carry-in port.

    Returns:
        Circuit with buses ``a``, ``b`` (and ``cin``), outputs ``sum`` and
        (speculative) ``cout``.
    """
    circuit, a, b, cin_net = adder_ports(f"aca{width}_w{window}", width, cin)
    builder = AcaBuilder(circuit, a, b, window, cin_net).build()
    circuit.set_output("sum", builder.sums)
    circuit.set_output("cout", builder.spec_carries[width])
    circuit.attrs["window"] = builder.window
    return circuit


def naive_aca_window_products(width: int, window: int) -> Circuit:
    """Unshared reference: one independent small adder per window (Fig. 1).

    Used only by the sharing ablation (Fig. 3/4 reproduction): it computes
    the same speculative carries with per-window ripple chains and no reuse
    across windows, demonstrating the area/fanout cost the shared strips
    avoid.
    """
    # Structural hashing would silently re-share the chains and defeat the
    # point of the comparison, so it is disabled for this reference.
    circuit = Circuit(f"aca_naive{width}_w{window}", use_strash=False)
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    window = min(window, width)
    g, p = pg_preprocess(circuit, a, b)
    carries: List[int] = [circuit.const(0)]
    for i in range(1, width + 1):
        lo = max(0, i - window)
        # Ripple the block generate without any cross-window sharing.
        acc_g, acc_p = g[lo], p[lo]
        for j in range(lo + 1, i):
            acc_g, acc_p = carry_combine(circuit, g[j], p[j], acc_g, acc_p,
                                         pos=float(j))
        carries.append(acc_g)
    sums = [circuit.add_gate("XOR", p[i], carries[i], pos=float(i))
            for i in range(width)]
    circuit.set_output("sum", sums)
    circuit.set_output("cout", carries[width])
    circuit.attrs["window"] = window
    return circuit
