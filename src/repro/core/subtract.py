"""Speculative subtraction and comparison built on the ACA.

Two's-complement subtraction is ``a + ~b + 1``; the ``+1`` rides in on
the carry-in port the ACA already supports (anchored windows absorb it
exactly).  Comparison reuses the subtractor's carry-out.
"""

from __future__ import annotations

from typing import Optional

from ..circuit import Circuit, CircuitError
from .aca import AcaBuilder
from .error_detect import attach_error_detector
from .error_recovery import attach_error_recovery

__all__ = ["build_speculative_subtractor"]


def build_speculative_subtractor(width: int, window: int,
                                 with_detector: bool = True,
                                 with_recovery: bool = False) -> Circuit:
    """Generate a speculative two's-complement subtractor ``a - b``.

    Args:
        width: Operand bitwidth.
        window: ACA speculation window.
        with_detector: Add the ``err`` flag.
        with_recovery: Also add the exact ``diff_exact`` output.

    Returns:
        Circuit with inputs ``a``/``b`` and outputs ``diff`` (a - b mod
        2^width) and ``geq`` (1 iff a >= b, from the carry out), plus
        ``err`` / ``diff_exact`` when requested.  ``geq`` is speculative
        like ``diff``; the detector guards both.
    """
    if width < 1:
        raise CircuitError("width must be positive")
    circuit = Circuit(f"sub{width}_w{window}")
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    not_b = [circuit.add_gate("NOT", bit, pos=float(i))
             for i, bit in enumerate(b)]
    one = circuit.const(1)

    builder = AcaBuilder(circuit, a, not_b, window, cin=one).build()
    circuit.set_output("diff", builder.sums)
    circuit.set_output("geq", builder.spec_carries[width])
    if with_detector:
        circuit.set_output("err", attach_error_detector(builder))
    if with_recovery:
        sums, cout = attach_error_recovery(builder)
        circuit.set_output("diff_exact", sums)
        circuit.set_output("geq_exact", cout)
    circuit.attrs["window"] = builder.window
    return circuit
