"""The registered, gate-level VLSA of paper Fig. 6.

While :mod:`repro.arch.vlsa_machine` models the pipeline behaviourally,
this module builds the *actual netlist*: operand registers with an
enable mux, the shared ACA/detector/recovery datapath, a one-bit state
register tracking the recovery cycle, and the VALID/STALL handshake —
all as gates and flip-flops that can be simulated cycle-accurately with
:class:`repro.circuit.sequential.SequentialSimulator`, timed with
:func:`~repro.circuit.sequential.min_clock_period`, and exported to
VHDL/Verilog with a clock port.

Protocol (one add per issue, matching the paper's Fig. 7):

* When ``stall`` is low the circuit captures ``a``/``b`` on the edge.
* The following cycle ``valid`` is high and ``sum`` carries the
  speculative result — unless the detector fired, in which case
  ``stall`` is high for one cycle and the corrected sum appears (with
  ``valid``) one cycle later.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.error_model import choose_window
from ..circuit import Circuit
from .aca import AcaBuilder
from .error_detect import attach_error_detector
from .error_recovery import attach_error_recovery

__all__ = ["build_vlsa_rtl"]


def build_vlsa_rtl(width: int, window: Optional[int] = None,
                   accuracy: float = 0.9999) -> Circuit:
    """Generate the sequential VLSA netlist (registers included).

    Args:
        width: Operand bitwidth.
        window: Speculation window (default: the *accuracy* quantile).
        accuracy: Window-selection target when *window* is None.

    Returns:
        Sequential circuit with inputs ``a``/``b``, outputs ``sum``,
        ``valid`` and ``stall`` (plus the implicit ``clk`` port on RTL
        export).
    """
    if window is None:
        window = choose_window(width, accuracy)
    c = Circuit(f"vlsa_rtl{width}_w{window}")
    a_in = c.add_input_bus("a", width)
    b_in = c.add_input_bus("b", width)

    # State: operand registers + "recovering" flag (Fig. 6's controller).
    recovering = c.add_dff("recovering", init=0)
    a_reg = [c.add_dff(f"a_r{i}", pos=float(i)) for i in range(width)]
    b_reg = [c.add_dff(f"b_r{i}", pos=float(i)) for i in range(width)]

    # Datapath on the registered operands, fully shared.
    builder = AcaBuilder(c, a_reg, b_reg, window).build()
    err = attach_error_detector(builder)
    exact_sums, _exact_cout = attach_error_recovery(builder)

    # Controller: stall for exactly one cycle after a flagged issue.
    # recovering' = err & ~recovering  (one recovery cycle per stall)
    not_rec = c.add_gate("NOT", recovering)
    start_recovery = c.add_gate("AND", err, not_rec)
    c.connect_dff(recovering, start_recovery)

    # Operand registers capture new inputs unless a recovery is starting
    # (hold during the stall cycle so the corrected sum stays aligned).
    for i in range(width):
        hold_a = c.add_gate("MUX2", start_recovery, a_reg[i], a_in[i],
                            pos=float(i))
        hold_b = c.add_gate("MUX2", start_recovery, b_reg[i], b_in[i],
                            pos=float(i))
        c.connect_dff(a_reg[i], hold_a)
        c.connect_dff(b_reg[i], hold_b)

    # Outputs: during recovery present the exact sum, else speculative.
    sum_bits: List[int] = [
        c.add_gate("MUX2", recovering, exact_sums[i], builder.sums[i],
                   pos=float(i))
        for i in range(width)
    ]
    valid = c.add_gate("OR", recovering,
                       c.add_gate("NOT", err))
    c.set_output("sum", sum_bits)
    c.set_output("valid", valid)
    c.set_output("stall", start_recovery)
    c.attrs["window"] = builder.window
    return c
