"""Variable Latency Speculative Adder datapath (paper Section 4.3, Fig. 6).

One combinational circuit containing all three cooperating pieces with
fully shared logic:

* ``sum`` / ``cout``       — the ACA's speculative result (1-cycle path),
* ``err``                  — the error-detection flag (sets the clock period),
* ``sum_exact``/``cout_exact`` — the recovered result (2-cycle path).

The sequential wrapper that drives VALID/STALL around this datapath lives
in :mod:`repro.arch.vlsa_machine`; delay/area characterisation of the
individual paths is what the Fig. 8 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.error_model import choose_window
from ..circuit import Circuit, TechLibrary, UNIT, analyze_timing
from .aca import AcaBuilder
from .error_detect import attach_error_detector
from .error_recovery import attach_error_recovery

__all__ = ["build_vlsa_datapath", "VlsaTiming", "characterize_vlsa"]


def build_vlsa_datapath(width: int, window: Optional[int] = None,
                        cin: bool = False,
                        accuracy: float = 0.9999) -> Circuit:
    """Generate the complete VLSA datapath with shared ACA logic.

    Args:
        width: Operand bitwidth.
        window: Speculation window; ``None`` selects the smallest window
            that keeps the detector silent with probability *accuracy*
            (paper: "the one with 99.99 % accuracy").
        cin: Include a carry-in port.
        accuracy: Target no-stall probability used when *window* is None.

    Returns:
        Circuit with outputs ``sum``, ``cout`` (speculative), ``err``,
        ``sum_exact`` and ``cout_exact``.
    """
    if window is None:
        window = choose_window(width, accuracy)
    circuit = Circuit(f"vlsa{width}_w{window}")
    a = circuit.add_input_bus("a", width)
    b = circuit.add_input_bus("b", width)
    cin_net = circuit.add_input("cin", pos=0.0) if cin else None

    builder = AcaBuilder(circuit, a, b, window, cin_net).build()
    err = attach_error_detector(builder)
    exact_sums, exact_cout = attach_error_recovery(builder)

    circuit.set_output("sum", builder.sums)
    circuit.set_output("cout", builder.spec_carries[width])
    circuit.set_output("err", err)
    circuit.set_output("sum_exact", exact_sums)
    circuit.set_output("cout_exact", exact_cout)
    circuit.attrs["window"] = builder.window
    return circuit


@dataclass
class VlsaTiming:
    """Per-path delays of a VLSA datapath under one technology library.

    Attributes:
        width: Operand bitwidth.
        window: Speculation window.
        aca_delay: Worst arrival of the speculative sum/cout.
        detect_delay: Arrival of the error flag.
        recovery_delay: Worst arrival of the exact sum/cout.
        clock_period: ``max(aca_delay, detect_delay)`` — the cycle time the
            paper sizes the VLSA clock to (Fig. 6).
    """

    width: int
    window: int
    aca_delay: float
    detect_delay: float
    recovery_delay: float

    @property
    def clock_period(self) -> float:
        return max(self.aca_delay, self.detect_delay)


def characterize_vlsa(circuit: Circuit,
                      library: TechLibrary = UNIT) -> VlsaTiming:
    """Measure the three path delays of a VLSA datapath circuit."""
    report = analyze_timing(circuit, library)
    arr = report.arrivals
    outs = circuit.outputs

    def worst(*names: str) -> float:
        return max(arr[nid] for name in names for nid in outs[name])

    return VlsaTiming(
        width=len(outs["sum"]),
        window=int(circuit.attrs.get("window", 0)),
        aca_delay=worst("sum", "cout"),
        detect_delay=worst("err"),
        recovery_delay=worst("sum_exact", "cout_exact"),
    )
