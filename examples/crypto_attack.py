#!/usr/bin/env python3
"""Ciphertext-only attack with speculative arithmetic (paper Section 1).

An attacker captures ECB ciphertext of English text, enumerates a pruned
key space, and keeps the keys whose decryption has English-like letter
frequencies.  Decryption arithmetic runs either on the exact adder or on
the Almost Correct Adder: the ACA corrupts a handful of blocks but cannot
shift corpus-level statistics, so the attack still recovers the key —
at roughly half the arithmetic time.

Run:  python examples/crypto_attack.py
"""

import random

from repro.apps import (
    ArxCipher,
    aca_adder,
    chi_squared_score,
    exact_adder,
    run_attack,
    sample_corpus,
)

KEY_BITS = 10
CORPUS_BYTES = 8192
ACA_WINDOW = 8


def main():
    rng = random.Random(2024)
    true_key = rng.getrandbits(KEY_BITS)
    plaintext = sample_corpus(CORPUS_BYTES, seed=11)
    ciphertext = ArxCipher(true_key).encrypt_bytes(plaintext)
    candidates = list(range(1 << KEY_BITS))
    print(f"captured {len(ciphertext)} ciphertext bytes, "
          f"{len(candidates)} candidate keys, true key = {true_key:#x}\n")

    for label, adder, latency in [
            ("exact adder", exact_adder, 1.0),
            (f"ACA (window {ACA_WINDOW})", aca_adder(ACA_WINDOW), 0.5)]:
        result = run_attack(ciphertext, true_key, candidates,
                            adder=adder, add_latency=latency)
        top = result.ranking[:3]
        print(f"--- decryption with {label} ---")
        print(f"  true key rank : {result.rank_of_true_key()}")
        print(f"  wrong blocks  : {result.wrong_blocks} / "
              f"{len(ciphertext) // 8}")
        print(f"  32-bit adds   : {result.adds_performed}")
        print(f"  model time    : {result.arithmetic_time:.0f}")
        print("  top 3 keys    : " +
              ", ".join(f"{ks.key:#x} (score {ks.score:.3f})"
                        for ks in top))
        print()

    # Show what the scores look like for the right and a wrong key.
    good = ArxCipher(true_key).decrypt_bytes(ciphertext,
                                             add=aca_adder(ACA_WINDOW))
    bad = ArxCipher(true_key ^ 0x155).decrypt_bytes(ciphertext)
    print(f"chi^2 with true key + ACA : {chi_squared_score(good):8.3f}")
    print(f"chi^2 with wrong key      : {chi_squared_score(bad):8.3f}")
    print(f"\nfirst bytes of ACA-decrypted text: "
          f"{good[:60].decode('ascii', 'replace')!r}")


if __name__ == "__main__":
    main()
