#!/usr/bin/env python3
"""Section 6 future work: a speculative Wallace-tree multiplier.

Builds a 32x32 multiplier whose only carry-propagate step — the final
addition of the two carry-save rows — is an ACA, compares delay and area
against the exact version, multiplies a few numbers, and shows the error
flag guarding the rare wrong products.

Run:  python examples/speculative_multiplier.py
"""

import random

from repro.analysis import choose_window
from repro.circuit import UMC180, analyze_area, analyze_timing, simulate_bus_ints
from repro.core import build_multiplier, multiplier_error_rate

WIDTH = 32


def main():
    window = choose_window(2 * WIDTH)
    exact = build_multiplier(WIDTH, None)
    spec = build_multiplier(WIDTH, window)

    d_e = analyze_timing(exact, UMC180).critical_delay
    d_s = analyze_timing(spec, UMC180).critical_delay
    a_e = analyze_area(exact, UMC180).total
    a_s = analyze_area(spec, UMC180).total
    print(f"{WIDTH}x{WIDTH} multiplier, final-adder window {window}")
    print(f"  exact      : {d_e:.3f} ns, area {a_e:.0f}")
    print(f"  speculative: {d_s:.3f} ns, area {a_s:.0f} "
          f"({d_e / d_s:.2f}x faster overall; the exact carry-save tree "
          f"dominates — Amdahl)")

    rng = random.Random(3)
    print("\nsample products:")
    for _ in range(5):
        a, b = rng.getrandbits(WIDTH), rng.getrandbits(WIDTH)
        out = simulate_bus_ints(spec, {"a": a, "b": b})
        mark = "ok " if out["product"] == a * b else "ERR"
        print(f"  {mark} {a:5d} * {b:5d} = {out['product']:10d} "
              f"(flag={out['err']})")

    # A stressing pattern: operands that maximise carry chains.
    a, b = (1 << WIDTH) - 1, (1 << WIDTH) - 1
    out = simulate_bus_ints(spec, {"a": a, "b": b})
    print(f"\nworst-ish case {a} * {b}: product={out['product']} "
          f"exact={a * b} flag={out['err']}")

    # Error rates at the design point are ~1e-5; demonstrate the guarded
    # property on a deliberately small window instead.
    err, flag = multiplier_error_rate(12, 5, samples=500, seed=1)
    print(f"\nmeasured on 500 random 12-bit products with window 5: "
          f"P(error)={err:.4f}, P(flag)={flag:.4f}")
    print("every wrong product had its flag raised (asserted in the "
          "measurement loop)")


if __name__ == "__main__":
    main()
