#!/usr/bin/env python3
"""Drive the cycle-accurate VLSA pipeline and dump a waveform (Fig. 6/7).

Streams a mix of ordinary and adversarial operand pairs through the
variable-latency machine, prints the Fig. 7-style timing diagram, reports
the measured average latency against the analytic model, and writes a VCD
waveform you can open in GTKWave.

Run:  python examples/vlsa_pipeline.py
"""

import os
import random

from repro.analysis import choose_window, detector_flag_probability
from repro.arch import VlsaMachine

WIDTH = 64
OPERATIONS = 50000


def main():
    machine = VlsaMachine(WIDTH)
    print(f"VLSA machine: {WIDTH}-bit, window {machine.window}, "
          f"{machine.recovery_cycles} recovery cycle(s)")

    rng = random.Random(7)
    mask = (1 << WIDTH) - 1
    # Fig. 7 scenario first: ok, stall, ok — then random traffic.
    chain_a, chain_b = (mask >> 1), 1
    stream = [(10, 20), (chain_a, chain_b), (30, 40)]
    stream += [(rng.getrandbits(WIDTH), rng.getrandbits(WIDTH))
               for _ in range(OPERATIONS - 3)]

    trace = machine.run(stream)

    print("\nFig. 7 timing diagram (first operations):")
    print(trace.timing_diagram(first=6))

    p_flag = detector_flag_probability(WIDTH, machine.window)
    print(f"\noperations        : {trace.operations}")
    print(f"stalls            : {trace.stall_count}")
    print(f"avg latency       : {trace.average_latency_cycles:.6f} cycles")
    print(f"model (1+P(flag)) : {1 + p_flag:.6f} cycles")

    for r in trace.results[:3]:
        kind = "STALL+recover" if r.stalled else "1-cycle"
        print(f"  op{r.index}: {r.a:#x} + {r.b:#x} = {r.sum_out:#x} "
              f"[{kind}]")

    out = os.path.join(os.path.dirname(__file__), "vlsa_trace.vcd")
    with open(out, "w", encoding="utf-8") as f:
        # Keep the waveform small: just the scripted prefix.
        small = machine.run(stream[:20])
        f.write(small.to_vcd())
    print(f"\nwaveform written to {out} (open with GTKWave)")


if __name__ == "__main__":
    main()
